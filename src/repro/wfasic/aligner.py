"""The Aligner module (§4.3): wavefront engine with hardware semantics.

An Aligner runs the WFA loop of §2.3 under the hardware's constraints:

* wavefront vectors are fixed-length (``2 k_max + 1`` slots); diagonals
  outside ``±k_max`` do not exist, and an alignment whose score passes
  Eq. 6's ``Score_max`` terminates unsuccessfully (§4.3.1),
* only the *valid* cells of each frame column are processed — the
  theoretical band of the score (``repro.align.ScoreLattice``) clamped
  to the vector length and to the DP-matrix extent,
* wavefront steps visit exactly the reachable-score lattice
  (0, 4, 8, 10, 12, ... for the default penalties),
* per step, the ``n_ps`` parallel sections process groups of consecutive
  cells in lockstep: Compute (Eq. 3, with 5-bit origin emission when
  backtrace is on) then Extend (16-base blocks),
* origin codes are packed into 40-byte blocks in band order (§4.3.3) —
  the payload the Collector BT later frames into memory transactions.

Cycle accounting composes :class:`ComputeStage` and :class:`ExtendStage`
latencies with a per-alignment setup charge (reading the length words
from the Input_Seq RAMs, §4.3.2) and a result-drain charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..align.kernels import pad_sequence
from ..align.lattice import ScoreLattice
from ..align.wfa import NULL_OFFSET, Wavefront
from .compute import ComputeStage, ComputeTimings
from .config import WfasicConfig
from .extend import ExtendStage, ExtendTimings
from .extractor import ExtractedJob
from .packets import pack_origin_codes

__all__ = ["AlignerTimings", "AlignerStats", "AlignerRun", "Aligner"]

_SENTINEL_A = 0xFF
_SENTINEL_B = 0xFE


@dataclass(frozen=True)
class AlignerTimings:
    """All cycle constants of one Aligner, for calibration and ablation."""

    compute: ComputeTimings = field(default_factory=ComputeTimings)
    extend: ExtendTimings = field(default_factory=ExtendTimings)
    #: Per-alignment setup: read ID/length words, reset wavefront columns.
    setup_cycles: int = 10
    #: Per-alignment drain: hand the score record to the Collector.
    drain_cycles: int = 4


@dataclass
class AlignerStats:
    """Work performed by one alignment (feeds benches and the CPU model)."""

    wavefront_steps: int = 0
    cells_processed: int = 0
    extend_blocks: int = 0
    extend_matches: int = 0
    peak_band_width: int = 0
    compute_cycles: int = 0
    extend_cycles: int = 0


@dataclass(frozen=True)
class AlignerRun:
    """Result of one alignment on one Aligner.

    ``score`` is only meaningful when ``success`` is set; ``k_reached``
    is the final diagonal (``len(b) - len(a)``) on success, or the last
    attempted diagonal bound otherwise.  ``bt_blocks`` holds the 40-byte
    origin blocks in emission order when backtrace is enabled.
    """

    alignment_id: int
    success: bool
    score: int
    k_reached: int
    cycles: int
    stats: AlignerStats
    bt_blocks: list[bytes] | None


class Aligner:
    """One Aligner module: ``n_ps`` parallel sections plus their RAMs."""

    def __init__(
        self, config: WfasicConfig, timings: AlignerTimings | None = None
    ) -> None:
        self.config = config
        self.timings = timings or AlignerTimings()
        self._lattice = ScoreLattice(config.penalties)

    # -- public API ------------------------------------------------------------

    def run(self, job: ExtractedJob) -> AlignerRun:
        """Align one extracted pair under the hardware constraints."""
        stats = AlignerStats()
        bt: list[bytes] | None = [] if self.config.backtrace else None

        if not job.supported:
            # §4.2: the Aligner skips the pair; Success reports the failure.
            return AlignerRun(
                alignment_id=job.alignment_id,
                success=False,
                score=0,
                k_reached=0,
                cycles=self.timings.setup_cycles,
                stats=stats,
                bt_blocks=bt,
            )

        a, b = job.seq_a, job.seq_b
        n, m = len(a), len(b)
        k_final = m - n
        cfg = self.config
        p = cfg.penalties
        n_ps = cfg.parallel_sections
        cycles = self.timings.setup_cycles

        if abs(k_final) > cfg.k_max:
            # The terminating diagonal does not exist in the vectors.
            return AlignerRun(
                alignment_id=job.alignment_id,
                success=False,
                score=0,
                k_reached=0,
                cycles=cycles,
                stats=stats,
                bt_blocks=bt,
            )

        av = pad_sequence(a, sentinel=_SENTINEL_A)
        bv = pad_sequence(b, sentinel=_SENTINEL_B)

        compute = ComputeStage(
            n_ps, emit_origins=cfg.backtrace, timings=self.timings.compute
        )
        extend = ExtendStage(n_ps, timings=self.timings.extend)

        M: dict[int, Wavefront] = {}
        I: dict[int, Wavefront] = {}
        D: dict[int, Wavefront] = {}

        # Score 0: the initial M cell, extended.
        wf0 = Wavefront(0, 0, np.zeros(1, dtype=np.int64))
        ext, ext_cycles = extend.run(av, bv, n, m, wf0.offsets, 0)
        wf0.offsets[:] = ext.offsets
        M[0] = wf0
        cycles += ext_cycles + self.timings.compute.step_overhead
        stats.extend_cycles += ext_cycles
        stats.wavefront_steps += 1
        stats.peak_band_width = 1
        stats.extend_blocks += int(ext.blocks.sum())
        stats.extend_matches += ext.matches
        if wf0.get(k_final) == m:
            cycles += self.timings.drain_cycles
            return AlignerRun(
                alignment_id=job.alignment_id,
                success=True,
                score=0,
                k_reached=k_final,
                cycles=cycles,
                stats=stats,
                bt_blocks=bt,
            )

        x, oe, e = p.mismatch, p.gap_open_total, p.gap_extend
        step = p.score_granularity
        window = p.max_window_span()

        s = 0
        while True:
            s += step
            if s > cfg.max_score:
                # Eq. 6 exceeded: terminate with Success cleared.
                cycles += self.timings.drain_cycles
                return AlignerRun(
                    alignment_id=job.alignment_id,
                    success=False,
                    score=0,
                    k_reached=k_final,
                    cycles=cycles,
                    stats=stats,
                    bt_blocks=bt,
                )

            band = self._lattice.m_band(s)
            if band is None:
                continue
            band = band.clamped(max(-cfg.k_max, -n), min(cfg.k_max, m))
            if band is None:
                # Valid cells exist in theory but not in this matrix /
                # vector geometry; the step is skipped (and, with
                # backtrace on, still emits its zero-width placeholder so
                # the CPU's deterministic parse stays aligned — a zero
                # width step contributes no blocks).
                continue
            lo, hi = band.lo, band.hi
            width = hi - lo + 1
            ks = np.arange(lo, hi + 1, dtype=np.int64)

            def win(store: dict[int, Wavefront], score: int, shift: int) -> np.ndarray:
                wf = store.get(score)
                if wf is None:
                    return np.full(width, NULL_OFFSET, dtype=np.int64)
                return wf.window(lo + shift, hi + shift)

            out, comp_cycles = compute.run(
                win(M, s - x, 0),
                win(M, s - oe, -1),
                win(I, s - e, -1),
                win(M, s - oe, +1),
                win(D, s - e, +1),
                ks,
                n,
                m,
            )
            cycles += comp_cycles
            stats.compute_cycles += comp_cycles
            stats.wavefront_steps += 1
            stats.cells_processed += 3 * width
            stats.peak_band_width = max(stats.peak_band_width, width)

            if bt is not None:
                bt.extend(pack_origin_codes(out.origins, n_ps))

            ext, ext_cycles = extend.run(av, bv, n, m, out.m, lo)
            cycles += ext_cycles
            stats.extend_cycles += ext_cycles
            stats.extend_blocks += int(ext.blocks.sum())
            stats.extend_matches += ext.matches

            M[s] = Wavefront(lo, hi, ext.offsets)
            if (out.i >= 0).any():
                I[s] = Wavefront(lo, hi, out.i)
            if (out.d >= 0).any():
                D[s] = Wavefront(lo, hi, out.d)

            if M[s].get(k_final) == m:
                cycles += self.timings.drain_cycles
                return AlignerRun(
                    alignment_id=job.alignment_id,
                    success=True,
                    score=s,
                    k_reached=k_final,
                    cycles=cycles,
                    stats=stats,
                    bt_blocks=bt,
                )

            # The hardware keeps only the recurrence window (circular
            # frame-column rotation, §4.3.1); mirror that here.
            horizon = s - window
            for store in (M, I, D):
                for key in [key for key in store if key < horizon]:
                    del store[key]
