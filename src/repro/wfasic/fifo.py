"""Show-ahead FIFOs and the single-port-macro wrapper (§4.6).

The input and output FIFOs are the largest memories of the design: 16
bytes wide, 256 words deep.  On the FPGA they are *show-ahead* FIFOs (the
oldest unread word is always visible at the output port; asserting the
read request clears it), and in the ASIC they are re-implemented on
high-performance register-file macros behind a wrapper that reproduces
the show-ahead protocol, "so the interactions of the modules with the
input/output memories remain the same as in the FPGA prototype".

This model implements the show-ahead protocol directly (the wrapper's
observable behaviour); occupancy accounting lets the accelerator model
detect stalls when producers outrun consumers.
"""

from __future__ import annotations

from .config import AXI_DATA_BYTES

__all__ = ["ShowAheadFifo", "FifoError"]


class FifoError(RuntimeError):
    """Protocol violation: overflow, underflow, or a bad word size."""


class ShowAheadFifo:
    """16-byte-wide show-ahead FIFO with bounded depth.

    * :meth:`peek` returns the oldest word without consuming it — the
      show-ahead output port.
    * :meth:`pop` consumes it — the read-request signal.
    * :meth:`push` appends a word — the write port.

    High-water statistics (``peak_occupancy``, ``total_pushed``) feed the
    accelerator's bandwidth model.
    """

    def __init__(self, depth: int = 256, width: int = AXI_DATA_BYTES) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if width < 1:
            raise ValueError("width must be >= 1")
        self.depth = depth
        self.width = width
        self._words: list[bytes] = []
        self._head = 0
        self.peak_occupancy = 0
        self.total_pushed = 0

    # -- protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._words) - self._head

    @property
    def empty(self) -> bool:
        return len(self) == 0

    @property
    def full(self) -> bool:
        return len(self) >= self.depth

    def push(self, word: bytes) -> None:
        """Write one word; raises :class:`FifoError` when full."""
        if len(word) != self.width:
            raise FifoError(f"word must be {self.width} bytes, got {len(word)}")
        if self.full:
            raise FifoError("FIFO overflow")
        self._words.append(bytes(word))
        self.total_pushed += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self))

    def peek(self) -> bytes:
        """The show-ahead output: oldest word, not consumed."""
        if self.empty:
            raise FifoError("FIFO underflow (peek on empty)")
        return self._words[self._head]

    def pop(self) -> bytes:
        """Consume and return the oldest word (read request)."""
        word = self.peek()
        self._head += 1
        # Compact lazily so pop stays O(1) amortised.
        if self._head > 1024 and self._head * 2 > len(self._words):
            del self._words[: self._head]
            self._head = 0
        return word

    def drain(self) -> list[bytes]:
        """Pop everything (used by DMA models moving whole bursts)."""
        out = [self._words[i] for i in range(self._head, len(self._words))]
        self._words = []
        self._head = 0
        return out
