"""WFAsic top level (§4.1 / Fig. 5): DMA -> Extractor -> Aligners -> Collector.

The accelerator streams pair records from main memory into the Input
FIFO; the Extractor dispatches each pair to an idle Aligner; results flow
through the active Collector and the Output FIFO back to memory.

Batch timing is an event schedule over two serial resources:

* the **input path** (DMA + Extractor): one pair record at a time, at the
  Table-1 reading cost — and a pair can only be extracted once an Aligner
  is idle to receive it (§4.2),
* the **output path** (Collector + DMA): all result transactions share
  the 16-byte output port.

With one Aligner the batch time is essentially ``sum(read_i + align_i)``;
with ``A`` Aligners reads pipeline against alignments and the makespan
saturates once ``A`` exceeds Eq. 7's ``MaxAligners`` — this schedule is
what Figure 10 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .aligner import Aligner, AlignerRun, AlignerTimings
from .collector import CollectorBT, CollectorNBT, CollectorOutput
from .config import WfasicConfig
from .dma import DmaTimings, read_pair_cycles, stream_cycles
from .extractor import ExtractedJob, Extractor

__all__ = ["ScheduledAlignment", "BatchResult", "WfasicAccelerator", "max_efficient_aligners"]


def schedule_makespan(
    reading_cycles: int, alignment_cycles: list[int], num_aligners: int
) -> int:
    """Makespan of a batch under the §4.1 schedule, from known cycle costs.

    The input path streams one pair at a time (a pair is read only when an
    Aligner is idle to receive it, §4.2); alignments proceed in parallel on
    ``num_aligners`` Aligners.  This is the same schedule
    :class:`WfasicAccelerator` executes — exposed separately so scalability
    sweeps (Fig. 10) can re-schedule measured per-pair costs without
    re-simulating every alignment.
    """
    if num_aligners < 1:
        raise ValueError("num_aligners must be >= 1")
    if reading_cycles < 0:
        raise ValueError("reading_cycles must be >= 0")
    reader_free = 0
    aligner_free = [0] * num_aligners
    for cycles in alignment_cycles:
        idx = min(range(num_aligners), key=aligner_free.__getitem__)
        read_end = max(reader_free, aligner_free[idx]) + reading_cycles
        reader_free = read_end
        aligner_free[idx] = read_end + cycles
    return max(aligner_free) if alignment_cycles else 0


def max_efficient_aligners(alignment_cycles: int, reading_cycles: int) -> int:
    """Eq. 7: ``MaxAligners = roundup(Alignment_cycles / Reading_cycles) + 1``.

    Beyond this count the input path is saturated and extra Aligners idle.
    """
    if reading_cycles <= 0:
        raise ValueError("reading_cycles must be > 0")
    if alignment_cycles < 0:
        raise ValueError("alignment_cycles must be >= 0")
    return -(-alignment_cycles // reading_cycles) + 1


@dataclass(frozen=True)
class ScheduledAlignment:
    """One pair's trip through the accelerator."""

    alignment_id: int
    aligner_index: int
    read_start: int
    read_end: int
    align_end: int


@dataclass
class BatchResult:
    """Outcome of one accelerator batch."""

    runs: list[AlignerRun]
    schedule: list[ScheduledAlignment]
    output: CollectorOutput
    #: Makespan in accelerator clock cycles (compute + input path).
    total_cycles: int
    #: Cycles the output path needs for all result transactions.
    output_cycles: int
    max_read_len: int
    reading_cycles_per_pair: int
    config: WfasicConfig = field(repr=False, default_factory=WfasicConfig)

    @property
    def alignment_cycles(self) -> list[int]:
        return [run.cycles for run in self.runs]

    def run_for(self, alignment_id: int) -> AlignerRun:
        for run in self.runs:
            if run.alignment_id == alignment_id:
                return run
        raise KeyError(f"no run with alignment ID {alignment_id}")


class WfasicAccelerator:
    """A configured WFAsic instance operating on input images."""

    def __init__(
        self,
        config: WfasicConfig | None = None,
        *,
        aligner_timings: AlignerTimings | None = None,
        dma_timings: DmaTimings | None = None,
    ) -> None:
        self.config = config or WfasicConfig.paper_default()
        self.aligner_timings = aligner_timings or AlignerTimings()
        self.dma_timings = dma_timings or DmaTimings()

    # -- batch execution ---------------------------------------------------

    def run_image(self, image: bytes, max_read_len: int) -> BatchResult:
        """Process a whole input image (Fig. 4 steps 2-3).

        ``max_read_len`` is the batch MAX_READ_LEN the CPU configured over
        AXI-Lite; it must not exceed the hardware limit.
        """
        cfg = self.config
        if max_read_len > cfg.max_read_len:
            raise ValueError(
                f"batch MAX_READ_LEN {max_read_len} exceeds the hardware "
                f"limit {cfg.max_read_len}"
            )
        extractor = Extractor(max_read_len)
        jobs = extractor.extract_image(image)
        return self._run_jobs(jobs, max_read_len)

    def _run_jobs(self, jobs: list[ExtractedJob], max_read_len: int) -> BatchResult:
        cfg = self.config
        read_cycles = read_pair_cycles(max_read_len, self.dma_timings)

        # One Aligner object per hardware Aligner: they are stateless
        # between runs, but keeping instances mirrors the structure and
        # lets per-aligner stats accumulate if callers want them.
        aligners = [Aligner(cfg, self.aligner_timings) for _ in range(cfg.num_aligners)]

        runs: list[AlignerRun] = []
        schedule: list[ScheduledAlignment] = []
        reader_free = 0
        aligner_free = [0] * cfg.num_aligners

        for job in jobs:
            # The Extractor waits for an idle Aligner before pulling the
            # next record (§4.2).
            idx = min(range(cfg.num_aligners), key=aligner_free.__getitem__)
            read_start = max(reader_free, aligner_free[idx])
            read_end = read_start + read_cycles
            reader_free = read_end

            run = aligners[idx].run(job)
            align_end = read_end + run.cycles
            aligner_free[idx] = align_end
            runs.append(run)
            schedule.append(
                ScheduledAlignment(
                    alignment_id=job.alignment_id,
                    aligner_index=idx,
                    read_start=read_start,
                    read_end=read_end,
                    align_end=align_end,
                )
            )

        # Result framing through the active Collector.
        if cfg.backtrace:
            collector = CollectorBT()
            output = collector.interleave(runs, cfg.num_aligners)
        else:
            output = CollectorNBT().collect(runs)

        output_cycles = stream_cycles(output.num_transactions, self.dma_timings)
        compute_makespan = max(aligner_free) if jobs else 0
        # Output transactions stream concurrently with computation; the
        # batch is done when both paths drain.
        total = max(compute_makespan, output_cycles)
        return BatchResult(
            runs=runs,
            schedule=schedule,
            output=output,
            total_cycles=total,
            output_cycles=output_cycles,
            max_read_len=max_read_len,
            reading_cycles_per_pair=read_cycles,
            config=cfg,
        )
