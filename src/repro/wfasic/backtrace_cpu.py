"""CPU-side backtrace (§4.5).

When backtrace is enabled the accelerator only *generates* origin data;
the walk happens on the CPU after the batch completes (Fig. 4 step 4).
This module implements both CPU methods the paper ships:

* **data separation** (multi-Aligner): the interleaved transaction stream
  is first demultiplexed by alignment ID — every payload byte is copied
  to a per-alignment region, a memory-bound step that dominates the
  backtrace-enabled runtime (Fig. 11's [Sep] bars);
* **no separation** (single-Aligner): each alignment's data is already
  consecutive; the CPU only scans for the Last-flag boundaries.

After reassembly the CPU walks the 5-bit origin codes from the final cell
``(s_final, k_final)`` down to score 0.  The stream carries *no offsets*,
so the walk yields only the difference operations (X/I/D); the positions
of the matches between them are reconstructed by traversing the two
sequences and greedily inserting matches — valid because WFA's extend()
is maximal, so every match run on an optimal path is exactly the greedy
run (§4.5: "the CPU traverses the two sequences and inserts all the
necessary matches between the differences").

Parsing is only possible because the per-step block layout is
deterministic (see ``repro.align.lattice``): given the penalties,
``k_max`` and the sequence lengths, the CPU recomputes every step's score
and clamped band, hence each cell's block and slot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.cigar import Cigar
from ..align.kernels import (
    ORIGIN_D_EXT_BIT,
    ORIGIN_I_EXT_BIT,
    ORIGIN_M_DEL,
    ORIGIN_M_INS,
    ORIGIN_M_SUB,
)
from ..align.lattice import ScoreLattice
from .config import WfasicConfig
from .packets import (
    BT_PAYLOAD_BYTES,
    SECTION_BYTES,
    unpack_bt_final_payload,
    unpack_origin_codes,
)

__all__ = [
    "BacktraceStreamError",
    "CpuBacktraceWork",
    "CpuBacktraceResult",
    "parse_bt_stream",
    "StepIndex",
    "CpuBacktracer",
]


class BacktraceStreamError(RuntimeError):
    """The backtrace stream is inconsistent with the deterministic layout."""


@dataclass
class CpuBacktraceWork:
    """Abstract CPU work; ``repro.soc.cpu`` converts it to cycles."""

    #: Transactions read from memory (both methods scan the whole stream).
    transactions_scanned: int = 0
    #: Payload bytes copied during data separation (0 without separation).
    separation_bytes: int = 0
    #: Difference operations recovered by origin walks.
    walk_ops: int = 0
    #: Match characters inserted by the sequence traversal.
    match_chars: int = 0
    #: Steps indexed while rebuilding the deterministic layout.
    index_steps: int = 0

    def merge(self, other: "CpuBacktraceWork") -> None:
        self.transactions_scanned += other.transactions_scanned
        self.separation_bytes += other.separation_bytes
        self.walk_ops += other.walk_ops
        self.match_chars += other.match_chars
        self.index_steps += other.index_steps


@dataclass(frozen=True)
class CpuBacktraceResult:
    """One alignment's CPU-side outcome."""

    alignment_id: int
    success: bool
    score: int
    cigar: Cigar | None


@dataclass(frozen=True)
class _ParsedAlignment:
    alignment_id: int
    success: bool
    score: int
    k_reached: int
    payload: bytes  # reassembled origin blocks (multiple of 40 bytes)


def parse_bt_stream(
    stream: bytes, *, separate: bool, work: CpuBacktraceWork
) -> list[_ParsedAlignment]:
    """Demultiplex a raw BT stream into per-alignment payloads.

    ``separate=True`` models the multi-Aligner method (§4.5): payloads are
    gathered by alignment ID regardless of interleaving, and every payload
    byte is charged to ``work.separation_bytes``.  ``separate=False``
    requires each alignment's transactions to be consecutive (single
    Aligner) and only scans for boundaries.
    """
    if len(stream) % SECTION_BYTES:
        raise BacktraceStreamError("stream length is not a multiple of 16 bytes")
    raw = np.frombuffer(stream, dtype=np.uint8).reshape(-1, SECTION_BYTES)
    n_txn = len(raw)
    work.transactions_scanned += n_txn
    if n_txn == 0:
        return []

    counters = (
        raw[:, 10].astype(np.int64)
        | (raw[:, 11].astype(np.int64) << 8)
        | (raw[:, 12].astype(np.int64) << 16)
    )
    flags = (
        raw[:, 13].astype(np.int64)
        | (raw[:, 14].astype(np.int64) << 8)
        | (raw[:, 15].astype(np.int64) << 16)
    )
    ids = flags & 0x7FFFFF
    last = (flags >> 23).astype(bool)

    out: list[_ParsedAlignment] = []

    def finish(aid: int, idxs: np.ndarray) -> None:
        sub_counters = counters[idxs]
        sub_last = last[idxs]
        if int(sub_last.sum()) != 1 or not sub_last[np.argmax(sub_counters)]:
            raise BacktraceStreamError(
                f"alignment {aid}: malformed Last-flag structure"
            )
        order = np.argsort(sub_counters, kind="stable")
        idxs = idxs[order]
        final_idx = idxs[-1]
        data_idxs = idxs[:-1]
        payload = raw[data_idxs, :BT_PAYLOAD_BYTES].tobytes()
        success, k_reached, score = unpack_bt_final_payload(
            raw[final_idx, :BT_PAYLOAD_BYTES].tobytes()
        )
        out.append(
            _ParsedAlignment(
                alignment_id=aid,
                success=success,
                score=score,
                k_reached=k_reached,
                payload=payload,
            )
        )

    if separate:
        # Data separation: move every alignment's payload bytes together.
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        groups = np.split(order, boundaries)
        for idxs in groups:
            aid = int(ids[idxs[0]])
            work.separation_bytes += len(idxs) * BT_PAYLOAD_BYTES
            finish(aid, idxs)
        # Preserve completion order (order of Last transactions).
        finish_order = {int(ids[i]): pos for pos, i in enumerate(np.flatnonzero(last))}
        out.sort(key=lambda p: finish_order.get(p.alignment_id, 0))
    else:
        # No separation: alignments are consecutive; split at Last flags.
        ends = np.flatnonzero(last)
        start = 0
        for end in ends:
            idxs = np.arange(start, end + 1)
            aid = int(ids[end])
            if not (ids[idxs] == aid).all():
                raise BacktraceStreamError(
                    "interleaved stream passed to the no-separation method"
                )
            finish(aid, idxs)
            start = end + 1
        if start != n_txn:
            raise BacktraceStreamError("trailing transactions without a Last flag")
    return out


class StepIndex:
    """Deterministic (score, diagonal) -> (block, slot) map for one pair.

    Mirrors exactly the Aligner's emission loop: lattice scores in
    ascending order, theoretical M band clamped to the vector length and
    to the matrix extent, ``ceil(width / n_ps)`` blocks per step.
    """

    def __init__(
        self,
        config: WfasicConfig,
        n: int,
        m: int,
        s_final: int,
        lattice: ScoreLattice | None = None,
    ) -> None:
        self.config = config
        self.n_ps = config.parallel_sections
        lattice = lattice or ScoreLattice(config.penalties)
        lo_clamp = max(-config.k_max, -n)
        hi_clamp = min(config.k_max, m)
        g = config.penalties.score_granularity

        self._steps: dict[int, tuple[int, int, int]] = {}  # s -> (lo, hi, base)
        base = 0
        for s in range(g, s_final + 1, g):
            band = lattice.m_band(s)
            if band is None:
                continue
            band = band.clamped(lo_clamp, hi_clamp)
            if band is None:
                continue
            self._steps[s] = (band.lo, band.hi, base)
            base += -(-(band.hi - band.lo + 1) // self.n_ps)
        self.total_blocks = base

    @property
    def num_steps(self) -> int:
        return len(self._steps)

    def locate(self, s: int, k: int) -> tuple[int, int]:
        """Block index and slot of cell ``(s, k)``."""
        try:
            lo, hi, base = self._steps[s]
        except KeyError:
            raise BacktraceStreamError(f"no wavefront step at score {s}") from None
        if not lo <= k <= hi:
            raise BacktraceStreamError(
                f"diagonal {k} outside band {lo}..{hi} at score {s}"
            )
        cell = k - lo
        return base + cell // self.n_ps, cell % self.n_ps


class CpuBacktracer:
    """The full CPU backtrace flow over a batch result stream."""

    def __init__(self, config: WfasicConfig) -> None:
        self.config = config
        self._lattice = ScoreLattice(config.penalties)

    def process(
        self,
        stream: bytes,
        sequences: dict[int, tuple[str, str]],
        *,
        separate: bool,
    ) -> tuple[list[CpuBacktraceResult], CpuBacktraceWork]:
        """Backtrace every alignment in a BT result stream.

        ``sequences`` maps alignment IDs to the (pattern, text) pairs the
        CPU already holds from building the input image.
        """
        work = CpuBacktraceWork()
        parsed = parse_bt_stream(stream, separate=separate, work=work)
        results: list[CpuBacktraceResult] = []
        for entry in parsed:
            if not entry.success:
                results.append(
                    CpuBacktraceResult(
                        alignment_id=entry.alignment_id,
                        success=False,
                        score=0,
                        cigar=None,
                    )
                )
                continue
            try:
                a, b = sequences[entry.alignment_id]
            except KeyError:
                raise BacktraceStreamError(
                    f"result for unknown alignment ID {entry.alignment_id}"
                ) from None
            cigar = self._backtrace_one(entry, a, b, work)
            results.append(
                CpuBacktraceResult(
                    alignment_id=entry.alignment_id,
                    success=True,
                    score=entry.score,
                    cigar=cigar,
                )
            )
        return results, work

    # -- internals ------------------------------------------------------------

    def _backtrace_one(
        self, entry: _ParsedAlignment, a: str, b: str, work: CpuBacktraceWork
    ) -> Cigar:
        n, m = len(a), len(b)
        index = StepIndex(self.config, n, m, entry.score, self._lattice)
        work.index_steps += index.num_steps
        expected_blocks = index.total_blocks
        block_bytes = self.config.bt_block_bytes
        if len(entry.payload) % block_bytes:
            raise BacktraceStreamError(
                f"alignment {entry.alignment_id}: payload is not whole "
                f"{block_bytes}-byte blocks"
            )
        have_blocks = len(entry.payload) // block_bytes
        if have_blocks != expected_blocks:
            raise BacktraceStreamError(
                f"alignment {entry.alignment_id}: {have_blocks} blocks in "
                f"stream but the layout implies {expected_blocks}"
            )
        if entry.k_reached != m - n:
            raise BacktraceStreamError(
                f"alignment {entry.alignment_id}: final diagonal "
                f"{entry.k_reached} != m - n = {m - n}"
            )

        ops_rev = self._walk(entry, index, work)
        cigar = self._insert_matches(ops_rev[::-1], a, b, work)
        return cigar

    def _code_at(
        self, payload: bytes, cache: dict[int, np.ndarray], block: int, slot: int
    ) -> int:
        codes = cache.get(block)
        if codes is None:
            bb = self.config.bt_block_bytes
            raw = payload[block * bb : (block + 1) * bb]
            codes = unpack_origin_codes(raw, self.config.parallel_sections)
            cache[block] = codes
        return int(codes[slot])

    def _walk(
        self, entry: _ParsedAlignment, index: StepIndex, work: CpuBacktraceWork
    ) -> list[str]:
        """Origin-chain walk from the final cell down to score 0."""
        p = self.config.penalties
        x, oe, e = p.mismatch, p.gap_open_total, p.gap_extend
        cache: dict[int, np.ndarray] = {}
        ops: list[str] = []
        matrix = "M"
        s = entry.score
        k = entry.k_reached
        # Each op iteration lowers s by at least 1 and every matrix switch
        # is followed by one, so 2*score + slack bounds the walk.
        fuel = 2 * entry.score + 16

        while s > 0:
            if fuel <= 0:
                raise BacktraceStreamError(
                    f"alignment {entry.alignment_id}: origin walk did not "
                    "converge (corrupt stream?)"
                )
            fuel -= 1
            code = self._code_at(entry.payload, cache, *index.locate(s, k))
            if matrix == "M":
                origin = code & 0b111
                if origin == ORIGIN_M_SUB:
                    ops.append("X")
                    s -= x
                elif origin == ORIGIN_M_INS:
                    matrix = "I"
                elif origin == ORIGIN_M_DEL:
                    matrix = "D"
                else:
                    raise BacktraceStreamError(
                        f"alignment {entry.alignment_id}: NULL M origin at "
                        f"(s={s}, k={k})"
                    )
            elif matrix == "I":
                # The extend bit also records the *run structure*: an
                # opened gap character starts a run (matches may precede
                # it), an extension continues one (no matches inside).
                k -= 1
                if code & ORIGIN_I_EXT_BIT:
                    ops.append("Ie")
                    s -= e
                else:
                    ops.append("Io")
                    s -= oe
                    matrix = "M"
            else:  # D
                k += 1
                if code & ORIGIN_D_EXT_BIT:
                    ops.append("De")
                    s -= e
                else:
                    ops.append("Do")
                    s -= oe
                    matrix = "M"

        if s != 0 or k != 0 or matrix != "M":
            raise BacktraceStreamError(
                f"alignment {entry.alignment_id}: walk ended at "
                f"(s={s}, k={k}, {matrix}), expected (0, 0, M)"
            )
        work.walk_ops += len(ops)
        return ops

    @staticmethod
    def _insert_matches(
        ops: list[str], a: str, b: str, work: CpuBacktraceWork
    ) -> Cigar:
        """Greedy match insertion between the recovered differences.

        ``ops`` tokens are ``"X"`` or gap ops annotated with their run
        structure (``"Io"``/``"Do"`` open a run, ``"Ie"``/``"De"`` extend
        one).  Matches are inserted only *before* substitutions and run
        openings: those positions are M-states of the WFA path, where
        extension was maximal, so the greedy run is exactly the path's
        run.  Inside a gap run no matches may be inserted, even when the
        sequences happen to agree there — otherwise a coincidental match
        would split the run and raise the gap-open count.
        """
        out: list[str] = []
        i = j = 0
        n, m = len(a), len(b)

        def take_matches() -> None:
            nonlocal i, j
            while i < n and j < m and a[i] == b[j]:
                out.append("M")
                i += 1
                j += 1

        for op in ops:
            if op == "X" or op in ("Io", "Do"):
                take_matches()
            if op == "X":
                if i >= n or j >= m or a[i] == b[j]:
                    raise BacktraceStreamError(
                        f"substitution op lands on a match at ({i}, {j})"
                    )
                out.append("X")
                i += 1
                j += 1
            elif op in ("Io", "Ie"):
                if j >= m:
                    raise BacktraceStreamError("insertion op past the text end")
                out.append("I")
                j += 1
            else:
                if i >= n:
                    raise BacktraceStreamError("deletion op past the pattern end")
                out.append("D")
                i += 1
        take_matches()
        if i != n or j != m:
            raise BacktraceStreamError(
                f"reconstruction consumed ({i}, {j}) of ({n}, {m}) characters"
            )
        work.match_chars += sum(1 for c in out if c == "M")
        return Cigar("".join(out))
