"""Byte-exact memory formats of the WFAsic co-design interface.

Everything the CPU and the accelerator exchange through main memory is
defined here, following §4.2 (input image), §4.3.3 (origin blocks) and
§4.4 (both result stream formats), so that the Extractor, the Collectors
and the CPU-side backtrace all speak the same bits and can be tested
against each other byte for byte.

Input image (per pair, §4.2) — all fields in 16-byte *sections*::

    section 0          alignment ID      (uint32 LE + 12 pad bytes)
    section 1          length of seq a   (uint32 LE + 12 pad bytes)
    section 2          length of seq b   (uint32 LE + 12 pad bytes)
    sections 3..       seq a bases, 1 byte/base, padded with dummy 'A'
                       bases to MAX_READ_LEN (MAX_READ_LEN/16 sections)
    sections ..        seq b bases, same layout

Collector NBT record (4 bytes, four records per 16-byte transaction)::

    uint16 LE          score (15 bits) | Success flag << 15
    uint16 LE          alignment ID

Collector BT transaction (16 bytes)::

    bytes 0..9         10 bytes of backtrace payload
    bytes 10..12       block counter (uint24 LE, per alignment)
    bytes 13..15       alignment ID (23 bits) | Last flag << 23  (uint24 LE)

Backtrace payload: per compute step, the 5-bit origin codes of one group
of ``parallel_sections`` cells are concatenated into 40-byte blocks
(64 x 5 = 320 bits, §4.3.3), bit 5*t upward holding cell t's code, LSB
first.  The final block of an alignment (Last flag set) instead carries
the score record: Success (1 byte), reached diagonal k (int16 LE), score
(uint16 LE), zero padding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from .config import AXI_DATA_BYTES, BASES_PER_RAM_WORD

__all__ = [
    "SECTION_BYTES",
    "BT_BLOCK_BYTES",
    "BT_PAYLOAD_BYTES",
    "encode_base",
    "decode_base",
    "pack_bases",
    "unpack_bases",
    "round_up_read_len",
    "encode_pair_record",
    "encode_input_image",
    "pair_record_sections",
    "decode_pair_record",
    "NbtRecord",
    "pack_nbt_record",
    "unpack_nbt_record",
    "BtTransaction",
    "pack_bt_block",
    "unpack_bt_transaction",
    "pack_bt_final_block",
    "unpack_bt_final_payload",
    "pack_origin_codes",
    "unpack_origin_codes",
]

#: One memory section (§4.2) = the AXI-Full data width.
SECTION_BYTES = AXI_DATA_BYTES

#: One backtrace block: 64 cells x 5 bits = 320 bits (§4.3.3).
BT_BLOCK_BYTES = 40

#: Payload bytes carried per 16-byte BT transaction (§4.4).
BT_PAYLOAD_BYTES = 10

_BASE_TO_CODE = {ord("A"): 0, ord("C"): 1, ord("G"): 2, ord("T"): 3}
_CODE_TO_BASE = np.frombuffer(b"ACGT", dtype=np.uint8)

#: Dummy base used to pad sequences to MAX_READ_LEN (§4.2: "the extra
#: bases are filled by dummy bases in the CPU").
DUMMY_BASE = ord("A")


# --------------------------------------------------------------------------
# Base packing (1 byte/base in memory <-> 2 bits/base in Input_Seq RAMs)
# --------------------------------------------------------------------------


def encode_base(char: str) -> int:
    """2-bit code of a DNA base; raises for 'N'/unknown characters."""
    try:
        return _BASE_TO_CODE[ord(char)]
    except KeyError:
        raise ValueError(f"unsupported base {char!r}") from None


def decode_base(code: int) -> str:
    """Base character of a 2-bit code."""
    if not 0 <= code <= 3:
        raise ValueError(f"invalid 2-bit base code {code}")
    return chr(_CODE_TO_BASE[code])


def pack_bases(seq_bytes: np.ndarray) -> np.ndarray:
    """ASCII base bytes -> uint32 RAM words, 16 bases x 2 bits per word.

    Base t of a word occupies bits ``2*t .. 2*t+1`` (LSB first), the
    order in which the hardware shifter consumes them.  The input length
    must be a multiple of 16 (callers pad with dummy bases first).
    """
    if len(seq_bytes) % BASES_PER_RAM_WORD:
        raise ValueError("sequence length must be a multiple of 16 bases")
    codes = np.zeros(len(seq_bytes), dtype=np.uint32)
    for char, code in _BASE_TO_CODE.items():
        codes[seq_bytes == char] = code
    unknown = ~np.isin(seq_bytes, list(_BASE_TO_CODE))
    if unknown.any():
        raise ValueError("sequence contains non-ACGT bases")
    groups = codes.reshape(-1, BASES_PER_RAM_WORD)
    shifts = np.arange(BASES_PER_RAM_WORD, dtype=np.uint32) * 2
    return (groups << shifts).sum(axis=1, dtype=np.uint64).astype(np.uint32)


def unpack_bases(words: np.ndarray, length: int) -> np.ndarray:
    """uint32 RAM words -> the first ``length`` ASCII base bytes."""
    shifts = np.arange(BASES_PER_RAM_WORD, dtype=np.uint32) * 2
    codes = (words[:, None] >> shifts) & 0x3
    flat = codes.reshape(-1)[:length]
    return _CODE_TO_BASE[flat]


# --------------------------------------------------------------------------
# Input image
# --------------------------------------------------------------------------


def round_up_read_len(length: int) -> int:
    """Round a batch's longest read up to a whole number of sections.

    §4.2: "The MAX_READ_LEN must be divisible by the data width of the
    AXI-Full (16 bytes).  For example, if the longest sequence in the
    input set has a length of 9010 bases, the MAX_READ_LEN is set to
    9024".
    """
    if length <= 0:
        return BASES_PER_RAM_WORD
    return -(-length // BASES_PER_RAM_WORD) * BASES_PER_RAM_WORD


def pair_record_sections(max_read_len: int) -> int:
    """Sections per pair record: 3 headers + 2 padded sequences."""
    if max_read_len % BASES_PER_RAM_WORD:
        raise ValueError("max_read_len must be a multiple of 16")
    return 3 + 2 * (max_read_len // SECTION_BYTES)


def _header_section(value: int) -> bytes:
    return int(value).to_bytes(4, "little") + b"\x00" * 12


def encode_pair_record(
    alignment_id: int, pattern: str, text: str, max_read_len: int
) -> bytes:
    """One pair's memory image (§4.2 layout).

    Sequences longer than ``max_read_len`` are *truncated* in the image
    but keep their true length in the header — exactly the broken-input
    situation the Extractor must detect and reject (§4.2).
    """
    if not 0 <= alignment_id < 2**32:
        raise ValueError("alignment ID must fit in 32 bits")
    if max_read_len % BASES_PER_RAM_WORD:
        raise ValueError("max_read_len must be a multiple of 16")

    def seq_sections(seq: str) -> bytes:
        raw = seq.encode("ascii")[:max_read_len]
        return raw + bytes([DUMMY_BASE]) * (max_read_len - len(raw))

    return (
        _header_section(alignment_id)
        + _header_section(len(pattern))
        + _header_section(len(text))
        + seq_sections(pattern)
        + seq_sections(text)
    )


def encode_input_image(pairs: Iterable[Any], max_read_len: int) -> bytes:
    """Concatenated pair records for a batch (CPU 'parses the input data
    and stores them in the main memory', Fig. 4 step 1)."""
    return b"".join(
        encode_pair_record(p.pair_id, p.pattern, p.text, max_read_len)
        for p in pairs
    )


@dataclass(frozen=True)
class DecodedPair:
    """What the Extractor recovers from one pair record."""

    alignment_id: int
    len_a: int
    len_b: int
    seq_a: bytes  # raw bytes as stored (padded to max_read_len)
    seq_b: bytes


def decode_pair_record(record: bytes, max_read_len: int) -> DecodedPair:
    """Parse one pair record (the Extractor's view of the input stream)."""
    expected = pair_record_sections(max_read_len) * SECTION_BYTES
    if len(record) != expected:
        raise ValueError(f"pair record must be {expected} bytes, got {len(record)}")
    aid = int.from_bytes(record[0:4], "little")
    len_a = int.from_bytes(record[16:20], "little")
    len_b = int.from_bytes(record[32:36], "little")
    off = 3 * SECTION_BYTES
    seq_a = record[off : off + max_read_len]
    seq_b = record[off + max_read_len : off + 2 * max_read_len]
    return DecodedPair(aid, len_a, len_b, seq_a, seq_b)


# --------------------------------------------------------------------------
# Collector NBT records (§4.4)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class NbtRecord:
    """One no-backtrace result: Success, 15-bit score, 16-bit ID."""

    alignment_id: int
    score: int
    success: bool


def pack_nbt_record(record: NbtRecord) -> bytes:
    """4-byte NBT record; four are merged per memory transaction."""
    if not 0 <= record.score < 2**15:
        raise ValueError("NBT score field is 15 bits")
    if not 0 <= record.alignment_id < 2**16:
        raise ValueError("NBT alignment ID field is 16 bits")
    word = record.score | (int(record.success) << 15)
    return word.to_bytes(2, "little") + record.alignment_id.to_bytes(2, "little")


def unpack_nbt_record(data: bytes) -> NbtRecord:
    """Parse a 4-byte NBT record."""
    if len(data) != 4:
        raise ValueError("NBT record must be 4 bytes")
    word = int.from_bytes(data[0:2], "little")
    return NbtRecord(
        alignment_id=int.from_bytes(data[2:4], "little"),
        score=word & 0x7FFF,
        success=bool(word >> 15),
    )


# --------------------------------------------------------------------------
# Collector BT transactions (§4.4)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BtTransaction:
    """One 16-byte backtrace transaction as seen by the CPU."""

    payload: bytes  # 10 bytes
    counter: int  # 24-bit per-alignment block counter
    alignment_id: int  # 23 bits
    last: bool


def _pack_bt_txn(payload: bytes, counter: int, alignment_id: int, last: bool) -> bytes:
    if len(payload) != BT_PAYLOAD_BYTES:
        raise ValueError("BT payload must be 10 bytes")
    if not 0 <= counter < 2**24:
        raise ValueError("BT counter field is 24 bits")
    if not 0 <= alignment_id < 2**23:
        raise ValueError("BT alignment ID field is 23 bits")
    flags = alignment_id | (int(last) << 23)
    return payload + counter.to_bytes(3, "little") + flags.to_bytes(3, "little")


def pack_bt_block(
    block: bytes, first_counter: int, alignment_id: int
) -> list[bytes]:
    """Split a backtrace block into 16-byte transactions.

    §4.4: "we combine 10 bytes of the backtrace data with six bytes of
    information in one block of 16 bytes, and send each backtrace data in
    four memory transactions" — four for the shipped 64-PS / 40-byte
    blocks; smaller parallel-section counts frame into fewer.
    """
    if len(block) == 0 or len(block) % BT_PAYLOAD_BYTES:
        raise ValueError(
            f"backtrace block must be a non-empty multiple of "
            f"{BT_PAYLOAD_BYTES} bytes, got {len(block)}"
        )
    return [
        _pack_bt_txn(
            block[i * BT_PAYLOAD_BYTES : (i + 1) * BT_PAYLOAD_BYTES],
            first_counter + i,
            alignment_id,
            last=False,
        )
        for i in range(len(block) // BT_PAYLOAD_BYTES)
    ]


def pack_bt_final_block(
    success: bool, k_reached: int, score: int, counter: int, alignment_id: int
) -> bytes:
    """The terminating transaction: score record with the Last flag set.

    §4.4: 5 useful bytes — Success (1 byte), reached k (2 bytes), score
    (2 bytes) — sent "in one memory transaction".
    """
    if not 0 <= score < 2**16:
        raise ValueError("BT score field is 16 bits")
    payload = (
        bytes([int(success)])
        + int(k_reached).to_bytes(2, "little", signed=True)
        + score.to_bytes(2, "little")
        + b"\x00" * (BT_PAYLOAD_BYTES - 5)
    )
    return _pack_bt_txn(payload, counter, alignment_id, last=True)


def unpack_bt_transaction(data: bytes) -> BtTransaction:
    """Parse one 16-byte BT transaction."""
    if len(data) != SECTION_BYTES:
        raise ValueError("BT transaction must be 16 bytes")
    flags = int.from_bytes(data[13:16], "little")
    return BtTransaction(
        payload=data[0:10],
        counter=int.from_bytes(data[10:13], "little"),
        alignment_id=flags & 0x7FFFFF,
        last=bool(flags >> 23),
    )


def unpack_bt_final_payload(payload: bytes) -> tuple[bool, int, int]:
    """(success, k_reached, score) from a Last transaction's payload."""
    if len(payload) != BT_PAYLOAD_BYTES:
        raise ValueError("BT payload must be 10 bytes")
    return (
        bool(payload[0]),
        int.from_bytes(payload[1:3], "little", signed=True),
        int.from_bytes(payload[3:5], "little"),
    )


# --------------------------------------------------------------------------
# 5-bit origin-code packing (§4.3.3)
# --------------------------------------------------------------------------


def pack_origin_codes(codes: np.ndarray, group_size: int = 64) -> list[bytes]:
    """Pack 5-bit origin codes into 40-byte blocks of ``group_size`` cells.

    The last group of a frame column is zero-padded: code 0 is
    ``ORIGIN_M_NONE``, which the CPU backtrace can never dereference.
    Bit layout: cell ``t`` of a block occupies bits ``5t .. 5t+4``
    (LSB-first), matching the hardware's concatenation order.
    """
    if (codes >= 32).any():
        raise ValueError("origin codes must fit in 5 bits")
    blocks: list[bytes] = []
    block_bytes = group_size * 5 // 8
    for start in range(0, len(codes), group_size):
        group = np.zeros(group_size, dtype=np.uint8)
        chunk = codes[start : start + group_size]
        group[: len(chunk)] = chunk
        bits = (group[:, None] >> np.arange(5)) & 1
        blocks.append(np.packbits(bits.reshape(-1), bitorder="little")[
            :block_bytes
        ].tobytes())
    return blocks


def unpack_origin_codes(block: bytes, group_size: int = 64) -> np.ndarray:
    """Inverse of :func:`pack_origin_codes` for one block."""
    bits = np.unpackbits(np.frombuffer(block, dtype=np.uint8), bitorder="little")
    bits = bits[: group_size * 5].reshape(group_size, 5)
    return (bits << np.arange(5)).sum(axis=1).astype(np.uint8)
