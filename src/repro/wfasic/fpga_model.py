"""FPGA prototype model (§4.6 / §5.3).

Before the ASIC flow, the design is validated on an Alveo U280
("The FPGA device runs on 50MHz and has 2607K FFs, 1304K LUTs, 9024
DSPs, 2016 BRAMs and 960 URAMs"), where "the available resources ... are
larger than in the final chip, so we can fit multiple Aligners and
evaluate the scalability" (Fig. 10 runs up to 10 Aligners of 64 parallel
sections).

This module estimates the prototype's resource usage for arbitrary
configurations and answers the fit question.  Per-module logic costs are
engineering estimates (documented constants) for the datapaths the paper
describes — a 32-bit comparator + dual shifters per Extend sub-module, a
max-tree ALU per Compute sub-module — while memory mapping is structural:
every RAM macro of the ASIC inventory maps onto BRAM18 primitives by
capacity (the FIFOs, 4 KB each, take a whole BRAM36).
"""

from __future__ import annotations

from dataclasses import dataclass

from .asic_model import macro_inventory
from .config import WfasicConfig

__all__ = ["U280", "FpgaDevice", "FpgaReport", "fpga_report", "max_aligners_on"]

#: FPGA prototype clock (§5.3).
FPGA_FREQUENCY_HZ = 50e6


@dataclass(frozen=True)
class FpgaDevice:
    """Resource totals of one FPGA device."""

    name: str
    luts: int
    ffs: int
    dsps: int
    bram36: int
    uram: int


#: §5.3's Alveo U280 figures.
U280 = FpgaDevice(
    name="Alveo U280",
    luts=1_304_000,
    ffs=2_607_000,
    dsps=9_024,
    bram36=2_016,
    uram=960,
)

# -- logic-cost estimates (per instance) --------------------------------------
#: Extend sub-module: 32-bit comparator, two 64-bit alignment shifters,
#: address generators (§4.3.2).
_EXTEND_LUTS = 520
_EXTEND_FFS = 640
#: Compute sub-module: Eq. 3 max tree, origin encoder (§4.3.3).
_COMPUTE_LUTS = 380
_COMPUTE_FFS = 410
#: Per-Aligner control (frame-column rotation, group sequencing).
_ALIGNER_CTRL_LUTS = 6_000
_ALIGNER_CTRL_FFS = 7_500
#: Shared blocks: DMA + Extractor + Collectors + AXI plumbing.
_SHARED_LUTS = 14_000
_SHARED_FFS = 18_000

#: BRAM18 capacity in bytes (2 KB data).
_BRAM18_BYTES = 2_304


@dataclass(frozen=True)
class FpgaReport:
    """Estimated prototype utilisation for one configuration."""

    luts: int
    ffs: int
    bram36: float
    frequency_hz: float
    device: FpgaDevice

    @property
    def fits(self) -> bool:
        return (
            self.luts <= self.device.luts
            and self.ffs <= self.device.ffs
            and self.bram36 <= self.device.bram36
        )

    @property
    def lut_utilisation(self) -> float:
        return self.luts / self.device.luts

    @property
    def bram_utilisation(self) -> float:
        return self.bram36 / self.device.bram36


def fpga_report(config: WfasicConfig, device: FpgaDevice = U280) -> FpgaReport:
    """Estimate the prototype's resources for ``config`` on ``device``."""
    a = config.num_aligners
    n_ps = config.parallel_sections
    luts = (
        _SHARED_LUTS
        + a * _ALIGNER_CTRL_LUTS
        + a * n_ps * (_EXTEND_LUTS + _COMPUTE_LUTS)
    )
    ffs = (
        _SHARED_FFS
        + a * _ALIGNER_CTRL_FFS
        + a * n_ps * (_EXTEND_FFS + _COMPUTE_FFS)
    )
    inv = macro_inventory(config)
    # Each RAM macro needs its own primitive (independent ports); BRAM18s
    # hold up to 2 KB, pairs of BRAM18 make a BRAM36.  FIFOs are 4 KB and
    # take one BRAM36 each.
    def brams_for(count: int, bytes_each: int) -> float:
        per_macro_bram18 = max(1, -(-bytes_each // _BRAM18_BYTES))
        return count * per_macro_bram18 / 2

    bram36 = (
        brams_for(inv.input_seq_macros, inv.input_seq_bytes_each)
        + brams_for(inv.m_wavefront_macros, inv.m_wavefront_bytes_each)
        + brams_for(inv.id_wavefront_macros, inv.id_wavefront_bytes_each)
        + inv.fifo_macros  # one BRAM36 each
    )
    return FpgaReport(
        luts=luts,
        ffs=ffs,
        bram36=bram36,
        frequency_hz=FPGA_FREQUENCY_HZ,
        device=device,
    )


def max_aligners_on(
    device: FpgaDevice, parallel_sections: int = 64, limit: int = 64
) -> int:
    """Largest Aligner count of the given width that fits the device."""
    best = 0
    for count in range(1, limit + 1):
        cfg = WfasicConfig(
            num_aligners=count,
            parallel_sections=parallel_sections,
            backtrace=False,
        )
        if fpga_report(cfg, device).fits:
            best = count
        else:
            break
    return best
