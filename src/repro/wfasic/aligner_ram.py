"""RAM-accurate Aligner — the gate-level-simulation analog (§5.1).

The fast :class:`~repro.wfasic.aligner.Aligner` computes wavefronts with
whole-band numpy kernels; this variant additionally routes **every
wavefront access through the banked RAM model of Fig. 6**
(:class:`~repro.wfasic.rams.WavefrontWindowRam`) and every sequence fetch
through the per-section :class:`~repro.wfasic.rams.InputSeqRam` replicas:

* wavefront columns live in the circular frame-column buffer, tagged and
  rotated exactly as §4.3.1 describes (the frame column overwrites the
  oldest column);
* each compute group performs the §4.3.3 access schedule — one parallel
  read of the ``s-o-e`` M column through the duplicated edge banks, one
  parallel read of the ``s-x`` column, one parallel read of the merged
  I/D window, one parallel write — with bank-conflict checking *live*;
* each extend fetches its 16-base blocks from the Input_Seq RAM words
  (2-bit packed), not from the decoded string.

It is 1-2 orders of magnitude slower than the fast Aligner (as GLS is
slower than RTL simulation) and is used the same way the paper uses GLS:
"a less number of inputs", checked for equivalence against the fast
model and the DP oracle.  Any bank conflict, mis-mapped address or
packing bug raises instead of silently diverging.
"""

from __future__ import annotations

import numpy as np

from typing import Callable

from ..align.lattice import ScoreLattice
from ..align.kernels import compute_kernel
from ..align.wfa import NULL_OFFSET
from .config import BASES_PER_RAM_WORD, WfasicConfig
from .extractor import ExtractedJob
from .rams import InputSeqRam, WavefrontWindowRam, wavefront_geometry

__all__ = ["RamAccurateAligner", "RamAlignerResult"]


class RamAlignerResult:
    """Score/success outcome of one RAM-accurate alignment."""

    def __init__(self, alignment_id: int, success: bool, score: int) -> None:
        self.alignment_id = alignment_id
        self.success = success
        self.score = score


class RamAccurateAligner:
    """One Aligner with live banked-RAM semantics (small inputs only)."""

    def __init__(self, config: WfasicConfig) -> None:
        if config.backtrace:
            raise ValueError(
                "the RAM-accurate model verifies the wavefront datapath; "
                "run it with backtrace disabled (origins are checked by "
                "the fast model's tests)"
            )
        self.config = config
        self._lattice = ScoreLattice(config.penalties)
        geo = wavefront_geometry(config)
        self._geo = geo
        n_ps = config.parallel_sections
        self.m_ram = WavefrontWindowRam(
            n_ps=n_ps, rows=geo.rows, columns=geo.m_columns, duplicate_edges=True
        )
        # I and D share macros (§4.6) but have distinct column spaces;
        # model them as two windows over the same bank structure.
        self.i_ram = WavefrontWindowRam(
            n_ps=n_ps, rows=geo.rows, columns=geo.id_columns, duplicate_edges=False
        )
        self.d_ram = WavefrontWindowRam(
            n_ps=n_ps, rows=geo.rows, columns=geo.id_columns, duplicate_edges=False
        )
        # One Input_Seq replica pair per parallel section (§4.3); loading
        # all replicas and reading from the section's own copy verifies
        # the replication story without O(n_ps) memory blowup: keep two
        # replicas (first and last section) and check they stay identical.
        self.seq_a_rams = [InputSeqRam(config.max_read_len) for _ in range(2)]
        self.seq_b_rams = [InputSeqRam(config.max_read_len) for _ in range(2)]

    # -- row/diagonal mapping (Fig. 6: row = k_max - k) ------------------------

    def _row(self, k: int) -> int:
        return self.config.k_max - k

    # -- sequence fetch through the RAM words ------------------------------------

    def _fetch_base(self, rams: list[InputSeqRam], section: int, pos: int) -> int:
        """2-bit code of base ``pos`` via the section's RAM replica."""
        ram = rams[section % len(rams)]
        word = ram.read_word(InputSeqRam.HEADER_WORDS + pos // BASES_PER_RAM_WORD)
        return (word >> (2 * (pos % BASES_PER_RAM_WORD))) & 0x3

    # -- the main loop --------------------------------------------------------------

    def run(
        self, job: ExtractedJob, probe: Callable[..., object] | None = None
    ) -> RamAlignerResult:
        """Align one job; ``probe(s, band, column)`` is called after each
        wavefront step with the frame column's contents (test hook)."""
        cfg = self.config
        if not job.supported:
            return RamAlignerResult(job.alignment_id, False, 0)
        for ram in self.seq_a_rams:
            ram.load(job.alignment_id, job.len_a, job.packed_a)
        for ram in self.seq_b_rams:
            ram.load(job.alignment_id, job.len_b, job.packed_b)
        assert (
            self.seq_a_rams[0].base_words() == self.seq_a_rams[1].base_words()
        ).all(), "Input_Seq replicas diverged"

        # The Aligner reads the lengths from address 1 (§4.3.2).
        n = self.seq_a_rams[0].length
        m = self.seq_b_rams[0].length
        k_final = m - n
        if abs(k_final) > cfg.k_max:
            return RamAlignerResult(job.alignment_id, False, 0)

        p = cfg.penalties
        x, oe, e = p.mismatch, p.gap_open_total, p.gap_extend
        g = p.score_granularity
        geo = self._geo
        n_ps = cfg.parallel_sections

        # Column tags: which score currently lives in each circular slot.
        m_tags: dict[int, int] = {}
        id_tags: dict[int, int] = {}

        def m_col(score: int) -> int | None:
            slot = (score // g) % geo.m_columns
            return slot if m_tags.get(slot) == score else None

        def id_col(score: int) -> int | None:
            slot = (score // g) % geo.id_columns
            return slot if id_tags.get(slot) == score else None

        # Initialise: M[0] at k=0 with extension.
        for col in range(geo.m_columns):
            self.m_ram.clear_column(col)
        for col in range(geo.id_columns):
            self.i_ram.clear_column(col)
            self.d_ram.clear_column(col)
        off0 = self._extend_cell(0, 0, n, m)
        slot0 = 0
        self._write_cell(self.m_ram, slot0, self._row(0), off0)
        m_tags[slot0] = 0
        if off0 == m and k_final == 0:
            return RamAlignerResult(job.alignment_id, True, 0)

        s = 0
        while True:
            s += g
            if s > cfg.max_score:
                return RamAlignerResult(job.alignment_id, False, 0)
            band = self._lattice.m_band(s)
            if band is None:
                continue
            band = band.clamped(max(-cfg.k_max, -n), min(cfg.k_max, m))
            if band is None:
                continue

            # Rotate the frame columns onto the oldest slots and tag them.
            m_frame = (s // g) % geo.m_columns
            id_frame = (s // g) % geo.id_columns
            self.m_ram.clear_column(m_frame)
            self.i_ram.clear_column(id_frame)
            self.d_ram.clear_column(id_frame)
            m_tags[m_frame] = s
            id_tags[id_frame] = s

            src_mx = m_col(s - x) if s - x >= 0 else None
            src_moe = m_col(s - oe) if s - oe >= 0 else None
            src_ide = id_col(s - e) if s - e >= 0 else None

            any_live = False
            # Process the frame column in aligned groups of n_ps rows, as
            # the parallel sections do.
            row_lo = self._row(band.hi)  # highest k -> lowest row
            row_hi = self._row(band.lo)
            group_base = (row_lo // n_ps) * n_ps
            for base in range(group_base, row_hi + 1, n_ps):
                rows = [
                    r for r in range(base, min(base + n_ps, geo.rows))
                ]
                ks = np.array([cfg.k_max - r for r in rows], dtype=np.int64)
                in_band = (ks >= band.lo) & (ks <= band.hi)

                # Access 1: the s-o-e M column — ONE parallel read of rows
                # base-1 .. base+n_ps (the k-1 and k+1 windows together);
                # only the duplicated edge banks make this conflict-free,
                # which is exactly the Fig. 6 design point under test.
                m_oe_km1, m_oe_kp1 = self._read_oe_window(src_moe, rows)
                # Access 2: the s-x M column, same rows.
                m_x = self._read_shifted(self.m_ram, src_mx, ks)
                # Access 3 (parallel with the M accesses): I/D windows —
                # I[s-e, k-1] lives on diagonals ks-1, D[s-e, k+1] on ks+1.
                i_e_km1 = self._read_shifted(self.i_ram, src_ide, ks - 1)
                d_e_kp1 = self._read_shifted(self.d_ram, src_ide, ks + 1)

                out = compute_kernel(
                    m_x, m_oe_km1, i_e_km1, m_oe_kp1, d_e_kp1, ks, n, m
                )
                mvals = out.m.copy()
                mvals[~in_band] = NULL_OFFSET
                ivals = out.i.copy()
                ivals[~in_band] = NULL_OFFSET
                dvals = out.d.copy()
                dvals[~in_band] = NULL_OFFSET

                # Extend the M cells (one Extend sub-module per section).
                for idx, k in enumerate(ks):
                    if mvals[idx] >= 0:
                        mvals[idx] = self._extend_cell(
                            int(mvals[idx]), int(k), n, m, section=idx
                        )
                        any_live = True

                # Access 4: one parallel write per window.
                self.m_ram.write_group(m_frame, base, mvals)
                self.i_ram.write_group(id_frame, base, ivals)
                self.d_ram.write_group(id_frame, base, dvals)

            if probe is not None:
                probe(s, band, self.m_ram.column(m_frame).copy())
            if not any_live:
                continue
            if band.lo <= k_final <= band.hi:
                row = self._row(k_final)
                value = int(self.m_ram.column(m_frame)[row])
                if value == m:
                    return RamAlignerResult(job.alignment_id, True, s)

    # -- helpers ---------------------------------------------------------------------

    def _read_oe_window(
        self, col: int | None, group_rows: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """One combined parallel read of the ``s-o-e`` column.

        Returns the ``M[s-o-e, k-1]`` and ``M[s-o-e, k+1]`` windows for
        the group.  With ``row = k_max - k``: ``k-1`` lives at ``row+1``
        and ``k+1`` at ``row-1``, so the combined footprint is rows
        ``base-1 .. base+n_ps`` — the §4.3.1 access that needs RAM 1'/4'.
        """
        width = len(group_rows)
        if col is None:
            null = np.full(width, NULL_OFFSET, dtype=np.int64)
            return null, null.copy()
        footprint = [
            r
            for r in range(group_rows[0] - 1, group_rows[-1] + 2)
            if 0 <= r < self._geo.rows
        ]
        values = dict(zip(footprint, self.m_ram.read_rows(col, footprint)))
        km1 = np.array(
            [values.get(r + 1, NULL_OFFSET) for r in group_rows], dtype=np.int64
        )
        kp1 = np.array(
            [values.get(r - 1, NULL_OFFSET) for r in group_rows], dtype=np.int64
        )
        return km1, kp1

    def _read_shifted(
        self, ram: WavefrontWindowRam, col: int | None, ks: np.ndarray
    ) -> np.ndarray:
        """Parallel read of cells at diagonals ``ks`` from a column."""
        if col is None:
            return np.full(len(ks), NULL_OFFSET, dtype=np.int64)
        rows = [self.config.k_max - int(k) for k in ks]
        valid = [0 <= r < self._geo.rows for r in rows]
        out = np.full(len(ks), NULL_OFFSET, dtype=np.int64)
        live_rows = [r for r, v in zip(rows, valid) if v]
        if live_rows:
            values = ram.read_rows(col, live_rows)
            out[np.array(valid)] = values
        return out

    def _write_cell(
        self, ram: WavefrontWindowRam, col: int, row: int, value: int
    ) -> None:
        base = (row // self.config.parallel_sections) * self.config.parallel_sections
        group = np.full(
            min(self.config.parallel_sections, self._geo.rows - base),
            NULL_OFFSET,
            dtype=np.int64,
        )
        group[row - base] = value
        # Merge with existing contents (single-cell init write).
        existing = ram.column(col)[base : base + len(group)].copy()
        existing[row - base] = value
        ram.write_group(col, base, existing)

    def _extend_cell(
        self, offset: int, k: int, n: int, m: int, *, section: int = 0
    ) -> int:
        """Greedy extension fetching bases through the Input_Seq RAMs."""
        i = offset - k
        j = offset
        while i < n and j < m and (
            self._fetch_base(self.seq_a_rams, section, i)
            == self._fetch_base(self.seq_b_rams, section, j)
        ):
            i += 1
            j += 1
        return j
