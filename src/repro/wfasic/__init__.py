"""The WFAsic accelerator model — the paper's primary contribution.

Public surface:

* :class:`WfasicConfig` — static configuration (Aligners, parallel
  sections, ``k_max``, MAX_READ_LEN, backtrace enable; Eq. 5/6 limits).
* :class:`WfasicAccelerator` — the top level (Fig. 5): runs input images
  through DMA/Extractor/Aligners/Collector with cycle accounting.
* :class:`Aligner` — one Aligner module (Extend/Compute parallel
  sections over banked wavefront vectors).
* :class:`CpuBacktracer` — the CPU-side backtrace over the streamed
  origin data, with and without data separation (§4.5).
* :func:`asic_report` — GF22FDX area/memory/frequency/power model.
* :func:`max_efficient_aligners` — Eq. 7.
* ``packets`` — byte-exact memory formats of the co-design interface.
"""

from .accelerator import (
    BatchResult,
    ScheduledAlignment,
    WfasicAccelerator,
    max_efficient_aligners,
    schedule_makespan,
)
from .aligner import Aligner, AlignerRun, AlignerStats, AlignerTimings
from .aligner_ram import RamAccurateAligner
from .asic_model import (
    GF22_FREQUENCY_HZ,
    GF22_POWER_W,
    AsicReport,
    MacroInventory,
    asic_report,
    configs_within_budget,
)
from .backtrace_cpu import (
    BacktraceStreamError,
    CpuBacktraceResult,
    CpuBacktraceWork,
    CpuBacktracer,
    StepIndex,
)
from .collector import CollectorBT, CollectorNBT, CollectorOutput
from .compute import ComputeStage, ComputeTimings
from .config import AXI_DATA_BYTES, BASES_PER_RAM_WORD, WfasicConfig
from .dma import DmaTimings, read_pair_cycles, stream_cycles
from .extend import ExtendStage, ExtendTimings
from .extractor import ExtractedJob, Extractor
from .fpga_model import U280, FpgaReport, fpga_report
from .fifo import FifoError, ShowAheadFifo
from .pipeline import FluidPipelineSim, PipelineJob, PipelineResult

__all__ = [
    "AXI_DATA_BYTES",
    "Aligner",
    "AlignerRun",
    "AlignerStats",
    "AlignerTimings",
    "AsicReport",
    "BASES_PER_RAM_WORD",
    "BacktraceStreamError",
    "BatchResult",
    "CollectorBT",
    "CollectorNBT",
    "CollectorOutput",
    "ComputeStage",
    "ComputeTimings",
    "CpuBacktraceResult",
    "CpuBacktraceWork",
    "CpuBacktracer",
    "DmaTimings",
    "ExtendStage",
    "ExtendTimings",
    "ExtractedJob",
    "FluidPipelineSim",
    "FpgaReport",
    "Extractor",
    "FifoError",
    "GF22_FREQUENCY_HZ",
    "GF22_POWER_W",
    "MacroInventory",
    "PipelineJob",
    "PipelineResult",
    "RamAccurateAligner",
    "ScheduledAlignment",
    "ShowAheadFifo",
    "StepIndex",
    "U280",
    "WfasicAccelerator",
    "WfasicConfig",
    "asic_report",
    "configs_within_budget",
    "fpga_report",
    "max_efficient_aligners",
    "read_pair_cycles",
    "schedule_makespan",
    "stream_cycles",
]
