"""The WFAsic DMA engine (§4.1): AXI-Full burst timing + data movement.

The accelerator "has direct access to the off-chip main memory through
the memory controller via the AXI-Full bus" with a 16-byte data width.
Table 1's *Reading Cycles* column is the per-pair cost of streaming one
pair record into the Input FIFO; the model below reproduces it:

* transfers move in bursts of ``burst_beats`` 16-byte beats,
* each burst costs ``cycles_per_burst`` (data beats + AXI/DDR protocol
  overhead),
* each pair pays a fixed dispatch overhead (address generation and the
  Extractor hand-off).

Calibration against Table 1 (see DESIGN.md §5): with 4-beat bursts at 11
cycles and 20 dispatch cycles, a 112-base-padded 100 bp pair costs
3 + 2*7 = 17 beats -> 5 bursts -> 75 cycles, the paper's exact number;
1 kbp and 10 kbp land within 2%.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import AXI_DATA_BYTES
from .packets import pair_record_sections

__all__ = ["DmaTimings", "read_pair_cycles", "stream_cycles", "beats_for_bytes"]


@dataclass(frozen=True)
class DmaTimings:
    """AXI-Full burst cycle model (calibrated to Table 1)."""

    burst_beats: int = 4
    cycles_per_burst: int = 11
    #: Per-pair dispatch overhead (descriptor + Extractor hand-off).
    pair_setup_cycles: int = 20

    def __post_init__(self) -> None:
        if self.burst_beats < 1 or self.cycles_per_burst < 1:
            raise ValueError("burst parameters must be >= 1")
        if self.pair_setup_cycles < 0:
            raise ValueError("pair_setup_cycles must be >= 0")


def beats_for_bytes(num_bytes: int) -> int:
    """16-byte beats needed to move ``num_bytes``."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be >= 0")
    return -(-num_bytes // AXI_DATA_BYTES)


def stream_cycles(num_beats: int, timings: DmaTimings = DmaTimings()) -> int:
    """Cycles to stream ``num_beats`` beats (no per-pair overhead)."""
    if num_beats < 0:
        raise ValueError("num_beats must be >= 0")
    bursts = -(-num_beats // timings.burst_beats)
    return bursts * timings.cycles_per_burst


def read_pair_cycles(max_read_len: int, timings: DmaTimings = DmaTimings()) -> int:
    """Table 1 'Reading Cycles': one pair record at this MAX_READ_LEN."""
    beats = pair_record_sections(max_read_len)
    return timings.pair_setup_cycles + stream_cycles(beats, timings)
