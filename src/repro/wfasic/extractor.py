"""The Extractor module (§4.2).

The Extractor monitors the Aligners, and when one is idle it pulls one
pair record from the Input FIFO (16 bytes per clock), decodes it, packs
the bases to 2 bits each, and streams them into the idle Aligner's
Input_Seq RAMs.  It also performs the two §4.2 validity checks:

* reads longer than the configured ``MAX_READ_LEN`` and
* reads containing 'N' (unknown) bases

are flagged unsupported; the Aligner then skips the pair and reports it
with the Success flag cleared (the alignment ID still identifies it).

Dummy padding bases beyond the declared length are ignored (they are
detectable from the length fields).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import AXI_DATA_BYTES, BASES_PER_RAM_WORD
from .packets import (
    SECTION_BYTES,
    decode_pair_record,
    pack_bases,
    pair_record_sections,
)

__all__ = [
    "ExtractedJob",
    "Extractor",
    "UNSUPPORTED_TOO_LONG",
    "UNSUPPORTED_BAD_BASE",
    "HARDWARE_BASES",
    "read_support_reason",
]

#: Reason codes for unsupported jobs (reported in stats/logs, not bits).
UNSUPPORTED_TOO_LONG = "length exceeds MAX_READ_LEN"
UNSUPPORTED_BAD_BASE = "contains non-ACGT bases"

_ACGT = frozenset(b"ACGT")

#: The alphabet the Aligners can pack to 2 bits (§4.2).  Anything else —
#: 'N' included — makes a read *unsupported*: the hardware skips the pair
#: and clears its Success flag rather than mis-scoring it.
HARDWARE_BASES = frozenset("ACGT")


def read_support_reason(seq: str, max_read_len: int | None = None) -> str | None:
    """The §4.2 unsupported-read policy, shared with the software engine.

    Returns the reason a read would be rejected by the Extractor
    (:data:`UNSUPPORTED_TOO_LONG` / :data:`UNSUPPORTED_BAD_BASE`), or
    ``None`` for a supported read.  The batch engine applies the same
    policy at its boundary so software and hardware backends agree on
    what "unsupported" means.
    """
    if max_read_len is not None and len(seq) > max_read_len:
        return UNSUPPORTED_TOO_LONG
    if not HARDWARE_BASES >= set(seq):
        return UNSUPPORTED_BAD_BASE
    return None


@dataclass(frozen=True)
class ExtractedJob:
    """One pair as delivered to an Aligner.

    ``packed_a``/``packed_b`` are the 2-bit-packed Input_Seq RAM words;
    ``seq_a``/``seq_b`` the decoded sequences (empty for unsupported
    jobs).  ``extract_cycles`` is the Extractor's occupancy for this pair
    (one 16-byte section per clock, §4.2).
    """

    alignment_id: int
    supported: bool
    unsupported_reason: str | None
    seq_a: str
    seq_b: str
    packed_a: np.ndarray
    packed_b: np.ndarray
    len_a: int
    len_b: int
    extract_cycles: int


class Extractor:
    """Decode pair records into Aligner jobs.

    Parameters
    ----------
    max_read_len:
        The batch ``MAX_READ_LEN`` configured by the CPU over AXI-Lite
        (must not exceed the hardware's own limit; the driver enforces
        that).
    """

    def __init__(self, max_read_len: int) -> None:
        if max_read_len % BASES_PER_RAM_WORD:
            raise ValueError("max_read_len must be a multiple of 16")
        self.max_read_len = max_read_len
        self.record_bytes = pair_record_sections(max_read_len) * SECTION_BYTES
        self.jobs_extracted = 0
        self.jobs_rejected = 0

    # -- stream framing -----------------------------------------------------

    def record_size(self) -> int:
        """Bytes per pair record for this batch configuration."""
        return self.record_bytes

    def split_stream(self, image: bytes) -> list[bytes]:
        """Cut a raw input image into per-pair records."""
        if len(image) % self.record_bytes:
            raise ValueError(
                f"input image size {len(image)} is not a multiple of the "
                f"record size {self.record_bytes}"
            )
        return [
            image[off : off + self.record_bytes]
            for off in range(0, len(image), self.record_bytes)
        ]

    # -- extraction -----------------------------------------------------------

    def extract(self, record: bytes) -> ExtractedJob:
        """Decode one pair record into an :class:`ExtractedJob`."""
        decoded = decode_pair_record(record, self.max_read_len)
        cycles = len(record) // AXI_DATA_BYTES  # one section per clock

        reason = self._validate(decoded.len_a, decoded.seq_a) or self._validate(
            decoded.len_b, decoded.seq_b
        )
        if reason is not None:
            self.jobs_rejected += 1
            empty = np.zeros(0, dtype=np.uint32)
            return ExtractedJob(
                alignment_id=decoded.alignment_id,
                supported=False,
                unsupported_reason=reason,
                seq_a="",
                seq_b="",
                packed_a=empty,
                packed_b=empty,
                len_a=decoded.len_a,
                len_b=decoded.len_b,
                extract_cycles=cycles,
            )

        seq_a = decoded.seq_a[: decoded.len_a].decode("ascii")
        seq_b = decoded.seq_b[: decoded.len_b].decode("ascii")
        # Pack the padded buffers, normalising the dummy region: the
        # Extractor "ignores the dummy bases when it reads them" (§4.2),
        # so whatever the CPU left beyond the declared length packs as a
        # harmless base and is never read by the Aligner.
        packed_a = pack_bases(self._with_clean_padding(decoded.seq_a, decoded.len_a))
        packed_b = pack_bases(self._with_clean_padding(decoded.seq_b, decoded.len_b))
        self.jobs_extracted += 1
        return ExtractedJob(
            alignment_id=decoded.alignment_id,
            supported=True,
            unsupported_reason=None,
            seq_a=seq_a,
            seq_b=seq_b,
            packed_a=packed_a,
            packed_b=packed_b,
            len_a=decoded.len_a,
            len_b=decoded.len_b,
            extract_cycles=cycles,
        )

    def extract_image(self, image: bytes) -> list[ExtractedJob]:
        """Decode a whole batch image in stream order."""
        return [self.extract(rec) for rec in self.split_stream(image)]

    @staticmethod
    def _with_clean_padding(stored: bytes, length: int) -> np.ndarray:
        arr = np.frombuffer(stored, dtype=np.uint8).copy()
        arr[length:] = ord("A")
        return arr

    # -- validation ------------------------------------------------------------

    def _validate(self, length: int, stored: bytes) -> str | None:
        if length > self.max_read_len:
            return UNSUPPORTED_TOO_LONG
        prefix = stored[:length]
        if not set(prefix) <= _ACGT:
            return UNSUPPORTED_BAD_BASE
        return None
