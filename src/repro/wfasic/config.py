"""WFAsic accelerator configuration (§4 / §5 of the paper).

The shipped chip configuration (§5, bullet list) is one Aligner with 64
parallel sections, 10 kbp maximum read length, and support for error
scores up to 8000 — i.e. up to 1 K differences in the all-gap-openings
worst case (Eq. 5).  :func:`WfasicConfig.paper_default` reproduces it;
the FPGA-prototype experiments (Figs. 10/11) use other aligner/PS counts
through the same dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..align.penalties import AffinePenalties, DEFAULT_PENALTIES

__all__ = ["WfasicConfig", "AXI_DATA_BYTES", "BASES_PER_RAM_WORD"]

#: Data width of the AXI-Full bus and of both FIFOs (§4.1): 16 bytes.
AXI_DATA_BYTES = 16

#: Bases per Input_Seq RAM word: 16 bases x 2 bits = 4 bytes (§4.2).
BASES_PER_RAM_WORD = 16


@dataclass(frozen=True)
class WfasicConfig:
    """Static configuration of one WFAsic instance.

    Attributes
    ----------
    num_aligners:
        Aligner modules operating on independent pairs in parallel (§4.1).
    parallel_sections:
        Extend/Compute sub-module pairs per Aligner; one wavefront cell is
        processed per section per step (§4.3).
    max_read_len:
        Maximum supported read length in bases; must be divisible by 16
        (§4.2).  Runtime input sets choose a per-batch ``MAX_READ_LEN`` no
        larger than this.
    k_max:
        Wavefront vector half-length (§4.3.1).  Bounds the supported
        alignment score via Eq. 6.
    backtrace:
        Whether backtrace data generation is enabled (§4.1).
    penalties:
        Gap-affine penalties baked into the Compute sub-modules.
    """

    num_aligners: int = 1
    parallel_sections: int = 64
    max_read_len: int = 10_000
    k_max: int = 3_998
    backtrace: bool = True
    penalties: AffinePenalties = field(default_factory=lambda: DEFAULT_PENALTIES)

    def __post_init__(self) -> None:
        if self.num_aligners < 1:
            raise ValueError("num_aligners must be >= 1")
        if self.parallel_sections < 1:
            raise ValueError("parallel_sections must be >= 1")
        if self.max_read_len < 1:
            raise ValueError("max_read_len must be >= 1")
        if self.max_read_len % BASES_PER_RAM_WORD:
            # §4.2 requires divisibility by the AXI width in bases; the
            # hardware rounds 10 000 down to RAM words, so we only insist
            # on base-per-word alignment.
            raise ValueError(
                f"max_read_len must be divisible by {BASES_PER_RAM_WORD}"
            )
        if self.k_max < 1:
            raise ValueError("k_max must be >= 1")
        if self.backtrace and (self.parallel_sections * 5) % 80:
            # Origin blocks are parallel_sections x 5 bits and must frame
            # into whole 10-byte transaction payloads (§4.3.3/§4.4): the
            # shipped 64 PS gives the paper's 320-bit (40-byte) blocks.
            raise ValueError(
                "with backtrace enabled, parallel_sections must be a "
                "multiple of 16 so origin blocks frame into 10-byte payloads"
            )

    # -- paper constants ---------------------------------------------------

    @classmethod
    def paper_default(cls, *, backtrace: bool = True) -> "WfasicConfig":
        """The shipped chip: 1 Aligner x 64 PS, 10 kbp, score <= 8000.

        ``max_read_len`` is 10 000 rounded up to a whole number of RAM
        words (10 000 is already divisible by 16... it is not: 10 000 =
        625 x 16, so it is).  ``k_max`` = 3998 makes Eq. 6 yield exactly
        the paper's 8000 score bound.
        """
        return cls(
            num_aligners=1,
            parallel_sections=64,
            max_read_len=10_000,
            k_max=3_998,
            backtrace=backtrace,
        )

    def with_backtrace(self, enabled: bool) -> "WfasicConfig":
        """Copy with the backtrace functionality toggled (§4.1)."""
        return replace(self, backtrace=enabled)

    # -- derived limits (Eqs. 5/6) ------------------------------------------

    @property
    def max_score(self) -> int:
        """Eq. 6: ``Score_max = k_max * 2 + 4``.

        An alignment whose penalty exceeds this terminates with the
        Success flag cleared.
        """
        return self.k_max * 2 + 4

    def supports(self, num_x: int, num_open: int, num_extend: int) -> bool:
        """Eq. 5: whether an error profile fits the score budget.

        ``num_extend`` counts *all* gap characters (each paying ``e``);
        ``num_open`` counts gap runs (each additionally paying ``o``).
        """
        p = self.penalties
        cost = (
            num_x * p.mismatch
            + num_open * p.gap_open_total
            + (num_extend - num_open) * p.gap_extend
        )
        return cost <= self.max_score

    @property
    def max_differences_worst_case(self) -> int:
        """Worst-case supported differences: all gap openings (§4, ~1 K)."""
        return self.max_score // self.penalties.gap_open_total

    @property
    def input_seq_ram_words(self) -> int:
        """Input_Seq RAM depth: ID word + length word + packed bases (§4.2)."""
        return 2 + self.max_read_len // BASES_PER_RAM_WORD

    @property
    def wavefront_slots(self) -> int:
        """Cells per wavefront vector: diagonals ``-k_max..k_max``."""
        return 2 * self.k_max + 1

    @property
    def bt_block_bytes(self) -> int:
        """Bytes per origin block: 5 bits per parallel section (§4.3.3)."""
        return self.parallel_sections * 5 // 8
