"""The Extend sub-module model (§4.3.2).

Each parallel section owns one Extend sub-module fed from its private
Input_Seq RAM replicas.  The hardware pipeline: compute the two start
addresses from (offset, k), fetch two RAM words per sequence so the
comparator window can straddle a word boundary, shift-align, then compare
**16 bases per clock cycle after five initial cycles** until a mismatch
or a sequence end.

The model runs the functional part through the shared
:func:`repro.align.kernels.extend_kernel` (identical results to the
software WFA) and charges cycles per the pipeline description: a group of
``n_ps`` cells extends in lockstep across the parallel sections, so the
group's latency is the pipeline fill plus the *longest* block run in the
group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.kernels import ExtendOutput, extend_kernel

__all__ = ["ExtendTimings", "ExtendStage", "group_latencies"]


@dataclass(frozen=True)
class ExtendTimings:
    """Cycle constants of the Extend pipeline.

    ``pipeline_fill`` is straight from §4.3.2 ("the comparator compares 16
    bases of the sequences at each clock cycle, after five initial
    cycles"); ``cycles_per_block`` is one by construction of the 32-bit
    comparator.
    """

    pipeline_fill: int = 5
    cycles_per_block: int = 1


def group_latencies(
    blocks: np.ndarray, group_size: int, timings: ExtendTimings
) -> np.ndarray:
    """Latency of each lockstep group given per-cell block counts.

    Cells are grouped in band order (``group_size`` consecutive
    diagonals per group — one per parallel section).  A group's latency
    is ``pipeline_fill + cycles_per_block * max(blocks in group, 1)``:
    even a group of boundary cells (zero blocks) spends the fill cycles
    computing start addresses and detecting the boundary.
    """
    width = len(blocks)
    if width == 0:
        return np.zeros(0, dtype=np.int64)
    n_groups = -(-width // group_size)
    padded = np.zeros(n_groups * group_size, dtype=np.int64)
    padded[:width] = blocks
    per_group = padded.reshape(n_groups, group_size).max(axis=1)
    return timings.pipeline_fill + timings.cycles_per_block * np.maximum(
        per_group, 1
    )


class ExtendStage:
    """Functional + cycle model of one frame column's extension."""

    def __init__(
        self, group_size: int, timings: ExtendTimings | None = None
    ) -> None:
        self.group_size = group_size
        self.timings = timings or ExtendTimings()
        self.total_cycles = 0
        self.total_blocks = 0
        self.total_matches = 0

    def run(
        self,
        av_pad: np.ndarray,
        bv_pad: np.ndarray,
        n: int,
        m: int,
        offsets: np.ndarray,
        lo: int,
    ) -> tuple[ExtendOutput, int]:
        """Extend one frame column; returns (kernel output, cycles)."""
        out = extend_kernel(av_pad, bv_pad, n, m, offsets, lo)
        cycles = int(group_latencies(out.blocks, self.group_size, self.timings).sum())
        self.total_cycles += cycles
        self.total_blocks += int(out.blocks.sum())
        self.total_matches += out.matches
        return out, cycles
