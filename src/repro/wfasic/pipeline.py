"""Fluid event-driven pipeline timing — output-bandwidth contention.

The analytic batch schedule (`accelerator.schedule_makespan`) serialises
reads and parallelises alignments, but treats the output path as a batch-
level afterthought.  §4.1 warns that "transferring huge amount of
backtrace data ... may limit the performance of WFAsic": with backtrace
on, every compute group emits a 40-byte block (4 output transactions),
and several Aligners share one 16-byte output port.

This module refines the timing with a *fluid* model: each active
alignment demands output bandwidth proportional to its block-emission
rate (``output_txns / align_cycles``); whenever the summed demand exceeds
the port rate (``burst_beats / cycles_per_burst`` transactions per
cycle), all active Aligners throttle by the common factor — the §4.6
show-ahead FIFOs make the coupling smooth, so a proportional fluid
approximation is appropriate.  With backtrace off (zero output demand)
the model reduces exactly to the analytic schedule, which the tests
assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dma import DmaTimings

__all__ = ["PipelineJob", "PipelineResult", "FluidPipelineSim"]


@dataclass(frozen=True)
class PipelineJob:
    """One pair's resource profile."""

    read_cycles: int
    align_cycles: int
    output_txns: int = 0

    def __post_init__(self) -> None:
        if self.read_cycles < 0 or self.align_cycles < 0 or self.output_txns < 0:
            raise ValueError("job costs must be >= 0")


@dataclass
class PipelineResult:
    """Timing outcome of one fluid simulation."""

    makespan: float
    completion_times: list[float]
    #: Extra cycles lost to output-port throttling vs the unthrottled run.
    throttle_cycles: float

    @property
    def output_limited(self) -> bool:
        return self.throttle_cycles > 0.5


class FluidPipelineSim:
    """Fluid-flow timing of the DMA/Extractor/Aligner/Collector pipeline."""

    def __init__(
        self,
        num_aligners: int,
        *,
        dma: DmaTimings | None = None,
    ) -> None:
        if num_aligners < 1:
            raise ValueError("num_aligners must be >= 1")
        self.num_aligners = num_aligners
        dma = dma or DmaTimings()
        #: Sustained output-port rate in transactions (16-byte beats) per
        #: cycle: one burst of ``burst_beats`` every ``cycles_per_burst``.
        # wfalint: disable=W002 — a rate (txns/cycle), not a counter
        self.output_rate = dma.burst_beats / dma.cycles_per_burst

    def run(self, jobs: list[PipelineJob]) -> PipelineResult:
        if not jobs:
            return PipelineResult(0.0, [], 0.0)

        pending = list(enumerate(jobs))
        completion = [0.0] * len(jobs)

        # Aligner states: None (idle) or [job_index, remaining_cycles, demand].
        active: list[list] = []
        idle_aligners = self.num_aligners
        reader_busy_until: float | None = None
        reader_job: tuple[int, PipelineJob] | None = None

        t = 0.0

        def slowdown() -> float:
            demand = sum(entry[2] for entry in active)
            return max(1.0, demand / self.output_rate)

        while pending or active or reader_job is not None:
            # Dispatch the reader when possible.
            if reader_job is None and pending and idle_aligners > 0:
                idx, job = pending.pop(0)
                reader_job = (idx, job)
                idle_aligners -= 1  # reserved for this job
                reader_busy_until = t + job.read_cycles

            # Next event: reader completion or an alignment completion.
            s = slowdown()
            candidates: list[float] = []
            if reader_job is not None:
                candidates.append(reader_busy_until)
            for entry in active:
                candidates.append(t + entry[1] * s)
            if not candidates:
                break
            t_next = min(candidates)

            # Advance all active alignments by the elapsed fluid progress.
            dt = t_next - t
            if dt > 0:
                progress = dt / s
                for entry in active:
                    entry[1] -= progress
            t = t_next

            # Retire finished alignments.
            for entry in [e for e in active if e[1] <= 1e-9]:
                active.remove(entry)
                completion[entry[0]] = t
                idle_aligners += 1

            # Reader hand-off: the job starts aligning.
            if reader_job is not None and t >= reader_busy_until - 1e-9:
                idx, job = reader_job
                demand = (
                    # wfalint: disable=W002 — fluid-flow demand rate, not a counter
                    job.output_txns / job.align_cycles if job.align_cycles else 0.0
                )
                if job.align_cycles:
                    # wfalint: disable=W002 — fluid model advances fractional cycles
                    active.append([idx, float(job.align_cycles), demand])
                else:
                    completion[idx] = t
                    idle_aligners += 1
                reader_job = None

        makespan = max(max(completion), t)
        # Unthrottled reference: the analytic schedule.
        from .accelerator import schedule_makespan

        reference = schedule_makespan(
            jobs[0].read_cycles if jobs else 0,
            [j.align_cycles for j in jobs],
            self.num_aligners,
        )
        return PipelineResult(
            makespan=makespan,
            completion_times=completion,
            throttle_cycles=max(0.0, makespan - reference),
        )
