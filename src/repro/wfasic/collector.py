"""The Collector modules (§4.4): result framing toward main memory.

Two collectors exist; only one is active per run:

* **Collector NBT** (backtrace disabled): each alignment yields one
  4-byte record (Success, 15-bit score, 16-bit ID); four records are
  merged per 16-byte memory transaction so the design "is less limited
  by the accelerator-memory bandwidth".
* **Collector BT** (backtrace enabled): each 40-byte origin block from an
  Aligner becomes four 16-byte transactions (10 payload bytes + counter +
  ID/Last info each); the stream of an alignment terminates with one
  score-record transaction whose Last flag is set.

With several Aligners, the BT streams of concurrently-running alignments
interleave in completion order — exactly the situation that forces the
CPU's data-separation step (§4.5) and motivates the paper's final
single-Aligner configuration.  :meth:`CollectorBT.interleave` models that
at block granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .aligner import AlignerRun
from .packets import (
    SECTION_BYTES,
    NbtRecord,
    pack_bt_block,
    pack_bt_final_block,
    pack_nbt_record,
)

__all__ = ["CollectorNBT", "CollectorBT", "CollectorOutput"]


@dataclass(frozen=True)
class CollectorOutput:
    """What a collector hands to the output FIFO / DMA."""

    transactions: list[bytes]

    @property
    def num_transactions(self) -> int:
        return len(self.transactions)

    @property
    def total_bytes(self) -> int:
        return sum(len(t) for t in self.transactions)

    def as_stream(self) -> bytes:
        return b"".join(self.transactions)


class CollectorNBT:
    """Backtrace-disabled collector: 4 score records per transaction."""

    RECORDS_PER_TRANSACTION = 4

    def collect(self, runs: list[AlignerRun]) -> CollectorOutput:
        """Frame the runs' score records, preserving completion order.

        A trailing partial transaction is zero-padded; the CPU side
        detects padding by the batch's known alignment count.
        """
        records = b"".join(
            pack_nbt_record(
                NbtRecord(
                    alignment_id=run.alignment_id,
                    score=run.score if run.success else 0,
                    success=run.success,
                )
            )
            for run in runs
        )
        transactions = []
        for off in range(0, len(records), SECTION_BYTES):
            chunk = records[off : off + SECTION_BYTES]
            transactions.append(chunk.ljust(SECTION_BYTES, b"\x00"))
        return CollectorOutput(transactions=transactions)


class CollectorBT:
    """Backtrace-enabled collector: origin blocks -> 16-byte transactions.

    With the shipped 64 parallel sections each 40-byte block frames into
    four transactions; other PS counts frame proportionally.
    """

    def frame_run(self, run: AlignerRun) -> list[bytes]:
        """All transactions of one alignment, in stream order."""
        if run.bt_blocks is None:
            raise ValueError("CollectorBT needs an Aligner run with backtrace data")
        txns: list[bytes] = []
        counter = 0
        for block in run.bt_blocks:
            framed = pack_bt_block(block, counter, run.alignment_id)
            txns.extend(framed)
            counter += len(framed)
        txns.append(
            pack_bt_final_block(
                run.success, run.k_reached, run.score, counter, run.alignment_id
            )
        )
        return txns

    def collect(self, runs: list[AlignerRun]) -> CollectorOutput:
        """Single-Aligner stream: each alignment's data is consecutive."""
        out: list[bytes] = []
        for run in runs:
            out.extend(self.frame_run(run))
        return CollectorOutput(transactions=out)

    def interleave(self, runs: list[AlignerRun], num_aligners: int) -> CollectorOutput:
        """Multi-Aligner stream: concurrent alignments interleave.

        Models the §4.5 situation: "the backtrace data of each alignment
        is not consecutively written in the memory... distributed among
        the memory based on how the Controller BT schedules them".  The
        schedule here is round-robin at block granularity among the
        ``num_aligners`` alignments in flight, which matches the hardware
        collector polling its Aligners; any interleaving forces the same
        CPU-side separation work.
        """
        if num_aligners < 1:
            raise ValueError("num_aligners must be >= 1")
        if num_aligners == 1:
            return self.collect(runs)
        pending = [iter(self._chunks(run)) for run in runs]
        active: list = []
        out: list[bytes] = []
        queue = list(range(len(runs)))
        # Fill the initial in-flight window.
        while queue and len(active) < num_aligners:
            active.append(pending[queue.pop(0)])
        while active:
            for it in list(active):
                chunk = next(it, None)
                if chunk is None:
                    active.remove(it)
                    if queue:
                        active.append(pending[queue.pop(0)])
                else:
                    out.extend(chunk)
        return CollectorOutput(transactions=out)

    def _chunks(self, run: AlignerRun) -> Iterator[list]:
        """Per-alignment transaction stream, one block's worth at a time."""
        txns = self.frame_run(run)
        if run.bt_blocks:
            per_block = len(pack_bt_block(run.bt_blocks[0], 0, run.alignment_id))
        else:
            per_block = 1
        for off in range(0, len(txns), per_block):
            yield txns[off : off + per_block]
