"""ASIC implementation model (§4.6 / §5.2): macros, memory, area, power.

The paper's physical numbers for the shipped configuration (GF22FDX,
post-PnR): 1.6 mm², 0.48 MB of on-chip memory in 260 register-file
macros occupying 85 % of the area, 1.1 GHz typical corner, 312 mW.

Everything *structural* is derived here from the architecture itself:

* macro inventory — per Aligner, ``2 x n_ps`` Input_Seq replicas (a and b
  per parallel section, §4.3), ``n_ps + 2`` M wavefront banks (Fig. 6's
  duplicated edge banks) and ``n_ps`` merged I/D banks (§4.6), plus the
  two FIFOs; for the shipped 1 x 64 configuration this is
  128 + 66 + 64 + 2 = **260 macros**, the paper's exact count;
* memory bytes — from the RAM geometries (depth x width), landing at
  ~0.476 MB ≈ the paper's 0.48 MB.

What cannot be derived without a PDK — frequency, power, and the silicon
density of a register-file macro — is carried as named constants fitted
once to the paper's reported figures and documented as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import WfasicConfig
from .rams import wavefront_geometry

__all__ = [
    "GF22_FREQUENCY_HZ",
    "GF22_SYNTHESIS_FREQUENCY_HZ",
    "GF22_POWER_W",
    "MacroInventory",
    "AsicReport",
    "asic_report",
    "configs_within_budget",
    "SARGANTANA_AREA_MM2",
    "SARGANTANA_FREQUENCY_HZ",
]

#: Post-PnR frequency, typical corner, 0.8 V, 85 C (§5.2).
GF22_FREQUENCY_HZ = 1.1e9
#: Post-synthesis frequency (§5.2).
GF22_SYNTHESIS_FREQUENCY_HZ = 1.5e9
#: Post-PnR power of the shipped configuration (§5.2).
GF22_POWER_W = 0.312

#: Sargantana CPU physicals (§3, [19]).
SARGANTANA_AREA_MM2 = 1.37
SARGANTANA_FREQUENCY_HZ = 1.26e9

#: Memory-macro silicon density (bytes per mm²), fitted once from the
#: paper: 0.48 MB occupies 85 % of 1.6 mm² -> ~0.35 MB/mm².
_MACRO_BYTES_PER_MM2 = 476_000 / (0.85 * 1.6)

#: Fraction of total area taken by memory macros in the shipped design
#: (§5.2: "260 memory macros that occupy 85% of the area").
_MEMORY_AREA_FRACTION = 0.85

#: Offset-word width in the wavefront RAMs: offsets up to 10 000 plus the
#: invalid-negative encoding fit 16 bits.
_WAVEFRONT_WORD_BYTES = 2

#: Input_Seq RAM word width (§4.2): 16 bases x 2 bits = 4 bytes.
_INPUT_SEQ_WORD_BYTES = 4

#: FIFO geometry (§4.6): 16 bytes x 256 words, two instances.
_FIFO_BYTES = 16 * 256


@dataclass(frozen=True)
class MacroInventory:
    """Counts and sizes of every memory macro class in a configuration."""

    input_seq_macros: int
    input_seq_bytes_each: int
    m_wavefront_macros: int
    m_wavefront_bytes_each: int
    id_wavefront_macros: int
    id_wavefront_bytes_each: int
    fifo_macros: int
    fifo_bytes_each: int

    @property
    def total_macros(self) -> int:
        return (
            self.input_seq_macros
            + self.m_wavefront_macros
            + self.id_wavefront_macros
            + self.fifo_macros
        )

    @property
    def total_bytes(self) -> int:
        return (
            self.input_seq_macros * self.input_seq_bytes_each
            + self.m_wavefront_macros * self.m_wavefront_bytes_each
            + self.id_wavefront_macros * self.id_wavefront_bytes_each
            + self.fifo_macros * self.fifo_bytes_each
        )


def macro_inventory(config: WfasicConfig) -> MacroInventory:
    """Enumerate the memory macros of a configuration (§4.6)."""
    geo = wavefront_geometry(config)
    a = config.num_aligners
    n_ps = config.parallel_sections
    return MacroInventory(
        # Each parallel section replicates both sequences (§4.3).
        input_seq_macros=a * 2 * n_ps,
        input_seq_bytes_each=config.input_seq_ram_words * _INPUT_SEQ_WORD_BYTES,
        m_wavefront_macros=a * geo.m_banks,
        m_wavefront_bytes_each=geo.m_words_per_bank * _WAVEFRONT_WORD_BYTES,
        id_wavefront_macros=a * geo.id_banks,
        id_wavefront_bytes_each=geo.id_words_per_bank * _WAVEFRONT_WORD_BYTES,
        fifo_macros=2,
        fifo_bytes_each=_FIFO_BYTES,
    )


@dataclass(frozen=True)
class AsicReport:
    """Physical estimate of one configuration in GF22FDX."""

    inventory: MacroInventory
    memory_mb: float
    memory_area_mm2: float
    total_area_mm2: float
    frequency_hz: float
    power_w: float

    @property
    def soc_area_mm2(self) -> float:
        """Accelerator + Sargantana, the ~3 mm² chip of §1."""
        return self.total_area_mm2 + SARGANTANA_AREA_MM2


def asic_report(config: WfasicConfig) -> AsicReport:
    """Area/memory/frequency/power estimate for a configuration.

    Area scales with the macro inventory at the fitted register-file
    density, keeping the paper's 85 % memory-area fraction (logic area —
    the Extend/Compute datapaths — scales with the same parallel-section
    count that sets the macro count, so the fraction is stable to first
    order).  Power scales with area; frequency is configuration-
    independent to first order (the critical path is inside one parallel
    section).
    """
    inv = macro_inventory(config)
    memory_mm2 = inv.total_bytes / _MACRO_BYTES_PER_MM2
    total_mm2 = memory_mm2 / _MEMORY_AREA_FRACTION
    paper_inv_bytes = 475_716  # shipped configuration, for power scaling
    power = GF22_POWER_W * (inv.total_bytes / paper_inv_bytes)
    report = AsicReport(
        inventory=inv,
        memory_mb=inv.total_bytes / 1e6,
        memory_area_mm2=memory_mm2,
        total_area_mm2=total_mm2,
        frequency_hz=GF22_FREQUENCY_HZ,
        power_w=power,
    )
    # Imported lazily: the physical model stays usable standalone.
    from ..obs.publish import publish_asic_report

    publish_asic_report(report)
    return report


def configs_within_budget(
    *,
    area_budget_mm2: float | None = None,
    power_budget_w: float | None = None,
    parallel_sections: tuple[int, ...] = (16, 32, 64, 128),
    k_max_values: tuple[int, ...] = (512, 3998),
    max_read_len: int = 10_000,
    include_host: bool = True,
) -> list[WfasicConfig]:
    """Enumerate single-Aligner configurations fitting physical budgets.

    The fleet capacity planner's candidate generator: walks the
    (parallel sections × ``k_max``) grid — the two axes that set the
    macro inventory and therefore area and power — and keeps every
    configuration whose *single-chip* physical estimate fits both
    budgets (``None`` budgets are unconstrained).  ``include_host``
    charges the area budget one Sargantana core per chip
    (:attr:`AsicReport.soc_area_mm2`), the §1 SoC convention; power
    budgets are always accelerator-side, matching the paper's 312 mW
    measurement scope.

    Deterministic order: ascending sections, then ascending ``k_max``.
    A configuration too large for the budgets at one chip is excluded
    outright — no fleet of it can fit either.
    """
    configs: list[WfasicConfig] = []
    for sections in sorted(set(parallel_sections)):
        for k_max in sorted(set(k_max_values)):
            config = WfasicConfig(
                num_aligners=1,
                parallel_sections=sections,
                max_read_len=max_read_len,
                k_max=k_max,
                backtrace=False,
            )
            report = asic_report(config)
            area = report.soc_area_mm2 if include_host else report.total_area_mm2
            if area_budget_mm2 is not None and area > area_budget_mm2:
                continue
            if power_budget_w is not None and report.power_w > power_budget_w:
                continue
            configs.append(config)
    return configs
