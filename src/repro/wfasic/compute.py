"""The Compute sub-module model (§4.3.3).

Each parallel section's Compute sub-module evaluates Eq. 3 for one cell
of the frame column; the ``n_ps`` sections work in lockstep on one group
of consecutive diagonals per access cycle.  Per group, the banked RAM
organisation of Fig. 6 requires:

* one parallel read of the ``s - o - e`` M column (the duplicated edge
  banks make the ``k-1``/``k+1`` windows conflict-free),
* one parallel read of the ``s - x`` M column (sequential with the first
  read — the paper chose two sequential accesses over more replication),
* one parallel read of the I/D window (overlapped with the M reads),
* one parallel write of the results.

The functional part is the shared :func:`repro.align.kernels.compute_kernel`
(with origin emission when backtrace is on); the cycle charge per group
follows the access schedule above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.kernels import ComputeOutput, compute_kernel

__all__ = ["ComputeTimings", "ComputeStage"]


@dataclass(frozen=True)
class ComputeTimings:
    """Cycle constants of the Compute access schedule.

    ``cycles_per_group`` = 2 sequential M-window reads + 1 write; the I/D
    read and the origin concatenation overlap the M accesses.
    ``step_overhead`` covers frame-column rotation, score tagging and the
    termination check once per wavefront step (§4.3.1).
    """

    cycles_per_group: int = 3
    step_overhead: int = 2


class ComputeStage:
    """Functional + cycle model of one frame column's computation."""

    def __init__(
        self,
        group_size: int,
        *,
        emit_origins: bool,
        timings: ComputeTimings | None = None,
    ) -> None:
        self.group_size = group_size
        self.emit_origins = emit_origins
        self.timings = timings or ComputeTimings()
        self.total_cycles = 0
        self.total_cells = 0

    def run(
        self,
        m_x: np.ndarray,
        m_oe_km1: np.ndarray,
        i_e_km1: np.ndarray,
        m_oe_kp1: np.ndarray,
        d_e_kp1: np.ndarray,
        ks: np.ndarray,
        n: int,
        m: int,
    ) -> tuple[ComputeOutput, int]:
        """Compute one frame column; returns (kernel output, cycles)."""
        out = compute_kernel(
            m_x,
            m_oe_km1,
            i_e_km1,
            m_oe_kp1,
            d_e_kp1,
            ks,
            n,
            m,
            emit_origins=self.emit_origins,
        )
        width = len(ks)
        n_groups = -(-width // self.group_size)
        cycles = (
            n_groups * self.timings.cycles_per_group + self.timings.step_overhead
        )
        self.total_cycles += cycles
        self.total_cells += 3 * width
        return out, cycles
