"""On-chip RAM models: Input_Seq RAMs and the banked wavefront windows.

This module captures the *memory organisation* of §4.3.1 / Fig. 6 — how
wavefront cells map onto per-parallel-section RAM banks so that one group
of cells can be computed per cycle without bank conflicts — and the
Input_Seq RAM layout of §4.2.  The aligner's functional engine does not
route every access through these objects (that would only slow the
simulation down without changing results); instead the layout invariants
are verified once and for all by the unit tests in
``tests/wfasic/test_rams.py``, and the ASIC area model derives its macro
inventory from the same geometry.

Mapping (Fig. 6):

* wavefront matrix rows are diagonals, ``row = k_max - k`` (k decreases
  downward in the figure),
* ``bank(row) = row mod n_ps`` — cells of one aligned group land in
  distinct banks, so the group can be written in parallel,
* ``address(row, col) = col * rows_per_bank + row // n_ps`` — each column
  of the window occupies a contiguous address range in every bank,
* the M window duplicates its first and last banks (RAM 1'/RAM 4'):
  computing a group needs rows ``r0-1 .. r0+n_ps`` of the ``s-o-e``
  column simultaneously (the ``k-1`` inputs of I and the ``k+1`` inputs
  of D), which touches banks ``n_ps-1`` and ``0`` twice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.wfa import NULL_OFFSET
from .config import BASES_PER_RAM_WORD, WfasicConfig

__all__ = [
    "BankConflictError",
    "PortConflictError",
    "WavefrontWindowRam",
    "InputSeqRam",
    "WavefrontGeometry",
    "wavefront_geometry",
]


class BankConflictError(RuntimeError):
    """Two parallel accesses hit the same bank in the same cycle."""


class PortConflictError(RuntimeError):
    """A single-port macro saw a read and a write in the same cycle (§4.6)."""


@dataclass(frozen=True)
class WavefrontGeometry:
    """Derived RAM geometry for one accelerator configuration."""

    #: Live columns of the M window (frame + history; 5 for (4, 6, 2)).
    m_columns: int
    #: Live columns each for I and D (frame + history; 2 for (4, 6, 2)).
    id_columns: int
    #: Rows of the wavefront matrix = wavefront slots (2 k_max + 1).
    rows: int
    #: Words per bank per column.
    rows_per_bank: int
    #: M banks including the duplicated edge banks.
    m_banks: int
    #: Merged I/D banks (§4.6 merges I and D into one macro set).
    id_banks: int

    @property
    def m_words_per_bank(self) -> int:
        return self.m_columns * self.rows_per_bank

    @property
    def id_words_per_bank(self) -> int:
        # I and D share a macro: both column sets in one address space.
        return 2 * self.id_columns * self.rows_per_bank


def wavefront_geometry(config: WfasicConfig) -> WavefrontGeometry:
    """Geometry of the wavefront windows for ``config``.

    The number of live columns follows the recurrence depths (§4.3.1:
    "only 4, 1 and 1 previous wavefront vectors of M, I and D are
    respectively required", plus the frame column itself):

    * M history depth = ``max(x, o+e) / granularity`` columns,
    * I/D history depth = ``e / granularity`` (their only self-reference).
    """
    p = config.penalties
    g = p.score_granularity
    m_hist = max(p.mismatch, p.gap_open_total) // g
    id_hist = max(p.gap_extend // g, 1)
    rows = config.wavefront_slots
    n_ps = config.parallel_sections
    return WavefrontGeometry(
        m_columns=m_hist + 1,
        id_columns=id_hist + 1,
        rows=rows,
        rows_per_bank=-(-rows // n_ps),
        m_banks=n_ps + 2,
        id_banks=n_ps,
    )


class WavefrontWindowRam:
    """One banked wavefront window (M, or the merged I/D pair).

    Cells are addressed by ``(column, row)``; the class tracks, per
    simulated access cycle, which banks were touched and raises on
    conflicts, so tests can prove the Fig. 6 distribution supports the
    parallel access patterns the Compute sub-modules need.
    """

    def __init__(
        self,
        *,
        n_ps: int,
        rows: int,
        columns: int,
        duplicate_edges: bool,
    ) -> None:
        if n_ps < 1 or rows < 1 or columns < 1:
            raise ValueError("n_ps, rows and columns must be >= 1")
        self.n_ps = n_ps
        self.rows = rows
        self.columns = columns
        self.duplicate_edges = duplicate_edges
        self._data = np.full((columns, rows), NULL_OFFSET, dtype=np.int64)

    # -- static mapping -----------------------------------------------------

    def bank_of(self, row: int) -> int:
        """Primary bank holding ``(row, *)`` (duplicates mirror 0/n_ps-1)."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range 0..{self.rows - 1}")
        return row % self.n_ps

    def address_of(self, row: int, col: int) -> int:
        """Word address of ``(row, col)`` within its bank."""
        if not 0 <= col < self.columns:
            raise IndexError(f"column {col} out of range 0..{self.columns - 1}")
        rows_per_bank = -(-self.rows // self.n_ps)
        return col * rows_per_bank + row // self.n_ps

    # -- parallel access checking -------------------------------------------

    def _check_parallel(self, rows: list[int]) -> None:
        """Verify the rows can be served in one cycle.

        Each bank has one read port; the duplicated edge banks add one
        extra read of bank 0 and one of bank ``n_ps - 1``.
        """
        counts: dict[int, int] = {}
        for row in rows:
            counts[self.bank_of(row)] = counts.get(self.bank_of(row), 0) + 1
        budget = {bank: 1 for bank in range(self.n_ps)}
        if self.duplicate_edges:
            budget[0] += 1
            budget[self.n_ps - 1] += 1
        for bank, used in counts.items():
            if used > budget.get(bank, 1):
                raise BankConflictError(
                    f"bank {bank} accessed {used} times in one cycle "
                    f"(budget {budget.get(bank, 1)})"
                )

    def read_rows(self, col: int, rows: list[int]) -> np.ndarray:
        """One parallel read cycle of the given rows from one column."""
        self._check_parallel(rows)
        for row in rows:
            self.bank_of(row)  # bounds check
        return self._data[col, rows].copy()

    def write_group(self, col: int, row0: int, values: np.ndarray) -> None:
        """One parallel write cycle of an aligned group into one column.

        Groups must be aligned to the parallel-section count — that is
        what makes the writes conflict-free by construction.
        """
        if row0 % self.n_ps:
            raise BankConflictError(
                f"group base row {row0} is not aligned to n_ps={self.n_ps}"
            )
        rows = list(range(row0, min(row0 + len(values), self.rows)))
        self._check_parallel(rows)
        self._data[col, rows[0] : rows[0] + len(rows)] = values[: len(rows)]

    def clear_column(self, col: int) -> None:
        """Re-initialise a column to the invalid (negative) pattern."""
        self._data[col, :] = NULL_OFFSET

    def column(self, col: int) -> np.ndarray:
        """Whole-column view (test/debug convenience, not a 1-cycle op)."""
        return self._data[col]


class InputSeqRam:
    """One Input_Seq RAM: 4-byte words, ID/length header + packed bases.

    §4.2 layout: "Alignment ID is stored in address 0, length in address
    1, and sequence bases from address 2 onward", 16 bases packed per
    word.  Each parallel section owns a private replica per sequence, so
    all Extend sub-modules can fetch blocks concurrently.
    """

    HEADER_WORDS = 2

    def __init__(self, max_read_len: int) -> None:
        if max_read_len % BASES_PER_RAM_WORD:
            raise ValueError("max_read_len must be a multiple of 16")
        self.max_read_len = max_read_len
        self.depth = self.HEADER_WORDS + max_read_len // BASES_PER_RAM_WORD
        self._words = np.zeros(self.depth, dtype=np.uint32)

    def load(self, alignment_id: int, length: int, packed: np.ndarray) -> None:
        """Write a full sequence image (what the Extractor streams in)."""
        if len(packed) > self.depth - self.HEADER_WORDS:
            raise ValueError(
                f"{len(packed)} base words exceed RAM depth {self.depth}"
            )
        self._words[0] = alignment_id & 0xFFFFFFFF
        self._words[1] = length
        self._words[2 : 2 + len(packed)] = packed
        self._words[2 + len(packed) :] = 0

    def read_word(self, addr: int) -> int:
        if not 0 <= addr < self.depth:
            raise IndexError(f"address {addr} out of range 0..{self.depth - 1}")
        return int(self._words[addr])

    @property
    def alignment_id(self) -> int:
        return int(self._words[0])

    @property
    def length(self) -> int:
        return int(self._words[1])

    def base_words(self) -> np.ndarray:
        """The packed base words (address 2 onward)."""
        return self._words[self.HEADER_WORDS :]
