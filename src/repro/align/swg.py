"""Smith-Waterman-Gotoh gap-affine dynamic programming (Eq. 2).

This is the exact *oracle* of the repository: the WFA algorithm (and the
WFAsic accelerator built on it) must produce byte-identical scores and
equivalently-scored CIGARs.  Following the paper (and the WFA paper it
cites), the alignment is **end-to-end** (global): both sequences are
consumed completely, and the score is a penalty to be minimised.

Three DP matrices are kept (Eq. 2):

* ``M(i, j)`` — best penalty of an alignment of ``a[:i]``/``b[:j]`` ending
  in a match or mismatch,
* ``I(i, j)`` — ending in an insertion (gap in ``a``, consumes ``b[j-1]``),
* ``D(i, j)`` — ending in a deletion (gap in ``b``, consumes ``a[i-1]``).

The implementation is numpy-vectorised row by row; the backtrace re-derives
each step from the matrices (no explicit direction matrix is needed, which
keeps memory at three ``(n+1) x (m+1)`` int arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cigar import Cigar
from .penalties import AffinePenalties, DEFAULT_PENALTIES

__all__ = ["SwgResult", "swg_align", "swg_score", "swg_matrices"]

# A value safely larger than any reachable penalty but far from overflow.
_INF = np.int64(2**31)


@dataclass(frozen=True)
class SwgResult:
    """Outcome of a gap-affine DP alignment."""

    score: int
    cigar: Cigar


def _encode(seq: str) -> np.ndarray:
    """Sequence as a numpy byte array for vectorised comparisons."""
    return np.frombuffer(seq.encode("ascii"), dtype=np.uint8)


def swg_matrices(
    a: str, b: str, penalties: AffinePenalties = DEFAULT_PENALTIES
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fill and return the full ``(M, I, D)`` DP matrices.

    Row 0 / column 0 hold the global-alignment boundary conditions:
    aligning a prefix against the empty string is one long gap.
    """
    n, m = len(a), len(b)
    x = penalties.mismatch
    oe = penalties.gap_open_total
    e = penalties.gap_extend

    M = np.full((n + 1, m + 1), _INF, dtype=np.int64)
    I = np.full((n + 1, m + 1), _INF, dtype=np.int64)
    D = np.full((n + 1, m + 1), _INF, dtype=np.int64)

    M[0, 0] = 0
    if m:
        I[0, 1:] = penalties.gap_open + e * np.arange(1, m + 1, dtype=np.int64)
        M[0, 1:] = I[0, 1:]
    if n:
        D[1:, 0] = penalties.gap_open + e * np.arange(1, n + 1, dtype=np.int64)
        M[1:, 0] = D[1:, 0]

    if n == 0 or m == 0:
        return M, I, D

    av = _encode(a)
    bv = _encode(b)

    for i in range(1, n + 1):
        # Deletion row: vertical moves only depend on row i-1 -> vectorised.
        D[i, 1:] = np.minimum(M[i - 1, 1:] + oe, D[i - 1, 1:] + e)
        # Substitution cost of row i against every column.
        sub = np.where(av[i - 1] == bv, 0, x)
        diag = M[i - 1, :-1] + sub
        # Insertion is a horizontal dependency -> sequential scan in numpy
        # would be O(m) python; do it with a tight loop only where needed.
        row_m = M[i]
        row_i = I[i]
        prev_m = M[i, 0]
        prev_i = I[i, 0]
        for j in range(1, m + 1):
            ins = min(prev_m + oe, prev_i + e)
            best = min(diag[j - 1], ins, D[i, j])
            row_i[j] = ins
            row_m[j] = best
            prev_m = best
            prev_i = ins
    return M, I, D


def swg_score(a: str, b: str, penalties: AffinePenalties = DEFAULT_PENALTIES) -> int:
    """Optimal gap-affine penalty of aligning ``a`` against ``b``."""
    M, _, _ = swg_matrices(a, b, penalties)
    return int(M[len(a), len(b)])


def swg_align(
    a: str, b: str, penalties: AffinePenalties = DEFAULT_PENALTIES
) -> SwgResult:
    """Optimal gap-affine alignment with backtrace.

    Returns the minimal penalty and one optimal CIGAR (ties broken in
    favour of match/mismatch, then insertion, then deletion — the same
    preference order the WFA recurrence uses, so CIGARs are comparable).
    """
    n, m = len(a), len(b)
    M, I, D = swg_matrices(a, b, penalties)
    x = penalties.mismatch
    oe = penalties.gap_open_total
    e = penalties.gap_extend

    ops: list[str] = []
    i, j = n, m
    # State machine over which matrix the current cell was taken from.
    state = "M"
    while i > 0 or j > 0:
        if state == "M":
            if i > 0 and j > 0:
                sub = 0 if a[i - 1] == b[j - 1] else x
                if M[i, j] == M[i - 1, j - 1] + sub:
                    ops.append("M" if sub == 0 else "X")
                    i -= 1
                    j -= 1
                    continue
            if M[i, j] == I[i, j]:
                state = "I"
                continue
            if M[i, j] == D[i, j]:
                state = "D"
                continue
            raise AssertionError(f"backtrace stuck in M at ({i}, {j})")
        if state == "I":
            # I(i, j) consumes b[j-1].
            if j <= 0:
                raise AssertionError(f"backtrace stuck in I at ({i}, {j})")
            ops.append("I")
            if I[i, j] == I[i, j - 1] + e:
                j -= 1  # extend: stay in I
            elif I[i, j] == M[i, j - 1] + oe:
                j -= 1
                state = "M"
            else:
                raise AssertionError(f"backtrace stuck in I at ({i}, {j})")
            continue
        # state == "D": consumes a[i-1].
        if i <= 0:
            raise AssertionError(f"backtrace stuck in D at ({i}, {j})")
        ops.append("D")
        if D[i, j] == D[i - 1, j] + e:
            i -= 1
        elif D[i, j] == M[i - 1, j] + oe:
            i -= 1
            state = "M"
        else:
            raise AssertionError(f"backtrace stuck in D at ({i}, {j})")

    cigar = Cigar("".join(reversed(ops)))
    return SwgResult(score=int(M[n, m]), cigar=cigar)
