"""NumPy-vectorised WFA — the analog of the paper's RVV vector code.

Functionally identical to :class:`repro.align.wfa.WfaAligner` (same scores,
same optimal CIGARs), but both operators run as whole-wavefront numpy
kernels instead of per-cell Python:

* compute() is one :func:`repro.align.kernels.compute_kernel` call per
  score step (the RVV code vectorises the same loop across diagonals),
* extend() is :func:`repro.align.kernels.extend_kernel`, which compares
  16-base blocks for every live diagonal at once — the same data access
  pattern as both the RVV code and the hardware Extend sub-module.

This engine is what makes 10 kbp / 10 %-error simulations tractable in
Python; the scalar aligner remains the readable reference and the oracle
cross-check for small inputs.
"""

from __future__ import annotations

import numpy as np

from .kernels import compute_kernel, extend_kernel, pad_sequence
from .penalties import AffinePenalties, DEFAULT_PENALTIES
from .wfa import (
    NULL_OFFSET,
    ScoreLimitExceeded,
    Wavefront,
    WfaResult,
    WfaWorkCounters,
    backtrace_wavefronts,
)

__all__ = ["VectorizedWfaAligner", "wfa_align_vectorized"]

_SENTINEL_A = 0xFF
_SENTINEL_B = 0xFE


class VectorizedWfaAligner:
    """Exact gap-affine WFA with vectorised compute/extend.

    Parameters mirror :class:`repro.align.wfa.WfaAligner`; see there for
    semantics of ``keep_backtrace`` and ``max_score``.
    """

    def __init__(
        self,
        penalties: AffinePenalties = DEFAULT_PENALTIES,
        *,
        keep_backtrace: bool = True,
        max_score: int | None = None,
    ) -> None:
        self.penalties = penalties
        self.keep_backtrace = keep_backtrace
        self.max_score = max_score

    def align(self, a: str, b: str) -> WfaResult:
        """Align pattern ``a`` against text ``b`` end to end."""
        n, m = len(a), len(b)
        p = self.penalties
        work = WfaWorkCounters()
        av = pad_sequence(a, sentinel=_SENTINEL_A)
        bv = pad_sequence(b, sentinel=_SENTINEL_B)
        k_final = m - n

        M: dict[int, Wavefront] = {}
        I: dict[int, Wavefront] = {}
        D: dict[int, Wavefront] = {}

        wf0 = Wavefront(0, 0, np.zeros(1, dtype=np.int64))
        ext = extend_kernel(av, bv, n, m, wf0.offsets, 0)
        wf0.offsets[:] = ext.offsets
        work.extend_comparisons += ext.comparisons
        work.extend_matches += ext.matches
        work.cells_allocated += 1
        work.peak_wavefront_width = 1
        M[0] = wf0
        if wf0.get(k_final) == m:
            cigar = (
                backtrace_wavefronts(a, b, M, I, D, 0, p)
                if self.keep_backtrace
                else None
            )
            return WfaResult(score=0, cigar=cigar, work=work)

        x, oe, e = p.mismatch, p.gap_open_total, p.gap_extend
        step = p.score_granularity
        hard_cap = 2 * p.gap_open + e * (n + m) + x

        s = 0
        while True:
            s += step
            if self.max_score is not None and s > self.max_score:
                raise ScoreLimitExceeded(s, self.max_score, work)
            if s > hard_cap:
                raise AssertionError(
                    f"WFA failed to terminate below the hard score cap {hard_cap}"
                )
            work.score_iterations += 1

            src_mx = M.get(s - x)
            src_moe = M.get(s - oe)
            src_ie = I.get(s - e)
            src_de = D.get(s - e)
            sources = [w for w in (src_mx, src_moe, src_ie, src_de) if w is not None]
            if not sources:
                continue

            lo = max(min(w.lo for w in sources) - 1, -n)
            hi = min(max(w.hi for w in sources) + 1, m)
            if lo > hi:
                continue
            width = hi - lo + 1
            ks = np.arange(lo, hi + 1, dtype=np.int64)

            def win(w: Wavefront | None, shift: int) -> np.ndarray:
                if w is None:
                    return np.full(width, NULL_OFFSET, dtype=np.int64)
                return w.window(lo + shift, hi + shift)

            out = compute_kernel(
                win(src_mx, 0),
                win(src_moe, -1),
                win(src_ie, -1),
                win(src_moe, +1),
                win(src_de, +1),
                ks,
                n,
                m,
            )
            work.cells_computed += 3 * width
            work.cells_allocated += 3 * width
            if not out.any_live:
                continue

            ext = extend_kernel(av, bv, n, m, out.m, lo)
            work.extend_comparisons += ext.comparisons
            work.extend_matches += ext.matches

            wf_m = Wavefront(lo, hi, ext.offsets)
            M[s] = wf_m
            if (out.i >= 0).any():
                I[s] = Wavefront(lo, hi, out.i)
            if (out.d >= 0).any():
                D[s] = Wavefront(lo, hi, out.d)
            work.wavefront_steps += 1
            work.peak_wavefront_width = max(work.peak_wavefront_width, width)

            if wf_m.get(k_final) == m:
                cigar = (
                    backtrace_wavefronts(a, b, M, I, D, s, p)
                    if self.keep_backtrace
                    else None
                )
                return WfaResult(score=s, cigar=cigar, work=work)

            if not self.keep_backtrace:
                horizon = s - p.max_window_span()
                for store in (M, I, D):
                    for key in [key for key in store if key < horizon]:
                        del store[key]


def wfa_align_vectorized(
    a: str, b: str, penalties: AffinePenalties = DEFAULT_PENALTIES
) -> WfaResult:
    """One-shot vectorised WFA alignment with backtrace."""
    return VectorizedWfaAligner(penalties).align(a, b)
