"""CIGAR strings: the backtrace output of a pairwise alignment.

A CIGAR describes, character by character, how a *pattern* sequence ``a``
maps onto a *text* sequence ``b`` (Fig. 1a of the paper):

* ``M`` — match: ``a[i] == b[j]``, both cursors advance.
* ``X`` — mismatch/substitution, both cursors advance.
* ``I`` — insertion: a character of ``b`` absent from ``a`` (only ``j``
  advances).
* ``D`` — deletion: a character of ``a`` absent from ``b`` (only ``i``
  advances).

Conventions follow the paper's Eq. 4: diagonal ``k = j - i`` and offsets
run along ``b``, so an *insertion* advances the offset and a *deletion*
does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import groupby
from typing import Iterator

from .penalties import AffinePenalties, LinearPenalties

__all__ = ["Cigar", "CigarError"]

_VALID_OPS = frozenset("MXID")


class CigarError(ValueError):
    """Raised when a CIGAR is malformed or inconsistent with sequences."""


@dataclass(frozen=True)
class Cigar:
    """An alignment backtrace as a flat string of M/X/I/D operations.

    The internal representation is the fully expanded form (one character
    per aligned column), e.g. ``"MMXMMIMM"``.  The run-length compressed
    SAM-style form (``"2M1X2M1I2M"``) is available via :meth:`compact`.
    """

    ops: str

    def __post_init__(self) -> None:
        bad = set(self.ops) - _VALID_OPS
        if bad:
            raise CigarError(f"invalid CIGAR operations: {sorted(bad)!r}")

    # -- constructors -------------------------------------------------

    @classmethod
    def from_compact(cls, compact: str) -> "Cigar":
        """Parse a run-length encoded CIGAR such as ``"10M2I3X"``."""
        ops: list[str] = []
        count = ""
        for ch in compact:
            if ch.isdigit():
                count += ch
            elif ch in _VALID_OPS:
                ops.append(ch * (int(count) if count else 1))
                count = ""
            else:
                raise CigarError(f"invalid character {ch!r} in compact CIGAR")
        if count:
            raise CigarError(f"trailing count {count!r} without operation")
        return cls("".join(ops))

    # -- basic accessors ----------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[str]:
        return iter(self.ops)

    def compact(self) -> str:
        """Run-length encoded form, e.g. ``"2M1X3M"``."""
        return "".join(f"{len(list(g))}{op}" for op, g in groupby(self.ops))

    def counts(self) -> dict[str, int]:
        """Number of each operation, keyed ``'M'/'X'/'I'/'D'``."""
        return {op: self.ops.count(op) for op in "MXID"}

    @property
    def pattern_length(self) -> int:
        """Length of sequence ``a`` consumed (M, X and D advance ``i``)."""
        c = self.counts()
        return c["M"] + c["X"] + c["D"]

    @property
    def text_length(self) -> int:
        """Length of sequence ``b`` consumed (M, X and I advance ``j``)."""
        c = self.counts()
        return c["M"] + c["X"] + c["I"]

    def num_differences(self) -> int:
        """Total differences (every op that is not a match)."""
        c = self.counts()
        return c["X"] + c["I"] + c["D"]

    def num_gap_opens(self) -> int:
        """Number of maximal runs of I or D (each pays the opening cost)."""
        return sum(1 for op, _ in groupby(self.ops) if op in "ID")

    # -- scoring -------------------------------------------------------

    def score(self, penalties: AffinePenalties | LinearPenalties) -> int:
        """Alignment penalty of this CIGAR under the given scoring model.

        For gap-affine models this is exactly Eq. 5's left-hand side:
        ``num_x * x + num_open * (o + e) + num_extend * e``.
        """
        c = self.counts()
        if isinstance(penalties, LinearPenalties):
            return c["X"] * penalties.mismatch + (c["I"] + c["D"]) * penalties.gap
        gap_chars = c["I"] + c["D"]
        return (
            c["X"] * penalties.mismatch
            + self.num_gap_opens() * penalties.gap_open
            + gap_chars * penalties.gap_extend
        )

    # -- validation / rendering ---------------------------------------

    def validate(self, a: str, b: str) -> None:
        """Check this CIGAR is a correct alignment of ``a`` onto ``b``.

        Raises :class:`CigarError` if lengths do not match or if an ``M``
        covers unequal characters / an ``X`` covers equal characters.
        """
        i = j = 0
        for col, op in enumerate(self.ops):
            if op in "MX":
                if i >= len(a) or j >= len(b):
                    raise CigarError(f"column {col}: {op} runs past sequence end")
                if op == "M" and a[i] != b[j]:
                    raise CigarError(
                        f"column {col}: M but a[{i}]={a[i]!r} != b[{j}]={b[j]!r}"
                    )
                if op == "X" and a[i] == b[j]:
                    raise CigarError(
                        f"column {col}: X but a[{i}] == b[{j}] == {a[i]!r}"
                    )
                i += 1
                j += 1
            elif op == "I":
                if j >= len(b):
                    raise CigarError(f"column {col}: I runs past text end")
                j += 1
            else:  # D
                if i >= len(a):
                    raise CigarError(f"column {col}: D runs past pattern end")
                i += 1
        if i != len(a) or j != len(b):
            raise CigarError(
                f"CIGAR consumes ({i}, {j}) characters but sequences have "
                f"lengths ({len(a)}, {len(b)})"
            )

    def render(self, a: str, b: str) -> str:
        """Three-line human-readable alignment view (Fig. 1a style)."""
        top: list[str] = []
        mid: list[str] = []
        bot: list[str] = []
        i = j = 0
        for op in self.ops:
            if op in "MX":
                top.append(a[i])
                bot.append(b[j])
                mid.append("|" if op == "M" else "*")
                i += 1
                j += 1
            elif op == "I":
                top.append("-")
                bot.append(b[j])
                mid.append(" ")
                j += 1
            else:
                top.append(a[i])
                bot.append("-")
                mid.append(" ")
                i += 1
        return "\n".join("".join(line) for line in (top, mid, bot))
