"""Sequence packing for the batched kernels, with a per-sequence cache.

The batched aligner needs every pattern (and text) of a batch as one row
of a 2D ``uint8`` matrix, padded with a sentinel so the 16-base extend
comparator never reads past a sequence end.  Converting a Python string
to that padded row (:func:`repro.align.kernels.pad_sequence`) costs an
encode plus an allocation per sequence — pure overhead when the serving
mix repeats sequences, so :class:`PackCache` memoises the rows.

Rows are cached *per sequence*, not per batch: the batch matrix itself
depends on the widest sequence in the batch and is rebuilt each time,
but building it from cached rows is a plain ``ndarray`` copy with no
string handling.  Cached rows are marked read-only so a cache can be
shared between aligners without aliasing bugs.

A :class:`PackCache` can additionally *own* a shared-memory
:class:`~repro.align.arena.SequenceArena`: the engine's zero-copy
dispatch path interns each unique sequence through
:meth:`PackCache.descriptor` and ships workers the resulting
``(arena_id, offset, length)`` handle instead of the string.  Arena
ownership follows the cache: :meth:`PackCache.close` unlinks the
segments (and the arena's own finalizer/atexit hooks cover crashes).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .arena import SequenceArena, SequenceDescriptor
from .kernels import pad_sequence

__all__ = ["PackCache", "pack_rows", "pack_batch"]


class PackCache:
    """Bounded LRU of padded sequence rows keyed by ``(seq, sentinel)``.

    ``capacity`` bounds the number of cached rows; ``0`` disables caching
    (every lookup packs afresh).  ``hits``/``misses`` feed the ``pack``
    profiling counters.  An optional ``arena`` makes the cache the owner
    of the shared-memory packed-sequence store backing the zero-copy
    dispatch path (see :meth:`descriptor` / :meth:`close`).
    """

    def __init__(
        self,
        capacity: int = 8192,
        *,
        block: int = 16,
        arena: SequenceArena | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("pack cache capacity must be >= 0")
        self.capacity = capacity
        self.block = block
        self.hits = 0
        self.misses = 0
        self.arena = arena
        self._store: OrderedDict[tuple[str, int], np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def row(self, seq: str, sentinel: int) -> np.ndarray:
        """The padded row for ``seq`` (read-only; cached when possible)."""
        key = (seq, sentinel)
        row = self._store.get(key)
        if row is not None:
            self._store.move_to_end(key)
            self.hits += 1
            return row
        self.misses += 1
        row = pad_sequence(seq, sentinel=sentinel, block=self.block)
        row.flags.writeable = False
        if self.capacity:
            self._store[key] = row
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
        return row

    def descriptor(self, seq: str) -> SequenceDescriptor:
        """Intern ``seq`` in the owned arena and return its descriptor.

        The arena memoises per string, so repeated sequences cost one
        dictionary lookup; the 2-bit pack happens exactly once.  Raises
        :class:`ValueError` when the cache owns no arena — the pickled
        dispatch path constructs plain caches and never lands here.
        """
        if self.arena is None:
            raise ValueError("this PackCache owns no sequence arena")
        return self.arena.intern(seq)

    def clear(self) -> None:
        """Drop every cached row (the hit/miss counters are kept)."""
        self._store.clear()

    def close(self) -> None:
        """Release the owned arena's shared memory (idempotent).

        Row caching keeps working after close; only the zero-copy
        descriptor path is torn down.
        """
        if self.arena is not None:
            self.arena.close()


def pack_rows(
    seqs: list[str],
    *,
    sentinel: int,
    block: int = 16,
    cache: PackCache | None = None,
) -> list[np.ndarray]:
    """One padded row per sequence, through the cache when given."""
    if cache is not None:
        return [cache.row(seq, sentinel) for seq in seqs]
    return [pad_sequence(seq, sentinel=sentinel, block=block) for seq in seqs]


def pack_batch(
    seqs: list[str],
    *,
    sentinel: int,
    block: int = 16,
    cache: PackCache | None = None,
) -> np.ndarray:
    """Stack sequences into a ``(len(seqs), max_len + block)`` matrix.

    Every row is the sequence followed by sentinel bytes out to the
    common width, so row ``r`` is exactly what the 1D kernels would see
    for sequence ``r`` (same sentinel guarantee, same block padding).
    """
    rows = pack_rows(seqs, sentinel=sentinel, block=block, cache=cache)
    width = max((len(row) for row in rows), default=block)
    out = np.full((len(seqs), width), sentinel, dtype=np.uint8)
    for r, row in enumerate(rows):
        out[r, : len(row)] = row
    return out
