"""Shared-memory sequence arenas: the zero-copy dispatch substrate.

The batch engine's pickled chunk protocol ships every sequence string to
the worker inside the chunk payload — on the profile that data movement
(``dispatch``) dwarfs the alignment arithmetic, the software twin of the
observation Scrooge and ASAP make for WFA hardware: *moving* reads costs
more than aligning them.  This module provides the alternative: the
engine packs each unique sequence once into a 2-bit-per-base
``multiprocessing.shared_memory`` arena and ships only
``(arena_id, offset, length)`` descriptors; workers attach the arena
(once per process) and decode sequences in place.  Scores and CIGARs
come back through a :class:`ResultRing` — a per-batch shared-memory
block of fixed-width records plus a pre-partitioned CIGAR heap — so the
reply path is descriptor-sized too.

Three invariants the test battery (``tests/align/test_arena.py``,
``tests/engine/test_shm_dispatch.py``) holds this module to:

* **Round-trip fidelity** — ``unpack_bits(pack_bits(s), len(s)) == s``
  for every ACGT string including ``""`` (the engine's validation layer
  guarantees dispatched sequences are uppercase ACGT; anything else is
  rejected or answered before dispatch).
* **No leaked segments** — every created segment is unlinked on
  :meth:`SequenceArena.close` / :meth:`ResultRing.close`, on garbage
  collection (``weakref.finalize``) and at interpreter exit
  (``atexit``), all owner-pid-guarded so forked children never unlink a
  parent's live arena.
* **Attach safety** — worker-side attachments are cached per process,
  survive ``fork`` (the cache resets when the pid changes) and are
  deregistered from the ``resource_tracker`` so an exiting worker does
  not unlink a segment it merely mapped (CPython's tracker registers
  attachments as if they were creations; Python 3.13 adds ``track=``,
  this repository supports 3.10+).
"""

from __future__ import annotations

import atexit
import itertools
import os
import struct
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Sequence

import numpy as np

__all__ = [
    "ARENA_PREFIX",
    "RING_PREFIX",
    "SequenceDescriptor",
    "encode_descriptor",
    "decode_descriptor",
    "pack_bits",
    "unpack_bits",
    "packed_nbytes",
    "cigar_capacity",
    "SequenceArena",
    "ResultRing",
    "attach_segment",
    "detach_segment",
    "detach_all_segments",
    "read_sequence",
    "write_ring_result",
    "leaked_segments",
]

#: ``/dev/shm`` name prefixes — recognisable so the leak-detection tests
#: can scan for segments this process stranded (names embed the owner
#: pid: ``wfarena-<pid>-<n>`` / ``wfaring-<pid>-<n>``).
ARENA_PREFIX = "wfarena"
RING_PREFIX = "wfaring"

#: Bases in 2-bit code order; index == code.
_BASES = b"ACGT"

_BASE_TO_CODE = np.full(256, 255, dtype=np.uint8)
for _code, _base in enumerate(_BASES):
    _BASE_TO_CODE[_base] = _code

_CODE_TO_BASE = np.frombuffer(_BASES, dtype=np.uint8)

#: Bit positions of the four bases within one packed byte (base ``i`` of
#: a quad occupies bits ``2i..2i+1`` — little-endian within the byte).
_SHIFTS = np.array([0, 2, 4, 6], dtype=np.uint8)


# -- 2-bit codec -------------------------------------------------------


def packed_nbytes(length: int) -> int:
    """Bytes needed to hold ``length`` bases at 2 bits per base."""
    return (length + 3) // 4


def pack_bits(seq: str) -> np.ndarray:
    """Pack an uppercase ACGT string into a 2-bit-per-base byte array.

    Four bases per byte, base ``i`` of each quad in bits ``2i..2i+1``;
    the final partial quad is zero-padded (callers record the base count
    separately).  Raises :class:`ValueError` for any non-ACGT character
    — the arena stores *dispatchable* sequences only, which the engine's
    validation boundary has already reduced to uppercase ACGT.
    """
    try:
        raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    except UnicodeEncodeError as exc:
        raise ValueError(f"non-ASCII character in sequence: {exc}") from None
    codes = _BASE_TO_CODE[raw]
    bad = np.nonzero(codes == 255)[0]
    if bad.size:
        pos = int(bad[0])
        raise ValueError(
            f"non-ACGT base {seq[pos]!r} at position {pos}; only "
            "validated uppercase ACGT sequences are arena-packable"
        )
    pad = (-codes.size) % 4
    if pad:
        codes = np.concatenate([codes, np.zeros(pad, dtype=np.uint8)])
    quads = codes.reshape(-1, 4).astype(np.uint16)
    packed = (
        quads[:, 0]
        | (quads[:, 1] << 2)
        | (quads[:, 2] << 4)
        | (quads[:, 3] << 6)
    )
    return packed.astype(np.uint8)


def unpack_bits(packed: np.ndarray | memoryview | bytes, length: int) -> str:
    """Decode ``length`` bases from a 2-bit-packed buffer.

    The exact inverse of :func:`pack_bits` for the first ``length``
    bases; surplus buffer bytes (arena slack) are ignored.
    """
    if length < 0:
        raise ValueError("length must be >= 0")
    if length == 0:
        return ""
    need = packed_nbytes(length)
    data = np.frombuffer(packed, dtype=np.uint8, count=need)
    codes = ((data[:, None] >> _SHIFTS) & 3).reshape(-1)[:length]
    return _CODE_TO_BASE[codes].tobytes().decode("ascii")


def cigar_capacity(pattern_len: int, text_len: int) -> int:
    """Ring-heap bytes reserved for one pair's compact CIGAR.

    A compact CIGAR has at most ``pattern_len + text_len`` operations
    and each op costs at most ``len(str(count)) + 1 <= 2`` bytes when
    runs alternate, so ``2 * (m + n)`` bounds it; the slack covers the
    degenerate tiny-sequence cases (e.g. ``""`` vs ``"A"`` -> ``"1I"``).
    """
    return 2 * (pattern_len + text_len) + 16


# -- descriptors -------------------------------------------------------


@dataclass(frozen=True)
class SequenceDescriptor:
    """Zero-copy handle to one packed sequence: where, not what.

    ``arena_id`` names the shared-memory segment, ``offset`` the first
    packed byte within it and ``length`` the number of *bases* (the
    packed byte count follows from :func:`packed_nbytes`).  This triple
    is the only sequence representation that crosses the process
    boundary on the zero-copy path — wfalint's W005 descriptor-only
    contract check enforces exactly that.
    """

    arena_id: str
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("descriptor offset must be >= 0")
        if self.length < 0:
            raise ValueError("descriptor length must be >= 0")


#: Wire header: arena-id byte count (u16), offset (u64), length (u64).
_DESCRIPTOR_HEADER = struct.Struct("<HQQ")


def encode_descriptor(desc: SequenceDescriptor) -> bytes:
    """Serialise a descriptor to its compact wire form.

    Layout: a little-endian ``(id_len: u16, offset: u64, length: u64)``
    header followed by the UTF-8 arena id.  Round-trips exactly through
    :func:`decode_descriptor` (property-tested over the full u64 range
    and arbitrary unicode arena ids).
    """
    ident = desc.arena_id.encode("utf-8")
    if len(ident) > 0xFFFF:
        raise ValueError("arena id longer than 65535 UTF-8 bytes")
    if desc.offset > 0xFFFFFFFFFFFFFFFF or desc.length > 0xFFFFFFFFFFFFFFFF:
        raise ValueError("descriptor offset/length exceed u64")
    return _DESCRIPTOR_HEADER.pack(len(ident), desc.offset, desc.length) + ident


def decode_descriptor(data: bytes) -> SequenceDescriptor:
    """Inverse of :func:`encode_descriptor` (strict: no trailing bytes)."""
    if len(data) < _DESCRIPTOR_HEADER.size:
        raise ValueError("descriptor blob shorter than its header")
    id_len, offset, length = _DESCRIPTOR_HEADER.unpack_from(data)
    body = data[_DESCRIPTOR_HEADER.size:]
    if len(body) != id_len:
        raise ValueError(
            f"descriptor blob holds {len(body)} id bytes, header says {id_len}"
        )
    return SequenceDescriptor(
        arena_id=body.decode("utf-8"), offset=offset, length=length
    )


# -- segment lifecycle (owner side) ------------------------------------

#: Monotonic per-process suffix so segment names never collide within a
#: process; the pid component keeps processes apart (a recycled pid that
#: collides with a stale segment simply advances to the next suffix).
_SEGMENT_SEQ = itertools.count()

#: Segments *created* by this process, unlinked at interpreter exit.
#: Forked children inherit the table but ``_OWNED_PID`` still names the
#: parent, so their exit handler never unlinks the parent's segments.
_OWNED: dict[str, shared_memory.SharedMemory] = {}
_OWNED_PID = os.getpid()


def _register_owned(shm: shared_memory.SharedMemory) -> None:
    """Track a created segment for exit-time unlink (fork-aware)."""
    global _OWNED_PID
    if os.getpid() != _OWNED_PID:
        # Forked child creating its own segments: the inherited entries
        # belong to the parent and must not be unlinked from here.
        _OWNED.clear()
        _OWNED_PID = os.getpid()
    _OWNED[shm.name] = shm


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    """Best-effort unlink + close of one owned segment (idempotent)."""
    # Re-register first: forked workers share this process's resource
    # tracker, and their attach-time deregistration (see :func:`_untrack`)
    # also dropped the owner's entry — ``unlink`` deregisters once more,
    # and an unbalanced deregistration makes the tracker print KeyError
    # tracebacks.  Registering is idempotent (the tracker keeps a set).
    try:
        resource_tracker.register(
            getattr(shm, "_name", shm.name), "shared_memory"
        )
    except Exception:  # noqa: BLE001 — tracker internals vary per minor
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except OSError:
        pass
    try:
        shm.close()
    except (BufferError, OSError):
        # A live view (numpy window, exported memoryview) blocks the
        # close; the unlink above already removed the /dev/shm entry,
        # which is the resource the leak tests care about.
        pass


def _finalize_segments(
    owner_pid: int, segments: list[shared_memory.SharedMemory]
) -> None:
    """``weakref.finalize`` callback: unlink, but only in the owner."""
    if os.getpid() != owner_pid:
        return
    for shm in segments:
        _OWNED.pop(shm.name, None)
        _unlink_segment(shm)
    segments.clear()


def _atexit_unlink() -> None:
    """Interpreter-exit sweep of every segment this process created."""
    if os.getpid() != _OWNED_PID:
        return
    for shm in list(_OWNED.values()):
        _unlink_segment(shm)
    _OWNED.clear()


atexit.register(_atexit_unlink)


def _create_segment(prefix: str, nbytes: int) -> shared_memory.SharedMemory:
    """Create an owned segment with a recognisable, collision-free name."""
    while True:
        name = f"{prefix}-{os.getpid()}-{next(_SEGMENT_SEQ)}"
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, nbytes)
            )
        except FileExistsError:
            # A stale segment from a recycled pid owns this name; the
            # monotonic suffix finds a free one without touching it.
            continue
        _register_owned(shm)
        return shm


def leaked_segments(pid: int | None = None) -> list[str]:
    """Arena/ring segments of ``pid`` still present under ``/dev/shm``.

    The leak-detection regression tests call this after engine shutdown
    (and after injected worker crashes) and assert it returns ``[]``.
    Returns ``[]`` on platforms without a scannable ``/dev/shm``.
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    pid = os.getpid() if pid is None else pid
    prefixes = (f"{ARENA_PREFIX}-{pid}-", f"{RING_PREFIX}-{pid}-")
    try:
        names = [entry.name for entry in root.iterdir()]
    except OSError:
        return []
    return sorted(name for name in names if name.startswith(prefixes))


# -- attach cache (worker side) ----------------------------------------

#: Segments this process has attached (not created), keyed by name.  The
#: pid stamp invalidates the cache across ``fork`` — a child re-attaches
#: rather than trusting file descriptors the parent opened.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_ATTACHED_PID = os.getpid()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment without registering it with the resource tracker.

    CPython (< 3.13) registers every ``SharedMemory`` — attachments
    included — with the tracker, which unlinks all registered names when
    the last tracked process exits; an attaching worker would then
    destroy a segment it never owned.  Unregistering after the fact is
    no better: forked workers share one tracker (a *set* of names), so
    the second worker's deregistration underflows it and the tracker
    prints KeyError tracebacks at owner-unlink time.  Suppressing the
    registration call for the duration of the attach keeps the tracker's
    books exactly balanced: one register at create, one deregister at
    unlink, both in the owner.  Workers attach single-threaded (the pool
    runs one task at a time per process), so the swap cannot race.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def attach_segment(name: str) -> memoryview:
    """Map a shared-memory segment by name, caching the attachment.

    Owner processes resolve straight to their created segment (no second
    mapping); everyone else attaches once per process and reuses the
    mapping for every later read — attach cost amortises across chunks
    and batches.
    """
    global _ATTACHED_PID
    if os.getpid() != _ATTACHED_PID:
        _ATTACHED.clear()
        _ATTACHED_PID = os.getpid()
    if os.getpid() == _OWNED_PID:
        owned = _OWNED.get(name)
        if owned is not None:
            return owned.buf
    shm = _ATTACHED.get(name)
    if shm is None:
        shm = _attach_untracked(name)
        _ATTACHED[name] = shm
    return shm.buf


def detach_segment(name: str) -> None:
    """Drop this process's cached attachment of ``name`` (idempotent).

    Workers call this for per-batch segments (the result ring) once the
    chunk is done: the parent unlinks the ring after the gather, and a
    mapping kept alive here would pin the memory until process exit.
    """
    if os.getpid() != _ATTACHED_PID:
        _ATTACHED.clear()
        return
    shm = _ATTACHED.pop(name, None)
    if shm is not None:
        try:
            shm.close()
        except (BufferError, OSError):
            pass


def detach_all_segments() -> None:
    """Drop every cached attachment (test teardown / worker shutdown)."""
    for name in list(_ATTACHED):
        detach_segment(name)


def read_sequence(desc: SequenceDescriptor) -> str:
    """Materialise the string a descriptor points at (worker side)."""
    if desc.length == 0:
        return ""
    buf = attach_segment(desc.arena_id)
    need = packed_nbytes(desc.length)
    if desc.offset + need > len(buf):
        raise ValueError(
            f"descriptor window [{desc.offset}, {desc.offset + need}) "
            f"exceeds segment {desc.arena_id!r} of {len(buf)} bytes"
        )
    window = np.frombuffer(buf, dtype=np.uint8, count=need, offset=desc.offset)
    return unpack_bits(window, desc.length)


# -- the sequence arena ------------------------------------------------


class SequenceArena:
    """Owner of the packed-sequence shared-memory segments.

    A bump allocator over one or more segments: :meth:`intern` packs a
    sequence once (memoised per string) and returns its descriptor;
    segments grow by allocation, never move, so descriptors stay valid
    for the arena's lifetime.  The arena is process-lifetime state (the
    engine keeps one across batches — the serving mix repeats
    sequences); :meth:`close` — or garbage collection, or interpreter
    exit — unlinks every segment.
    """

    def __init__(self, *, segment_bytes: int = 1 << 20) -> None:
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        self.segment_bytes = segment_bytes
        #: Unique sequences interned / memo hits (observability counters).
        self.interned = 0
        self.hits = 0
        self._segments: list[shared_memory.SharedMemory] = []
        self._cursor = 0
        self._memo: dict[str, SequenceDescriptor] = {}
        self._closed = False
        self._owner_pid = os.getpid()
        self._finalizer = weakref.finalize(
            self, _finalize_segments, self._owner_pid, self._segments
        )

    def __len__(self) -> int:
        return len(self._memo)

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Names of every live segment (oldest first)."""
        return tuple(shm.name for shm in self._segments)

    @property
    def allocated_bytes(self) -> int:
        """Total shared-memory bytes reserved across segments."""
        return sum(shm.size for shm in self._segments)

    @property
    def used_bytes(self) -> int:
        """Bytes actually holding packed sequences."""
        if not self._segments:
            return 0
        return (
            sum(shm.size for shm in self._segments[:-1]) + self._cursor
        )

    def intern(self, seq: str) -> SequenceDescriptor:
        """The descriptor for ``seq``, packing it on first sight."""
        if self._closed:
            raise ValueError("arena is closed")
        if os.getpid() != self._owner_pid:
            raise ValueError(
                "arena can only intern in its owner process "
                f"(owner pid {self._owner_pid}, current {os.getpid()})"
            )
        cached = self._memo.get(seq)
        if cached is not None:
            self.hits += 1
            return cached
        packed = pack_bits(seq)
        need = int(packed.nbytes)
        segment = self._segment_with_room(need)
        offset = self._cursor
        if need:
            segment.buf[offset : offset + need] = packed.tobytes()
        self._cursor = offset + need
        desc = SequenceDescriptor(
            arena_id=segment.name, offset=offset, length=len(seq)
        )
        self._memo[seq] = desc
        self.interned += 1
        return desc

    def _segment_with_room(self, need: int) -> shared_memory.SharedMemory:
        """The current segment, or a fresh one sized for ``need`` bytes."""
        if self._segments:
            current = self._segments[-1]
            if self._cursor + need <= current.size:
                return current
        fresh = _create_segment(
            ARENA_PREFIX, max(self.segment_bytes, need)
        )
        self._segments.append(fresh)
        self._cursor = 0
        return fresh

    def close(self) -> None:
        """Unlink every segment and forget the memo (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._memo.clear()
        self._finalizer.detach()
        if os.getpid() == self._owner_pid:
            for shm in self._segments:
                _OWNED.pop(shm.name, None)
                _unlink_segment(shm)
        self._segments.clear()
        self._cursor = 0

    def __enter__(self) -> "SequenceArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- the result ring ---------------------------------------------------

#: Per-item record: written flag (u8), success flag (u8), score (i64),
#: CIGAR byte count (i64; ``-1`` = no CIGAR, ``0`` = the valid empty
#: CIGAR).  The record is written *after* the CIGAR bytes, and the
#: parent only reads after the chunk's pool result has arrived, so the
#: queue round-trip orders every write before every read.
_RING_RECORD = struct.Struct("<BBqq")


class ResultRing:
    """Per-batch shared-memory block workers write plain outcomes into.

    Layout: ``n`` fixed-width :data:`_RING_RECORD` records followed by a
    CIGAR heap pre-partitioned per item (disjoint windows, so concurrent
    workers never contend or lock).  Exceptional outcomes (errors,
    unsupported reads, oversized CIGARs) bypass the ring and return on
    the pickled reply path; the ring carries only the common case.
    """

    def __init__(self, cigar_caps: Sequence[int]) -> None:
        self._caps = [int(c) for c in cigar_caps]
        if any(c < 0 for c in self._caps):
            raise ValueError("cigar capacities must be >= 0")
        records_bytes = _RING_RECORD.size * len(self._caps)
        self._heap_offsets: list[int] = []
        cursor = records_bytes
        for cap in self._caps:
            self._heap_offsets.append(cursor)
            cursor += cap
        self._shm = _create_segment(RING_PREFIX, max(1, cursor))
        # Fresh POSIX segments are zero-filled, so every record starts
        # with its written-flag down; no explicit clear needed.
        self._owner_pid = os.getpid()
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _finalize_segments, self._owner_pid, [self._shm]
        )

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    def __len__(self) -> int:
        return len(self._caps)

    def window(self, index: int) -> tuple[int, int]:
        """The ``(heap_offset, capacity)`` CIGAR window of one item."""
        return self._heap_offsets[index], self._caps[index]

    def read(self, index: int) -> tuple[int, bool, str | None] | None:
        """The ``(score, success, cigar)`` a worker wrote, or ``None``.

        ``None`` means the slot was never written — the chunk died, hung
        or answered on the pickled path; the engine then falls back to
        the outcomes that came back with the chunk result.
        """
        buf = self._shm.buf
        written, success, score, cigar_len = _RING_RECORD.unpack_from(
            buf, index * _RING_RECORD.size
        )
        if not written:
            return None
        cigar: str | None = None
        if cigar_len >= 0:
            start = self._heap_offsets[index]
            cigar = bytes(buf[start : start + cigar_len]).decode("ascii")
        return int(score), bool(success), cigar

    def close(self) -> None:
        """Unlink the ring segment (idempotent, owner-only)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        if os.getpid() == self._owner_pid:
            _OWNED.pop(self._shm.name, None)
            _unlink_segment(self._shm)

    def __enter__(self) -> "ResultRing":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def write_ring_result(
    ring_name: str,
    index: int,
    *,
    score: int,
    success: bool,
    cigar: str | None,
    cigar_offset: int,
    cigar_capacity: int,
) -> bool:
    """Worker-side ring write for one item; ``False`` = use the pickled path.

    Writes the CIGAR bytes into the item's pre-reserved heap window and
    then the record (flag last).  Returns ``False`` — caller falls back
    to returning the outcome in the chunk result — when the CIGAR
    exceeds its window or the ring has already been unlinked (a chunk
    outliving its batch after a timeout-degrade).
    """
    if cigar is not None and len(cigar) > cigar_capacity:
        return False
    try:
        buf = attach_segment(ring_name)
        if cigar:
            data = cigar.encode("ascii")
            buf[cigar_offset : cigar_offset + len(data)] = data
        _RING_RECORD.pack_into(
            buf,
            index * _RING_RECORD.size,
            1,
            1 if success else 0,
            score,
            -1 if cigar is None else len(cigar),
        )
    except (OSError, ValueError):
        return False
    return True
