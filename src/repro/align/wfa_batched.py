"""Cross-pair batched WFA: many alignments' wavefronts in lockstep.

The vectorised aligner removed the per-*cell* Python loop; this module
removes the per-*pair* one.  For short reads the numpy work per score
step is tiny (a few dozen diagonals), so kernel dispatch overhead —
argument checking, array allocation, the interpreter itself — dominates
the per-pair aligners.  :class:`BatchedWfaAligner` therefore packs N
pairs into 2D arrays (pairs x diagonals, padded to the widest live
band) and runs :func:`repro.align.kernels.compute_kernel_batched` /
:func:`~repro.align.kernels.extend_kernel_batched` **once per score
step for the whole batch**, the software analog of the paper's 64
parallel hardware sections advancing one wavefront each per cycle.

Because penalties are shared across a batch, every pair's wavefront at
penalty ``s`` is computable in the same step: pairs differ only in their
band (tracked per row) and in when they converge.  Pairs whose ``M``
wavefront reaches ``(n, m)`` retire immediately — their rows are
compacted out of every live array — so a batch never keeps paying for
finished pairs while stragglers run on (the "retire on converge" rule).

Results are bit-identical to :class:`repro.align.wfa.WfaAligner`: the
per-row recurrence, band clamping, extension and backtrace are the same
math, just evaluated for all pairs at once, and the differential harness
(``tests/verify/test_differential.py``) enforces score + CIGAR parity
against the SWG oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .kernels import (
    BAND_ABSENT,
    band_prune_batched,
    compute_kernel_batched,
    extend_kernel_batched,
    gather_window_batched,
)
from .packing import PackCache, pack_batch
from .penalties import AffinePenalties, DEFAULT_PENALTIES
from .profile import StageProfiler
from .wfa import (
    BYTES_PER_CELL,
    NULL_OFFSET,
    ScoreLimitExceeded,
    Wavefront,
    WfaResult,
    WfaWorkCounters,
    backtrace_wavefronts,
)

__all__ = ["BatchedWfaAligner", "wfa_align_batched"]

_SENTINEL_A = 0xFF
_SENTINEL_B = 0xFE


@dataclass
class _BatchRecord:
    """The M/I/D wavefronts of one score for every live pair.

    Row ``p`` of each data array covers diagonals ``lo..hi`` of that
    pair's band (padded to the batch-wide width); per-matrix ``lo`` is
    :data:`BAND_ABSENT` (and ``hi`` its negation) for pairs that have no
    wavefront in that matrix at this score, which makes every gather from
    the row come back NULL without a separate existence mask.
    """

    lo_m: np.ndarray
    hi_m: np.ndarray
    lo_i: np.ndarray
    hi_i: np.ndarray
    lo_d: np.ndarray
    hi_d: np.ndarray
    m: np.ndarray
    i: np.ndarray
    d: np.ndarray
    #: Per-row stored cells (band width x matrices actually live), the
    #: unit behind the ``peak_wavefront_bytes`` memory model.
    row_cells: np.ndarray

    def compact(self, keep: np.ndarray) -> None:
        """Drop retired pairs' rows (``keep`` is a boolean row mask)."""
        self.lo_m = self.lo_m[keep]
        self.hi_m = self.hi_m[keep]
        self.lo_i = self.lo_i[keep]
        self.hi_i = self.hi_i[keep]
        self.lo_d = self.lo_d[keep]
        self.hi_d = self.hi_d[keep]
        self.m = self.m[keep]
        self.i = self.i[keep]
        self.d = self.d[keep]
        self.row_cells = self.row_cells[keep]


class BatchedWfaAligner:
    """Exact gap-affine WFA over a whole batch of pairs in lockstep.

    Parameters mirror :class:`repro.align.wfa.WfaAligner` where they
    overlap:

    penalties:
        Gap-affine penalties shared by every pair of a batch (the
        lockstep advance relies on a common score schedule).
    keep_backtrace:
        Store per-pair wavefront history so CIGARs can be recovered at
        retirement.  Off, only scores are produced and memory stays
        bounded by the recurrence window, exactly like the hardware.
    max_score:
        Abort threshold: raises :class:`ScoreLimitExceeded` as soon as
        the *batch* score passes it while any pair is unfinished (the
        whole call fails — a batch shares its score clock).
    pack_cache:
        Optional :class:`repro.align.packing.PackCache` so repeated
        sequences skip the string->uint8 packing step.
    profiler:
        Optional :class:`repro.align.profile.StageProfiler`; the aligner
        charges its ``pack`` / ``compute`` / ``extend`` / ``band`` /
        ``backtrace`` / ``retire`` stages to it.
    band_width:
        Adaptive wavefront band, same semantics (and bit-identical
        results) as ``WfaAligner(band_width=...)``: every surviving
        pair's M/I/D wavefronts are trimmed to ``band_width`` diagonals
        re-centered on the furthest-reaching cell after each step.
        Pairs whose band loses the optimal path retire with
        ``reached_end=False`` instead of raising; callers retry them
        exactly.
    """

    def __init__(
        self,
        penalties: AffinePenalties = DEFAULT_PENALTIES,
        *,
        keep_backtrace: bool = True,
        max_score: int | None = None,
        pack_cache: PackCache | None = None,
        profiler: StageProfiler | None = None,
        band_width: int | None = None,
    ) -> None:
        if band_width is not None and band_width < 1:
            raise ValueError(f"band_width must be >= 1, got {band_width}")
        self.penalties = penalties
        self.keep_backtrace = keep_backtrace
        self.max_score = max_score
        self.pack_cache = pack_cache
        self.profiler = profiler if profiler is not None else StageProfiler()
        self.band_width = band_width

    def align(self, a: str, b: str) -> WfaResult:
        """Single-pair convenience: a batch of one."""
        return self.align_batch([(a, b)])[0]

    def align_batch(self, pairs: Sequence[tuple[str, str]]) -> list[WfaResult]:
        """Align every ``(pattern, text)`` pair; results in input order."""
        num_pairs = len(pairs)
        if num_pairs == 0:
            return []
        for idx, (a, b) in enumerate(pairs):
            # Fail fast with the offending index: bytes (or any non-str)
            # otherwise surfaces as an opaque AttributeError deep inside
            # sequence packing, long after the bad pair's identity is lost.
            if not isinstance(a, str) or not isinstance(b, str):
                bad = a if not isinstance(a, str) else b
                raise TypeError(
                    f"pair {idx}: sequences must be str, got "
                    f"{type(bad).__name__}"
                )
        p = self.penalties
        prof = self.profiler
        results: list[WfaResult | None] = [None] * num_pairs

        with prof.stage("pack"):
            if self.pack_cache is not None:
                hits0, miss0 = self.pack_cache.hits, self.pack_cache.misses
            av2d = pack_batch(
                [a for a, _ in pairs], sentinel=_SENTINEL_A, cache=self.pack_cache
            )
            bv2d = pack_batch(
                [b for _, b in pairs], sentinel=_SENTINEL_B, cache=self.pack_cache
            )
            if self.pack_cache is not None:
                prof.count("pack_hits", self.pack_cache.hits - hits0)
                prof.count("pack_misses", self.pack_cache.misses - miss0)

        # Per-pair geometry, indexed by *original* pair position.
        ns_all = np.array([len(a) for a, _ in pairs], dtype=np.int64)
        ms_all = np.array([len(b) for _, b in pairs], dtype=np.int64)

        # Work counters stay per original pair so retirement can hand each
        # result the same accounting the scalar aligner would have kept.
        score_iters = np.zeros(num_pairs, dtype=np.int64)
        wf_steps = np.zeros(num_pairs, dtype=np.int64)
        cells_comp = np.zeros(num_pairs, dtype=np.int64)
        cells_alloc = np.zeros(num_pairs, dtype=np.int64)
        ext_cmp = np.zeros(num_pairs, dtype=np.int64)
        ext_match = np.zeros(num_pairs, dtype=np.int64)
        peak_width = np.zeros(num_pairs, dtype=np.int64)
        band_pruned = np.zeros(num_pairs, dtype=np.int64)
        live_cells = np.zeros(num_pairs, dtype=np.int64)
        peak_cells = np.zeros(num_pairs, dtype=np.int64)

        hist_m: list[dict[int, Wavefront]] = [{} for _ in range(num_pairs)]
        hist_i: list[dict[int, Wavefront]] = [{} for _ in range(num_pairs)]
        hist_d: list[dict[int, Wavefront]] = [{} for _ in range(num_pairs)]

        def work_for(orig: int) -> WfaWorkCounters:
            return WfaWorkCounters(
                score_iterations=int(score_iters[orig]),
                wavefront_steps=int(wf_steps[orig]),
                cells_computed=int(cells_comp[orig]),
                extend_comparisons=int(ext_cmp[orig]),
                extend_matches=int(ext_match[orig]),
                peak_wavefront_width=int(peak_width[orig]),
                cells_allocated=int(cells_alloc[orig]),
                band_pruned_cells=int(band_pruned[orig]),
                peak_wavefront_bytes=int(BYTES_PER_CELL * peak_cells[orig]),
            )

        # Live state, row-aligned to ``act`` (original indices still active).
        act = np.arange(num_pairs, dtype=np.int64)
        ns, ms = ns_all, ms_all
        kfin = ms - ns
        hard_caps = 2 * p.gap_open + p.gap_extend * (ns + ms) + p.mismatch

        x, oe, e = p.mismatch, p.gap_open_total, p.gap_extend
        step = p.score_granularity
        span = p.max_window_span()
        records: dict[int, _BatchRecord] = {}

        def store_history(
            s: int,
            lo: np.ndarray,
            hi: np.ndarray,
            out_m: np.ndarray,
            out_i: np.ndarray | None,
            out_d: np.ndarray | None,
            live_m: np.ndarray,
            live_i: np.ndarray,
            live_d: np.ndarray,
        ) -> None:
            if not self.keep_backtrace:
                return
            for r in np.flatnonzero(live_m):
                w = int(hi[r] - lo[r]) + 1
                lo_r, hi_r = int(lo[r]), int(hi[r])
                orig = int(act[r])
                # Copy the row slices: a view would pin the whole padded
                # batch array alive for the pair's entire history, which
                # is exactly the memory blow-up banding exists to avoid.
                hist_m[orig][s] = Wavefront(lo_r, hi_r, out_m[r, :w].copy())
                if out_i is not None and live_i[r]:
                    hist_i[orig][s] = Wavefront(lo_r, hi_r, out_i[r, :w].copy())
                if out_d is not None and live_d[r]:
                    hist_d[orig][s] = Wavefront(lo_r, hi_r, out_d[r, :w].copy())

        def retire(done: np.ndarray, s: int, *, failed: bool = False) -> bool:
            """Finish ``done`` rows at score ``s``; True when batch is empty.

            ``failed`` rows (band loss / hard cap under banding) get a
            ``reached_end=False`` result instead of a backtrace.
            """
            nonlocal act, av2d, bv2d, ns, ms, kfin, hard_caps, last_live
            if failed:
                for r in np.flatnonzero(done):
                    orig = int(act[r])
                    results[orig] = WfaResult(
                        score=-1, cigar=None, work=work_for(orig),
                        reached_end=False,
                    )
                    hist_m[orig] = hist_i[orig] = hist_d[orig] = {}
            else:
                with prof.stage("backtrace"):
                    for r in np.flatnonzero(done):
                        orig = int(act[r])
                        a, b = pairs[orig]
                        cigar = (
                            backtrace_wavefronts(
                                a, b, hist_m[orig], hist_i[orig], hist_d[orig], s, p
                            )
                            if self.keep_backtrace
                            else None
                        )
                        results[orig] = WfaResult(
                            score=s, cigar=cigar, work=work_for(orig)
                        )
                        # History is per pair; free it as soon as it is spent.
                        hist_m[orig] = hist_i[orig] = hist_d[orig] = {}
            with prof.stage("retire"):
                keep = ~done
                act = act[keep]
                av2d = av2d[keep]
                bv2d = bv2d[keep]
                ns, ms, kfin = ns[keep], ms[keep], kfin[keep]
                hard_caps = hard_caps[keep]
                last_live = last_live[keep]
                for rec in records.values():
                    rec.compact(keep)
            return act.size == 0

        # -- s = 0: one M cell per pair at k = 0, offset 0, then extend. ----
        lo0 = np.zeros(act.size, dtype=np.int64)
        hi0 = np.zeros(act.size, dtype=np.int64)
        with prof.stage("extend"):
            ext0 = extend_kernel_batched(
                av2d, bv2d, ns, ms, np.zeros((act.size, 1), dtype=np.int64), lo0
            )
        ext_cmp[act] += ext0.comparisons
        ext_match[act] += ext0.matches
        cells_alloc[act] += 1
        peak_width[act] = 1
        live_cells[act] += 1
        peak_cells[act] = np.maximum(peak_cells[act], live_cells[act])
        last_live = np.zeros(act.size, dtype=np.int64)
        absent = np.full(act.size, BAND_ABSENT, dtype=np.int64)
        null_col = np.full((act.size, 1), NULL_OFFSET, dtype=np.int64)
        records[0] = _BatchRecord(
            lo_m=lo0,
            hi_m=hi0,
            lo_i=absent,
            hi_i=-absent,
            lo_d=absent.copy(),
            hi_d=-absent.copy(),
            m=ext0.offsets,
            i=null_col,
            d=null_col.copy(),
            row_cells=np.ones(act.size, dtype=np.int64),
        )
        alive = np.ones(act.size, dtype=bool)
        store_history(0, lo0, hi0, ext0.offsets, None, None, alive, alive, alive)
        done = (kfin == 0) & (ext0.offsets[:, 0] == ms)
        if done.any() and retire(done, 0):
            return _finalize(results)

        # -- the lockstep score loop ----------------------------------------
        s = 0
        while True:
            s += step
            if self.max_score is not None and s > self.max_score:
                merged = WfaWorkCounters()
                for orig in act:
                    merged.merge(work_for(int(orig)))
                raise ScoreLimitExceeded(s, self.max_score, merged)
            over = s > hard_caps
            if over.any():
                if self.band_width is None:
                    raise AssertionError(
                        "batched WFA failed to terminate below the hard score "
                        f"cap {int(hard_caps.max())}"
                    )
                if retire(over, s, failed=True):
                    return _finalize(results)
            score_iters[act] += 1

            # Once a pair has had no wavefront for a full recurrence window
            # it can never produce one again: the band lost the optimal
            # path and every survivor ran off the matrix.
            if self.band_width is not None:
                band_dead = (s - last_live) > span
                if band_dead.any() and retire(band_dead, s, failed=True):
                    return _finalize(results)

            # Drop batch records behind the recurrence window.  Safe even
            # with backtrace on: CIGAR recovery reads the per-pair history
            # snapshots, never the batch records, so the batch only ever
            # holds ``span`` scores.  Without backtrace the history does
            # not exist either, so eviction is when stored cells leave the
            # ``peak_wavefront_bytes`` memory model.
            horizon = s - span
            for key in [key for key in records if key < horizon]:
                rec = records.pop(key)
                if not self.keep_backtrace:
                    live_cells[act] -= rec.row_cells

            rec_x = records.get(s - x)
            rec_oe = records.get(s - oe)
            rec_e = records.get(s - e)
            if rec_x is None and rec_oe is None and rec_e is None:
                continue

            with prof.stage("compute"):
                los = [
                    lo
                    for lo in (
                        rec_x.lo_m if rec_x is not None else None,
                        rec_oe.lo_m if rec_oe is not None else None,
                        rec_e.lo_i if rec_e is not None else None,
                        rec_e.lo_d if rec_e is not None else None,
                    )
                    if lo is not None
                ]
                his = [
                    hi
                    for hi in (
                        rec_x.hi_m if rec_x is not None else None,
                        rec_oe.hi_m if rec_oe is not None else None,
                        rec_e.hi_i if rec_e is not None else None,
                        rec_e.hi_d if rec_e is not None else None,
                    )
                    if hi is not None
                ]
                src_lo = np.minimum.reduce(los)
                src_hi = np.maximum.reduce(his)
                lo_new = np.maximum(src_lo - 1, -ns)
                hi_new = np.minimum(src_hi + 1, ms)
                exists = (src_lo < BAND_ABSENT) & (lo_new <= hi_new)
                if not exists.any():
                    continue
                lo_new = np.where(exists, lo_new, BAND_ABSENT)
                hi_new = np.where(exists, hi_new, -BAND_ABSENT)
                width = int((hi_new - lo_new).max()) + 1

                def win(rec: _BatchRecord | None, which: str, shift: int) -> np.ndarray:
                    if rec is None:
                        return np.full(
                            (act.size, width), NULL_OFFSET, dtype=np.int64
                        )
                    data = getattr(rec, which)
                    lo_src = getattr(rec, f"lo_{which}")
                    hi_src = getattr(rec, f"hi_{which}")
                    return gather_window_batched(
                        data, lo_src, hi_src, lo_new, width, shift
                    )

                ks = lo_new[:, None] + np.arange(width, dtype=np.int64)[None, :]
                valid = (
                    np.arange(width, dtype=np.int64)[None, :]
                    <= (hi_new - lo_new)[:, None]
                )
                out = compute_kernel_batched(
                    win(rec_x, "m", 0),
                    win(rec_oe, "m", -1),
                    win(rec_e, "i", -1),
                    win(rec_oe, "m", +1),
                    win(rec_e, "d", +1),
                    ks,
                    ns[:, None],
                    ms[:, None],
                    valid,
                )
            w_rows = np.where(exists, hi_new - lo_new + 1, 0)
            cells_comp[act] += 3 * w_rows
            cells_alloc[act] += 3 * w_rows
            if not out.live_m.any():
                continue

            with prof.stage("extend"):
                ext = extend_kernel_batched(av2d, bv2d, ns, ms, out.m, lo_new)
            ext_cmp[act] += ext.comparisons
            ext_match[act] += ext.matches
            wf_steps[act] += out.live_m
            peak_width[act] = np.maximum(
                peak_width[act], np.where(out.live_m, w_rows, 0)
            )

            # Convergence: M reached offset m on the final diagonal.  The
            # check runs on the *full* wavefront, before any pruning, so
            # retiring pairs always feed an untrimmed step to backtrace.
            cols = kfin - lo_new
            in_band = (cols >= 0) & (cols <= hi_new - lo_new)
            vals = ext.offsets[
                np.arange(act.size), np.clip(cols, 0, width - 1)
            ]
            done = out.live_m & in_band & (vals == ms)

            m_f, i_f, d_f = ext.offsets, out.i, out.d
            lo_f, hi_f = lo_new, hi_new
            live_m_f, live_i_f, live_d_f = out.live_m, out.live_i, out.live_d
            if self.band_width is not None:
                with prof.stage("band"):
                    pr = band_prune_batched(
                        ext.offsets, out.i, out.d, lo_new, hi_new,
                        self.band_width, done,
                    )
                    m_f, i_f, d_f = pr.m, pr.i, pr.d
                    lo_f, hi_f = pr.lo, pr.hi
                    band_pruned[act] += pr.pruned
                    # A matrix can go empty once trimmed; liveness (and so
                    # storage) is re-derived from the pruned arrays.
                    live_m_f = (m_f >= 0).any(axis=1)
                    live_i_f = (i_f >= 0).any(axis=1)
                    live_d_f = (d_f >= 0).any(axis=1)

            w_f = np.where(live_m_f, hi_f - lo_f + 1, 0)
            records[s] = _BatchRecord(
                lo_m=np.where(live_m_f, lo_f, BAND_ABSENT),
                hi_m=np.where(live_m_f, hi_f, -BAND_ABSENT),
                lo_i=np.where(live_i_f, lo_f, BAND_ABSENT),
                hi_i=np.where(live_i_f, hi_f, -BAND_ABSENT),
                lo_d=np.where(live_d_f, lo_f, BAND_ABSENT),
                hi_d=np.where(live_d_f, hi_f, -BAND_ABSENT),
                m=m_f,
                i=i_f,
                d=d_f,
                row_cells=w_f
                * (
                    live_m_f.astype(np.int64)
                    + live_i_f.astype(np.int64)
                    + live_d_f.astype(np.int64)
                ),
            )
            store_history(
                s, lo_f, hi_f, m_f, i_f, d_f,
                live_m_f, live_i_f, live_d_f,
            )
            live_cells[act] += records[s].row_cells
            peak_cells[act] = np.maximum(peak_cells[act], live_cells[act])
            last_live = np.where(live_m_f, s, last_live)

            if done.any() and retire(done, s):
                return _finalize(results)


def _finalize(results: list[WfaResult | None]) -> list[WfaResult]:
    assert all(r is not None for r in results), "batched aligner lost a pair"
    return results  # type: ignore[return-value]


def wfa_align_batched(
    pairs: Sequence[tuple[str, str]],
    penalties: AffinePenalties = DEFAULT_PENALTIES,
) -> list[WfaResult]:
    """One-shot batched WFA alignment (with backtrace) of many pairs."""
    return BatchedWfaAligner(penalties).align_batch(pairs)
