"""Vectorised WFA kernels shared by the software aligner and the WFAsic model.

Two kernels mirror the two hardware sub-modules of §4.3:

* :func:`compute_kernel` — Eq. 3 across a whole frame column at once,
  optionally emitting the 5-bit per-cell origin codes that the Compute
  sub-module concatenates into backtrace blocks.
* :func:`extend_kernel` — greedy match extension in 16-base blocks, the
  exact dataflow of the Extend sub-module (compare a block per cycle until
  a mismatch or a sequence end), vectorised across all live cells of the
  frame column.  It reports the number of block comparisons per cell so
  cycle models can charge the same work the hardware would do.

Both kernels use the paper's conventions: ``offset = j``, ``k = j - i``,
:data:`NULL_OFFSET` for unreachable cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .wfa import NULL_OFFSET

__all__ = [
    "ORIGIN_M_NONE",
    "ORIGIN_M_SUB",
    "ORIGIN_M_INS",
    "ORIGIN_M_DEL",
    "ORIGIN_I_EXT_BIT",
    "ORIGIN_D_EXT_BIT",
    "ComputeOutput",
    "ExtendOutput",
    "compute_kernel",
    "extend_kernel",
    "pad_sequence",
]

# --- 5-bit origin encoding (§4.3.3: 3 bits M + 1 bit I + 1 bit D) ---------

#: M-origin field (bits 2..0): where the M cell's value came from.
ORIGIN_M_NONE = 0  # cell is NULL
ORIGIN_M_SUB = 1  # substitution: M[s-x, k] + 1
ORIGIN_M_INS = 2  # insertion:    I[s, k]
ORIGIN_M_DEL = 3  # deletion:     D[s, k]

#: I-origin bit (bit 3): 0 = open (M[s-o-e, k-1]), 1 = extend (I[s-e, k-1]).
ORIGIN_I_EXT_BIT = 1 << 3
#: D-origin bit (bit 4): 0 = open (M[s-o-e, k+1]), 1 = extend (D[s-e, k+1]).
ORIGIN_D_EXT_BIT = 1 << 4


@dataclass(frozen=True)
class ComputeOutput:
    """Frame-column result of one compute() step."""

    m: np.ndarray  # int64, NULL_OFFSET where unreachable
    i: np.ndarray
    d: np.ndarray
    origins: np.ndarray | None  # uint8 5-bit codes, or None

    @property
    def any_live(self) -> bool:
        return bool((self.m >= 0).any())


@dataclass(frozen=True)
class ExtendOutput:
    """Frame-column result of one extend() step."""

    offsets: np.ndarray  # post-extension M offsets
    blocks: np.ndarray  # 16-base comparator operations per cell
    matches: int  # total matched characters
    comparisons: int  # total character comparisons (scalar-equivalent)


def compute_kernel(
    m_x: np.ndarray,
    m_oe_km1: np.ndarray,
    i_e_km1: np.ndarray,
    m_oe_kp1: np.ndarray,
    d_e_kp1: np.ndarray,
    ks: np.ndarray,
    n: int,
    m: int,
    *,
    emit_origins: bool = False,
) -> ComputeOutput:
    """Eq. 3 for one frame column.

    All inputs are aligned to the output diagonals ``ks``: ``m_x[t]`` is
    ``M[s-x, ks[t]]``, ``m_oe_km1[t]`` is ``M[s-o-e, ks[t]-1]``, and so on
    (callers gather the shifted windows; the hardware does the same with
    its banked RAM addressing, Fig. 6).

    Dead cells — offset beyond the text end ``m``, row ``i = offset - k``
    beyond the pattern end ``n``, or no live source — are nulled *before*
    the max so they can never shadow a live candidate.
    """
    ins = np.maximum(m_oe_km1, i_e_km1) + 1
    dele = np.maximum(m_oe_kp1, d_e_kp1)
    sub = m_x + 1

    for arr in (ins, dele, sub):
        dead = (arr > m) | (arr - ks > n) | (arr < 0)
        arr[dead] = NULL_OFFSET

    mwf = np.maximum(np.maximum(ins, dele), sub)

    origins: np.ndarray | None = None
    if emit_origins:
        # Tie-breaking must mirror the backtrace preference order:
        # substitution, then insertion, then deletion; and within I/D,
        # extend over open.
        origins = np.zeros(len(ks), dtype=np.uint8)
        live = mwf >= 0
        m_orig = np.full(len(ks), ORIGIN_M_NONE, dtype=np.uint8)
        take_del = live & (mwf == dele)
        m_orig[take_del] = ORIGIN_M_DEL
        take_ins = live & (mwf == ins)
        m_orig[take_ins] = ORIGIN_M_INS
        take_sub = live & (mwf == sub)
        m_orig[take_sub] = ORIGIN_M_SUB
        origins |= m_orig
        origins |= np.where(i_e_km1 >= m_oe_km1, ORIGIN_I_EXT_BIT, 0).astype(np.uint8)
        origins |= np.where(d_e_kp1 >= m_oe_kp1, ORIGIN_D_EXT_BIT, 0).astype(np.uint8)

    return ComputeOutput(m=mwf, i=ins, d=dele, origins=origins)


def pad_sequence(seq: str, *, sentinel: int, block: int = 16) -> np.ndarray:
    """Sequence bytes followed by ``block`` sentinel bytes.

    The sentinel guarantees that comparisons past the sequence end fail,
    so the vectorised comparator needs no per-row bounds checks (use
    *different* sentinels for the two sequences).
    """
    raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    return np.concatenate([raw, np.full(block, sentinel, dtype=np.uint8)])


def extend_kernel(
    av_pad: np.ndarray,
    bv_pad: np.ndarray,
    n: int,
    m: int,
    offsets: np.ndarray,
    lo: int,
    *,
    block: int = 16,
) -> ExtendOutput:
    """extend() for one frame column, in 16-base blocks.

    ``av_pad``/``bv_pad`` come from :func:`pad_sequence` with distinct
    sentinels.  ``offsets`` holds the pre-extension M offsets for diagonals
    ``lo..lo+len(offsets)-1``; NULL cells are skipped.

    The block loop is a faithful model of the Extend sub-module: each
    iteration consumes one comparator operation per still-active cell
    (16 bases compared in parallel), and a cell retires on its first
    block containing a mismatch or a sequence end.
    """
    width = len(offsets)
    out = offsets.astype(np.int64, copy=True)
    blocks = np.zeros(width, dtype=np.int64)
    ks = np.arange(lo, lo + width, dtype=np.int64)

    live = out >= 0
    j = np.where(live, out, 0)
    i = np.where(live, j - ks, 0)
    sel = np.flatnonzero(live & (i < n) & (j < m))
    total_matches = 0
    total_comparisons = 0
    span = np.arange(block, dtype=np.int64)

    while sel.size:
        ai = i[sel, None] + span
        bj = j[sel, None] + span
        neq = av_pad[ai] != bv_pad[bj]
        hit = neq.any(axis=1)
        run = np.where(hit, neq.argmax(axis=1), block)
        blocks[sel] += 1
        i[sel] += run
        j[sel] += run
        total_matches += int(run.sum())
        # Scalar-equivalent comparisons: matched chars, plus one discovery
        # compare for runs stopped by a genuine in-bounds mismatch (a stop
        # at a sequence end costs no compare in the scalar model).
        inside = (i[sel] < n) & (j[sel] < m)
        total_comparisons += int(run.sum()) + int((hit & inside).sum())
        sel = sel[(~hit) & inside]

    out[live] = j[live]
    return ExtendOutput(
        offsets=out,
        blocks=blocks,
        matches=total_matches,
        comparisons=total_comparisons,
    )
