"""Vectorised WFA kernels shared by the software aligner and the WFAsic model.

Two kernels mirror the two hardware sub-modules of §4.3:

* :func:`compute_kernel` — Eq. 3 across a whole frame column at once,
  optionally emitting the 5-bit per-cell origin codes that the Compute
  sub-module concatenates into backtrace blocks.
* :func:`extend_kernel` — greedy match extension in 16-base blocks, the
  exact dataflow of the Extend sub-module (compare a block per cycle until
  a mismatch or a sequence end), vectorised across all live cells of the
  frame column.  It reports the number of block comparisons per cell so
  cycle models can charge the same work the hardware would do.

Both kernels use the paper's conventions: ``offset = j``, ``k = j - i``,
:data:`NULL_OFFSET` for unreachable cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .wfa import NULL_OFFSET, PROG_NULL

__all__ = [
    "ORIGIN_M_NONE",
    "ORIGIN_M_SUB",
    "ORIGIN_M_INS",
    "ORIGIN_M_DEL",
    "ORIGIN_I_EXT_BIT",
    "ORIGIN_D_EXT_BIT",
    "BAND_ABSENT",
    "BandPruneOutput",
    "ComputeOutput",
    "ExtendOutput",
    "BatchedComputeOutput",
    "BatchedExtendOutput",
    "band_prune_batched",
    "compute_kernel",
    "extend_kernel",
    "compute_kernel_batched",
    "extend_kernel_batched",
    "gather_window_batched",
    "pad_sequence",
]

#: Per-pair ``lo`` placeholder meaning "this pair has no wavefront at this
#: score".  Large enough that any window index derived from it lands far
#: outside every real band (so gathers return NULL), small enough that
#: int64 arithmetic on it can never overflow.
BAND_ABSENT = 2**31

# --- 5-bit origin encoding (§4.3.3: 3 bits M + 1 bit I + 1 bit D) ---------

#: M-origin field (bits 2..0): where the M cell's value came from.
ORIGIN_M_NONE = 0  # cell is NULL
ORIGIN_M_SUB = 1  # substitution: M[s-x, k] + 1
ORIGIN_M_INS = 2  # insertion:    I[s, k]
ORIGIN_M_DEL = 3  # deletion:     D[s, k]

#: I-origin bit (bit 3): 0 = open (M[s-o-e, k-1]), 1 = extend (I[s-e, k-1]).
ORIGIN_I_EXT_BIT = 1 << 3
#: D-origin bit (bit 4): 0 = open (M[s-o-e, k+1]), 1 = extend (D[s-e, k+1]).
ORIGIN_D_EXT_BIT = 1 << 4


@dataclass(frozen=True)
class ComputeOutput:
    """Frame-column result of one compute() step."""

    m: np.ndarray  # int64, NULL_OFFSET where unreachable
    i: np.ndarray
    d: np.ndarray
    origins: np.ndarray | None  # uint8 5-bit codes, or None

    @property
    def any_live(self) -> bool:
        return bool((self.m >= 0).any())


@dataclass(frozen=True)
class ExtendOutput:
    """Frame-column result of one extend() step."""

    offsets: np.ndarray  # post-extension M offsets
    blocks: np.ndarray  # 16-base comparator operations per cell
    matches: int  # total matched characters
    comparisons: int  # total character comparisons (scalar-equivalent)


def compute_kernel(
    m_x: np.ndarray,
    m_oe_km1: np.ndarray,
    i_e_km1: np.ndarray,
    m_oe_kp1: np.ndarray,
    d_e_kp1: np.ndarray,
    ks: np.ndarray,
    n: int,
    m: int,
    *,
    emit_origins: bool = False,
) -> ComputeOutput:
    """Eq. 3 for one frame column.

    All inputs are aligned to the output diagonals ``ks``: ``m_x[t]`` is
    ``M[s-x, ks[t]]``, ``m_oe_km1[t]`` is ``M[s-o-e, ks[t]-1]``, and so on
    (callers gather the shifted windows; the hardware does the same with
    its banked RAM addressing, Fig. 6).

    Dead cells — offset beyond the text end ``m``, row ``i = offset - k``
    beyond the pattern end ``n``, or no live source — are nulled *before*
    the max so they can never shadow a live candidate.
    """
    ins = np.maximum(m_oe_km1, i_e_km1) + 1
    dele = np.maximum(m_oe_kp1, d_e_kp1)
    sub = m_x + 1

    for arr in (ins, dele, sub):
        dead = (arr > m) | (arr - ks > n) | (arr < 0)
        arr[dead] = NULL_OFFSET

    mwf = np.maximum(np.maximum(ins, dele), sub)

    origins: np.ndarray | None = None
    if emit_origins:
        # Tie-breaking must mirror the backtrace preference order:
        # substitution, then insertion, then deletion; and within I/D,
        # extend over open.
        origins = np.zeros(len(ks), dtype=np.uint8)
        live = mwf >= 0
        m_orig = np.full(len(ks), ORIGIN_M_NONE, dtype=np.uint8)
        take_del = live & (mwf == dele)
        m_orig[take_del] = ORIGIN_M_DEL
        take_ins = live & (mwf == ins)
        m_orig[take_ins] = ORIGIN_M_INS
        take_sub = live & (mwf == sub)
        m_orig[take_sub] = ORIGIN_M_SUB
        origins |= m_orig
        origins |= np.where(i_e_km1 >= m_oe_km1, ORIGIN_I_EXT_BIT, 0).astype(np.uint8)
        origins |= np.where(d_e_kp1 >= m_oe_kp1, ORIGIN_D_EXT_BIT, 0).astype(np.uint8)

    return ComputeOutput(m=mwf, i=ins, d=dele, origins=origins)


def pad_sequence(seq: str, *, sentinel: int, block: int = 16) -> np.ndarray:
    """Sequence bytes followed by ``block`` sentinel bytes.

    The sentinel guarantees that comparisons past the sequence end fail,
    so the vectorised comparator needs no per-row bounds checks (use
    *different* sentinels for the two sequences).
    """
    raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    return np.concatenate([raw, np.full(block, sentinel, dtype=np.uint8)])


@dataclass(frozen=True)
class BatchedComputeOutput:
    """One compute() step for a whole batch of pairs."""

    m: np.ndarray  # int64 (pairs, width), NULL_OFFSET where unreachable
    i: np.ndarray
    d: np.ndarray
    live_m: np.ndarray  # bool (pairs,): row has at least one live M cell
    live_i: np.ndarray
    live_d: np.ndarray


@dataclass(frozen=True)
class BatchedExtendOutput:
    """One extend() step for a whole batch of pairs."""

    offsets: np.ndarray  # int64 (pairs, width), post-extension M offsets
    matches: np.ndarray  # int64 (pairs,): matched characters per pair
    comparisons: np.ndarray  # int64 (pairs,): scalar-equivalent compares


def gather_window_batched(
    data: np.ndarray,
    lo_src: np.ndarray,
    hi_src: np.ndarray,
    lo_new: np.ndarray,
    width: int,
    shift: int,
) -> np.ndarray:
    """Per-pair shifted band windows out of a batched wavefront.

    ``data`` is a ``(pairs, W_src)`` wavefront whose row ``p`` covers
    diagonals ``lo_src[p]..hi_src[p]`` (``lo_src[p] == BAND_ABSENT`` for
    pairs without a wavefront).  The result is ``(pairs, width)`` with
    ``out[p, t] = data[p, (lo_new[p] + t + shift) - lo_src[p]]`` where
    that index lands inside the pair's band and NULL_OFFSET elsewhere —
    the batched analog of :meth:`repro.align.wfa.Wavefront.window`, and
    of the hardware's banked per-section RAM addressing (Fig. 6).
    """
    pairs = data.shape[0]
    idx = (
        lo_new[:, None]
        + np.arange(width, dtype=np.int64)[None, :]
        + (shift - lo_src)[:, None]
    )
    in_band = (idx >= 0) & (idx < (hi_src - lo_src + 1)[:, None])
    if data.shape[1] == 0:
        return np.full((pairs, width), NULL_OFFSET, dtype=np.int64)
    np.clip(idx, 0, data.shape[1] - 1, out=idx)
    vals = np.take_along_axis(data, idx, axis=1)
    return np.where(in_band, vals, NULL_OFFSET)


def compute_kernel_batched(
    m_x: np.ndarray,
    m_oe_km1: np.ndarray,
    i_e_km1: np.ndarray,
    m_oe_kp1: np.ndarray,
    d_e_kp1: np.ndarray,
    ks: np.ndarray,
    ns: np.ndarray,
    ms: np.ndarray,
    valid: np.ndarray,
) -> BatchedComputeOutput:
    """Eq. 3 for one score step of a whole batch at once.

    The 2D counterpart of :func:`compute_kernel`: every input is
    ``(pairs, width)`` with row ``p`` aligned to that pair's band (use
    :func:`gather_window_batched` to build the shifted source windows),
    ``ks[p, t]`` is the diagonal of cell ``(p, t)``, ``ns``/``ms`` are
    per-pair sequence lengths broadcastable against the cells (pass
    column vectors), and ``valid`` masks the padding columns beyond each
    pair's band (bands are padded to the widest pair in the batch).
    """
    ins = np.maximum(m_oe_km1, i_e_km1) + 1
    dele = np.maximum(m_oe_kp1, d_e_kp1)
    sub = m_x + 1

    for arr in (ins, dele, sub):
        dead = (arr > ms) | (arr - ks > ns) | (arr < 0) | ~valid
        arr[dead] = NULL_OFFSET

    mwf = np.maximum(np.maximum(ins, dele), sub)
    return BatchedComputeOutput(
        m=mwf,
        i=ins,
        d=dele,
        live_m=(mwf >= 0).any(axis=1),
        live_i=(ins >= 0).any(axis=1),
        live_d=(dele >= 0).any(axis=1),
    )


@dataclass(frozen=True)
class BandPruneOutput:
    """Result of one adaptive band-pruning step for a whole batch."""

    m: np.ndarray  # int64 (pairs, new_width), NULL_OFFSET padded
    i: np.ndarray
    d: np.ndarray
    lo: np.ndarray  # int64 (pairs,): new band start per pair
    hi: np.ndarray  # int64 (pairs,): new band end per pair
    pruned: np.ndarray  # int64 (pairs,): live cells discarded per pair


def band_prune_batched(
    m: np.ndarray,
    i: np.ndarray,
    d: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    band_width: int,
    keep: np.ndarray,
) -> BandPruneOutput:
    """Trim every pair's wavefronts to ``band_width`` diagonals at once.

    The batched twin of ``WfaAligner._prune_band`` with identical
    semantics: each row re-centers on its cell of maximum anti-diagonal
    progress ``2 * offset - k`` (ties to the lowest diagonal, matching
    ``np.argmax`` row-wise), clamps the window inside ``lo..hi``, and
    gathers M/I/D into one shared band.  Rows flagged in ``keep``
    (retiring pairs whose full-width wavefront feeds the backtrace) and
    rows already no wider than the band pass through untouched;
    ``pruned`` counts the live cells each row discarded.
    """
    width = m.shape[1]
    w_rows = hi - lo + 1  # nonsense for BAND_ABSENT rows; masked below
    live_any = (m >= 0).any(axis=1)
    need = live_any & ~keep & (w_rows > band_width)
    if not need.any():
        zeros = np.zeros(m.shape[0], dtype=np.int64)
        return BandPruneOutput(m=m, i=i, d=d, lo=lo, hi=hi, pruned=zeros)

    ks = lo[:, None] + np.arange(width, dtype=np.int64)[None, :]
    prog = np.where(m >= 0, 2 * m - ks, PROG_NULL)
    center = lo + np.argmax(prog, axis=1)
    blo = np.clip(center - band_width // 2, lo, hi - band_width + 1)
    blo = np.where(need, blo, lo)
    bhi = np.where(need, blo + band_width - 1, hi)

    outside = (ks < blo[:, None]) | (ks > bhi[:, None])
    pruned = np.zeros(m.shape[0], dtype=np.int64)
    for arr in (m, i, d):
        pruned += ((arr >= 0) & outside).sum(axis=1)

    new_width = int((bhi - blo).max()) + 1
    # The gather masks by the *source* band, so a pruned row whose new
    # window starts at its old ``lo`` would keep cells beyond ``bhi`` in
    # its padding columns; null everything past each row's new window.
    in_window = (
        np.arange(new_width, dtype=np.int64)[None, :] <= (bhi - blo)[:, None]
    )

    def shrink(arr: np.ndarray) -> np.ndarray:
        out = gather_window_batched(arr, lo, hi, blo, new_width, 0)
        return np.where(in_window, out, NULL_OFFSET)

    return BandPruneOutput(
        m=shrink(m), i=shrink(i), d=shrink(d), lo=blo, hi=bhi, pruned=pruned
    )


def extend_kernel_batched(
    av_pad: np.ndarray,
    bv_pad: np.ndarray,
    ns: np.ndarray,
    ms: np.ndarray,
    offsets: np.ndarray,
    lo: np.ndarray,
    *,
    block: int = 16,
) -> BatchedExtendOutput:
    """extend() for one score step of a whole batch, in 16-base blocks.

    ``av_pad``/``bv_pad`` are :func:`repro.align.packing.pack_batch`
    matrices (one padded sequence per row, distinct sentinels for the
    two sides); ``offsets`` is ``(pairs, width)`` with row ``p`` holding
    the pre-extension M offsets for diagonals starting at ``lo[p]``.

    All still-active cells across *all* pairs advance together: each
    block-loop iteration compares 16 bases for every live cell of every
    pair, so the per-call numpy overhead is paid once per batch instead
    of once per pair.  Per-pair match/comparison counts come back so
    work counters stay pair-accurate.
    """
    num_pairs, width = offsets.shape
    out = offsets.astype(np.int64, copy=True)
    matches = np.zeros(num_pairs, dtype=np.int64)
    comparisons = np.zeros(num_pairs, dtype=np.int64)
    span = np.arange(block, dtype=np.int64)

    ks = lo[:, None] + np.arange(width, dtype=np.int64)[None, :]
    live = out >= 0
    j2d = np.where(live, out, 0)
    i2d = np.where(live, j2d - ks, 0)
    sel = live & (i2d < ns[:, None]) & (j2d < ms[:, None])
    rows, cols = np.nonzero(sel)
    i = i2d[rows, cols]
    j = j2d[rows, cols]

    while rows.size:
        ai = i[:, None] + span
        bj = j[:, None] + span
        neq = av_pad[rows[:, None], ai] != bv_pad[rows[:, None], bj]
        hit = neq.any(axis=1)
        run = np.where(hit, neq.argmax(axis=1), block)
        i += run
        j += run
        matches += np.bincount(rows, weights=run, minlength=num_pairs).astype(
            np.int64
        )
        # Scalar-equivalent comparisons: matched chars, plus one discovery
        # compare for runs stopped by a genuine in-bounds mismatch (a stop
        # at a sequence end costs no compare in the scalar model).
        inside = (i < ns[rows]) & (j < ms[rows])
        comparisons += np.bincount(
            rows, weights=run + (hit & inside), minlength=num_pairs
        ).astype(np.int64)
        keep = (~hit) & inside
        done = ~keep
        out[rows[done], cols[done]] = j[done]
        rows, cols, i, j = rows[keep], cols[keep], i[keep], j[keep]

    return BatchedExtendOutput(offsets=out, matches=matches, comparisons=comparisons)


def extend_kernel(
    av_pad: np.ndarray,
    bv_pad: np.ndarray,
    n: int,
    m: int,
    offsets: np.ndarray,
    lo: int,
    *,
    block: int = 16,
) -> ExtendOutput:
    """extend() for one frame column, in 16-base blocks.

    ``av_pad``/``bv_pad`` come from :func:`pad_sequence` with distinct
    sentinels.  ``offsets`` holds the pre-extension M offsets for diagonals
    ``lo..lo+len(offsets)-1``; NULL cells are skipped.

    The block loop is a faithful model of the Extend sub-module: each
    iteration consumes one comparator operation per still-active cell
    (16 bases compared in parallel), and a cell retires on its first
    block containing a mismatch or a sequence end.
    """
    width = len(offsets)
    out = offsets.astype(np.int64, copy=True)
    blocks = np.zeros(width, dtype=np.int64)
    ks = np.arange(lo, lo + width, dtype=np.int64)

    live = out >= 0
    j = np.where(live, out, 0)
    i = np.where(live, j - ks, 0)
    sel = np.flatnonzero(live & (i < n) & (j < m))
    total_matches = 0
    total_comparisons = 0
    span = np.arange(block, dtype=np.int64)

    while sel.size:
        ai = i[sel, None] + span
        bj = j[sel, None] + span
        neq = av_pad[ai] != bv_pad[bj]
        hit = neq.any(axis=1)
        run = np.where(hit, neq.argmax(axis=1), block)
        blocks[sel] += 1
        i[sel] += run
        j[sel] += run
        total_matches += int(run.sum())
        # Scalar-equivalent comparisons: matched chars, plus one discovery
        # compare for runs stopped by a genuine in-bounds mismatch (a stop
        # at a sequence end costs no compare in the scalar model).
        inside = (i[sel] < n) & (j[sel] < m)
        total_comparisons += int(run.sum()) + int((hit & inside).sum())
        sel = sel[(~hit) & inside]

    out[live] = j[live]
    return ExtendOutput(
        offsets=out,
        blocks=blocks,
        matches=total_matches,
        comparisons=total_comparisons,
    )
