"""Scoring models for pairwise sequence alignment.

The paper (and the WFA algorithm it accelerates) uses *penalty-based*
scoring: a match costs 0, and every difference adds a non-negative
penalty.  Two models appear in the paper:

* **gap-linear** (Eq. 1): a mismatch costs ``x`` and every gap character
  costs ``g``, independent of whether it opens or extends a gap.
* **gap-affine** (Eq. 2/3): a mismatch costs ``x``, opening a gap costs
  ``o + e`` and each further gap character costs ``e``.  This is the model
  implemented by SWG, WFA and the WFAsic accelerator.

The paper's running example and the hardware configuration both use
``(x, o, e) = (4, 6, 2)``; :data:`DEFAULT_PENALTIES` mirrors that.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

__all__ = [
    "AffinePenalties",
    "LinearPenalties",
    "DEFAULT_PENALTIES",
]


@dataclass(frozen=True)
class AffinePenalties:
    """Gap-affine penalties ``(x, o, e)`` as used by SWG/WFA (Eq. 2/3).

    Attributes
    ----------
    mismatch:
        Penalty ``x`` for a substitution.  Must be > 0 (a zero mismatch
        penalty makes every pair align with score 0 and breaks the WFA
        score recurrence).
    gap_open:
        Penalty ``o`` added once when a gap opens.  The first gap
        character costs ``o + e`` in total.
    gap_extend:
        Penalty ``e`` for every gap character (including the first).
        Must be > 0.
    """

    mismatch: int = 4
    gap_open: int = 6
    gap_extend: int = 2

    def __post_init__(self) -> None:
        if self.mismatch <= 0:
            raise ValueError(f"mismatch penalty must be > 0, got {self.mismatch}")
        if self.gap_open < 0:
            raise ValueError(f"gap-open penalty must be >= 0, got {self.gap_open}")
        if self.gap_extend <= 0:
            raise ValueError(f"gap-extend penalty must be > 0, got {self.gap_extend}")

    @property
    def gap_open_total(self) -> int:
        """Cost ``o + e`` of the first character of a gap."""
        return self.gap_open + self.gap_extend

    @property
    def score_granularity(self) -> int:
        """GCD of all penalty steps.

        Every reachable alignment score is a multiple of this value, so
        simulators can step scores by it instead of by 1.  For the paper's
        ``(4, 6, 2)`` this is 2, which is why the paper's wavefront scores
        are all even (0, 4, 8, 10, 12, ...).
        """
        return gcd(self.mismatch, gcd(self.gap_open_total, self.gap_extend))

    def gap_cost(self, length: int) -> int:
        """Total penalty of a contiguous gap of ``length`` characters."""
        if length < 0:
            raise ValueError(f"gap length must be >= 0, got {length}")
        if length == 0:
            return 0
        return self.gap_open + self.gap_extend * length

    def max_window_span(self) -> int:
        """How far back (in score units) the WFA recurrence reaches.

        Computing wavefront ``s`` needs wavefronts ``s - x``, ``s - o - e``
        and ``s - e`` (Eq. 3); the window of live wavefronts therefore
        spans ``max(x, o + e, e)`` scores.
        """
        return max(self.mismatch, self.gap_open_total, self.gap_extend)


@dataclass(frozen=True)
class LinearPenalties:
    """Gap-linear penalties ``(x, g)`` as used by plain SW (Eq. 1)."""

    mismatch: int = 4
    gap: int = 2

    def __post_init__(self) -> None:
        if self.mismatch <= 0:
            raise ValueError(f"mismatch penalty must be > 0, got {self.mismatch}")
        if self.gap <= 0:
            raise ValueError(f"gap penalty must be > 0, got {self.gap}")

    def as_affine(self) -> AffinePenalties:
        """The equivalent gap-affine model with a zero opening surcharge."""
        return AffinePenalties(mismatch=self.mismatch, gap_open=0, gap_extend=self.gap)


#: The penalties used throughout the paper: ``(x, o, e) = (4, 6, 2)``.
DEFAULT_PENALTIES = AffinePenalties(mismatch=4, gap_open=6, gap_extend=2)
