"""Scalar WaveFront Alignment (WFA) — Eq. 3/4 of the paper.

This module is the software analog of the "WFA-CPU scalar code" [14] that
the paper uses as its baseline, and the algorithmic reference for the
WFAsic accelerator simulator.  It follows the paper's conventions exactly:

* offsets run along sequence ``b`` (the *text*): ``offset = j``,
* diagonals are ``k = j - i`` so ``i = offset - k`` (Eq. 4),
* wavefronts are *penalty-indexed*: ``M[s]``, ``I[s]`` and ``D[s]`` hold,
  per diagonal, the furthest offset reachable with penalty exactly ``s``,
* the recurrence is Eq. 3 (max-plus over predecessor wavefronts at
  ``s - x``, ``s - o - e`` and ``s - e``),
* the two operators are ``extend()`` (greedy match run along each
  diagonal) and ``compute()`` (next wavefront from the recurrence),
* termination: the ``M`` wavefront reaches cell ``(n, m)``, i.e. offset
  ``m`` on diagonal ``k = m - n``.

The aligner is instrumented with :class:`WfaWorkCounters` so the SoC CPU
cost model (``repro.soc.cpu``) can convert abstract work into cycles
without re-running a per-character Python loop on huge inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cigar import Cigar
from .penalties import AffinePenalties, DEFAULT_PENALTIES

__all__ = [
    "BYTES_PER_CELL",
    "NULL_OFFSET",
    "PROG_NULL",
    "Wavefront",
    "WfaWorkCounters",
    "WfaResult",
    "WfaAligner",
    "wfa_align",
    "wfa_score",
]

#: Sentinel for "no alignment reaches this diagonal with this penalty".
#: Far more negative than any valid offset, but with headroom so that the
#: ``+1`` updates of Eq. 3 can never wrap it into the valid range.
NULL_OFFSET = -(2**30)

#: Progress sentinel for dead cells in the band-recentering heuristic;
#: far below any reachable ``2 * offset - k`` so dead cells never win.
PROG_NULL = -(2**62)

#: Bytes per stored wavefront cell (int64 offsets) in the memory model
#: behind :attr:`WfaWorkCounters.peak_wavefront_bytes`.
BYTES_PER_CELL = 8


@dataclass
class Wavefront:
    """One wavefront vector: offsets for diagonals ``lo..hi`` inclusive.

    ``offsets[k - lo]`` is the furthest offset on diagonal ``k``;
    :data:`NULL_OFFSET` marks unreachable diagonals (the "invalid cells"
    that the hardware initialises to negative values, §4.3.1).
    """

    lo: int
    hi: int
    offsets: np.ndarray

    @classmethod
    def null(cls, lo: int, hi: int) -> "Wavefront":
        return cls(lo, hi, np.full(hi - lo + 1, NULL_OFFSET, dtype=np.int64))

    def get(self, k: int) -> int:
        """Offset on diagonal ``k`` (NULL_OFFSET outside ``lo..hi``)."""
        if self.lo <= k <= self.hi:
            return int(self.offsets[k - self.lo])
        return NULL_OFFSET

    def window(self, lo: int, hi: int) -> np.ndarray:
        """Offsets for diagonals ``lo..hi`` padded with NULL outside range."""
        out = np.full(hi - lo + 1, NULL_OFFSET, dtype=np.int64)
        src_lo = max(lo, self.lo)
        src_hi = min(hi, self.hi)
        if src_lo <= src_hi:
            out[src_lo - lo : src_hi - lo + 1] = self.offsets[
                src_lo - self.lo : src_hi - self.lo + 1
            ]
        return out

    @property
    def num_cells(self) -> int:
        return self.hi - self.lo + 1


@dataclass
class WfaWorkCounters:
    """Abstract work performed by one alignment.

    These counters are the contract between the algorithm and the CPU
    cycle-cost model: the model multiplies them by per-operation costs
    (see ``repro.soc.cpu``) instead of timing Python.
    """

    #: Score values attempted (including ones whose wavefront was empty).
    score_iterations: int = 0
    #: Wavefront steps that actually produced a wavefront.
    wavefront_steps: int = 0
    #: M/I/D cells computed by Eq. 3 (wavefront slots touched by compute).
    cells_computed: int = 0
    #: Character-vs-character comparisons performed by extend().
    extend_comparisons: int = 0
    #: Total matched characters credited by extend().
    extend_matches: int = 0
    #: Peak live wavefront width (diagonals), a memory-footprint proxy.
    peak_wavefront_width: int = 0
    #: Total wavefront cells allocated over the run (memory traffic proxy).
    cells_allocated: int = 0
    #: Live cells discarded by adaptive band pruning (0 on exact runs; 0
    #: also proves a banded result is bit-identical to the exact one).
    band_pruned_cells: int = 0
    #: Peak bytes of simultaneously *stored* wavefront cells (int64 each).
    #: This is the semantic memory model: with backtrace every stored
    #: generation counts until the run ends; without it, cells leave the
    #: model when they fall out of the recurrence window.
    peak_wavefront_bytes: int = 0

    def merge(self, other: "WfaWorkCounters") -> None:
        self.score_iterations += other.score_iterations
        self.wavefront_steps += other.wavefront_steps
        self.cells_computed += other.cells_computed
        self.extend_comparisons += other.extend_comparisons
        self.extend_matches += other.extend_matches
        self.peak_wavefront_width = max(
            self.peak_wavefront_width, other.peak_wavefront_width
        )
        self.cells_allocated += other.cells_allocated
        self.band_pruned_cells += other.band_pruned_cells
        self.peak_wavefront_bytes = max(
            self.peak_wavefront_bytes, other.peak_wavefront_bytes
        )


@dataclass(frozen=True)
class WfaResult:
    """Outcome of a WFA alignment.

    ``reached_end`` is always ``True`` on exact runs.  Under adaptive
    banding it is ``False`` when the band lost the optimal path and the
    run was abandoned (``score`` is then ``-1`` and ``cigar`` ``None``);
    callers must retry such pairs with an exact aligner.
    """

    score: int
    cigar: Cigar | None
    work: WfaWorkCounters = field(repr=False, default_factory=WfaWorkCounters)
    reached_end: bool = True


class WfaAligner:
    """Exact gap-affine WFA aligner (scalar reference implementation).

    Parameters
    ----------
    penalties:
        Gap-affine penalty set; defaults to the paper's ``(4, 6, 2)``.
    keep_backtrace:
        Store all wavefronts so a CIGAR can be reconstructed.  Disable for
        score-only runs on very long sequences (memory drops to the
        recurrence window, exactly like the hardware, §4.3.1).
    max_score:
        Abort threshold: if the alignment penalty would exceed this, the
        aligner raises :class:`ScoreLimitExceeded` — the software analog of
        the hardware's ``Score_max = k_max * 2 + 4`` bound (Eq. 6) that
        clears the Success flag.
    band_width:
        Adaptive wavefront band (Scrooge/ABSW direction): after every
        wavefront step, keep only ``band_width`` diagonals re-centered on
        the furthest-reaching cell, so peak memory is O(band x score)
        instead of O(length x score).  Results are bit-identical to exact
        WFA whenever the optimal path stays in band
        (``work.band_pruned_cells == 0`` is a sufficient witness); when
        the band loses the path the run ends with ``reached_end=False``
        instead of raising, and the caller retries exactly.
    """

    def __init__(
        self,
        penalties: AffinePenalties = DEFAULT_PENALTIES,
        *,
        keep_backtrace: bool = True,
        max_score: int | None = None,
        band_width: int | None = None,
    ) -> None:
        if band_width is not None and band_width < 1:
            raise ValueError(f"band_width must be >= 1, got {band_width}")
        self.penalties = penalties
        self.keep_backtrace = keep_backtrace
        self.max_score = max_score
        self.band_width = band_width

    # -- public API ----------------------------------------------------

    def align(self, a: str, b: str) -> WfaResult:
        """Align pattern ``a`` against text ``b`` end to end."""
        n, m = len(a), len(b)
        p = self.penalties
        work = WfaWorkCounters()

        av = np.frombuffer(a.encode("ascii"), dtype=np.uint8)
        bv = np.frombuffer(b.encode("ascii"), dtype=np.uint8)
        k_final = m - n

        # Wavefront stores, indexed by penalty score.
        M: dict[int, Wavefront] = {}
        I: dict[int, Wavefront] = {}
        D: dict[int, Wavefront] = {}

        # s = 0: single M cell at k = 0, offset 0, then extend.
        wf0 = Wavefront(0, 0, np.zeros(1, dtype=np.int64))
        self._extend(wf0, av, bv, work)
        M[0] = wf0
        work.cells_allocated += 1
        work.peak_wavefront_width = 1
        live_cells = 1
        work.peak_wavefront_bytes = BYTES_PER_CELL * live_cells
        if wf0.get(k_final) == m:
            cigar = self._backtrace(a, b, M, I, D, 0) if self.keep_backtrace else None
            return WfaResult(score=0, cigar=cigar, work=work)

        x, oe, e = p.mismatch, p.gap_open_total, p.gap_extend
        step = p.score_granularity
        ceiling = self.max_score
        span = p.max_window_span()
        hard_cap = 2 * p.gap_open + e * (n + m) + x  # no alignment can cost more

        s = 0
        last_live_s = 0
        while True:
            s += step
            if ceiling is not None and s > ceiling:
                raise ScoreLimitExceeded(s, ceiling, work)
            if s > hard_cap:
                if self.band_width is not None:
                    return WfaResult(score=-1, cigar=None, work=work, reached_end=False)
                raise AssertionError(
                    f"WFA failed to terminate below the hard score cap {hard_cap}"
                )
            work.score_iterations += 1

            # Once no wavefront exists inside the recurrence window, none
            # can ever appear again: the banded run is dead (the band lost
            # the optimal path and every survivor ran off the matrix).
            if self.band_width is not None and s - last_live_s > span:
                return WfaResult(score=-1, cigar=None, work=work, reached_end=False)

            if not self.keep_backtrace:
                live_cells -= self._evict(M, I, D, s, p)

            src_mx = M.get(s - x)
            src_moe = M.get(s - oe)
            src_ie = I.get(s - e)
            src_de = D.get(s - e)
            if src_mx is None and src_moe is None and src_ie is None and src_de is None:
                continue

            wf_m, wf_i, wf_d = self._compute(
                s, src_mx, src_moe, src_ie, src_de, n, m, work
            )
            if wf_m is None:
                continue
            self._extend(wf_m, av, bv, work)
            work.wavefront_steps += 1
            work.peak_wavefront_width = max(work.peak_wavefront_width, wf_m.num_cells)

            converged = wf_m.get(k_final) == m
            if (
                not converged
                and self.band_width is not None
                and wf_m.num_cells > self.band_width
            ):
                wf_m, wf_i, wf_d = self._prune_band(wf_m, wf_i, wf_d, work)

            M[s] = wf_m
            if wf_i is not None:
                I[s] = wf_i
            if wf_d is not None:
                D[s] = wf_d
            live_cells += wf_m.num_cells
            live_cells += wf_i.num_cells if wf_i is not None else 0
            live_cells += wf_d.num_cells if wf_d is not None else 0
            work.peak_wavefront_bytes = max(
                work.peak_wavefront_bytes, BYTES_PER_CELL * live_cells
            )
            last_live_s = s

            if converged:
                cigar = (
                    self._backtrace(a, b, M, I, D, s) if self.keep_backtrace else None
                )
                return WfaResult(score=s, cigar=cigar, work=work)

    # -- operators -----------------------------------------------------

    def _extend(
        self, wf: Wavefront, av: np.ndarray, bv: np.ndarray, work: WfaWorkCounters
    ) -> None:
        """extend(): greedy match run along every diagonal of ``wf``.

        The scalar model compares characters one by one (the hardware
        Extend sub-module compares 16-base blocks; that difference lives
        in the cycle model, not here — the *result* is identical).
        """
        n, m = len(av), len(bv)
        for idx in range(wf.num_cells):
            offset = int(wf.offsets[idx])
            if offset < 0:
                continue
            k = wf.lo + idx
            i = offset - k
            j = offset
            matches = 0
            while i < n and j < m and av[i] == bv[j]:
                matches += 1
                i += 1
                j += 1
            # One extra comparison discovers the mismatch/boundary, unless
            # the run was cut by a sequence end.
            work.extend_comparisons += matches + (1 if (i < n and j < m) else 0)
            work.extend_matches += matches
            wf.offsets[idx] = offset + matches

    def _compute(
        self,
        s: int,
        src_mx: Wavefront | None,
        src_moe: Wavefront | None,
        src_ie: Wavefront | None,
        src_de: Wavefront | None,
        n: int,
        m: int,
        work: WfaWorkCounters,
    ) -> tuple[Wavefront | None, Wavefront | None, Wavefront | None]:
        """compute(): next M/I/D wavefronts from Eq. 3.

        Out-of-bounds offsets (``j > m`` or ``i > n``) are nulled: both
        cursors are monotone along any alignment path, so a cell past a
        sequence end can never reach ``(n, m)`` and is dead.
        """
        lo = min(w.lo for w in (src_mx, src_moe, src_ie, src_de) if w is not None) - 1
        hi = max(w.hi for w in (src_mx, src_moe, src_ie, src_de) if w is not None) + 1
        # Diagonals outside [-n, m] cannot hold any cell of the DP matrix.
        lo = max(lo, -n)
        hi = min(hi, m)
        if lo > hi:
            return None, None, None
        width = hi - lo + 1
        ks = np.arange(lo, hi + 1, dtype=np.int64)

        def win(w: Wavefront | None, shift: int) -> np.ndarray:
            if w is None:
                return np.full(width, NULL_OFFSET, dtype=np.int64)
            return w.window(lo + shift, hi + shift)

        m_oe_km1 = win(src_moe, -1)  # M[s-o-e, k-1]
        i_e_km1 = win(src_ie, -1)  # I[s-e, k-1]
        m_oe_kp1 = win(src_moe, +1)  # M[s-o-e, k+1]
        d_e_kp1 = win(src_de, +1)  # D[s-e, k+1]
        m_x_k = win(src_mx, 0)  # M[s-x, k]

        ins = np.maximum(m_oe_km1, i_e_km1) + 1
        dele = np.maximum(m_oe_kp1, d_e_kp1)
        sub = m_x_k + 1

        # Null dead cells *before* merging into M: offset beyond text end,
        # i = offset - k beyond pattern end, or no live source (negative).
        # A dead candidate must not shadow a live one in the max below.
        for arr in (ins, dele, sub):
            dead = (arr > m) | (arr - ks > n) | (arr < 0)
            arr[dead] = NULL_OFFSET

        mwf = np.maximum(np.maximum(ins, dele), sub)

        work.cells_computed += 3 * width
        work.cells_allocated += 3 * width

        # M dominates I and D cell-wise (Eq. 3 takes the max over them), so
        # an empty M wavefront implies I and D are empty too.
        if not (mwf >= 0).any():
            return None, None, None

        wf_m = Wavefront(lo, hi, mwf)
        wf_i = Wavefront(lo, hi, ins) if (ins >= 0).any() else None
        wf_d = Wavefront(lo, hi, dele) if (dele >= 0).any() else None
        return wf_m, wf_i, wf_d

    def _prune_band(
        self,
        wf_m: Wavefront,
        wf_i: Wavefront | None,
        wf_d: Wavefront | None,
        work: WfaWorkCounters,
    ) -> tuple[Wavefront, Wavefront | None, Wavefront | None]:
        """Trim M/I/D to ``band_width`` diagonals around the best cell.

        "Best" is the cell with the largest anti-diagonal progress
        ``i + j = 2 * offset - k`` (ABSW's re-centering heuristic applied
        to wavefront diagonals); ties resolve to the lowest diagonal.  All
        three matrices share one window so the recurrence stays coherent.
        Discarded *live* cells are tallied in ``band_pruned_cells``.
        """
        bw = self.band_width
        assert bw is not None
        lo, hi = wf_m.lo, wf_m.hi
        ks = np.arange(lo, hi + 1, dtype=np.int64)
        prog = np.where(wf_m.offsets >= 0, 2 * wf_m.offsets - ks, PROG_NULL)
        center = lo + int(np.argmax(prog))
        blo = max(lo, min(center - bw // 2, hi - bw + 1))
        bhi = blo + bw - 1

        def trim(wf: Wavefront | None) -> Wavefront | None:
            if wf is None:
                return None
            work.band_pruned_cells += int(
                ((wf.offsets >= 0) & ((ks < blo) | (ks > bhi))).sum()
            )
            window = wf.offsets[blo - lo : bhi - lo + 1].copy()
            if not (window >= 0).any():
                return None
            return Wavefront(blo, bhi, window)

        new_m = trim(wf_m)
        assert new_m is not None  # the max-progress cell is inside the band
        return new_m, trim(wf_i), trim(wf_d)

    def _evict(
        self,
        M: dict[int, Wavefront],
        I: dict[int, Wavefront],
        D: dict[int, Wavefront],
        s: int,
        p: AffinePenalties,
    ) -> int:
        """Drop wavefronts older than the recurrence window (score-only).

        Returns the number of cells evicted so the caller can keep the
        live-byte accounting behind ``peak_wavefront_bytes`` exact.
        """
        horizon = s - p.max_window_span()
        evicted = 0
        for store in (M, I, D):
            dead = [key for key in store if key < horizon]
            for key in dead:
                evicted += store[key].num_cells
                del store[key]
        return evicted

    # -- backtrace -------------------------------------------------------

    def _backtrace(
        self,
        a: str,
        b: str,
        M: dict[int, Wavefront],
        I: dict[int, Wavefront],
        D: dict[int, Wavefront],
        score: int,
    ) -> Cigar:
        return backtrace_wavefronts(a, b, M, I, D, score, self.penalties)


def backtrace_wavefronts(
    a: str,
    b: str,
    M: dict[int, Wavefront],
    I: dict[int, Wavefront],
    D: dict[int, Wavefront],
    score: int,
    penalties: AffinePenalties,
) -> Cigar:
    """backtrace(): walk Eq. 3 backwards from ``(n, m)`` to ``(0, 0)``.

    At each M cell the pre-extension value is re-derived from the
    predecessor wavefronts; the difference to the stored (post-extension)
    value is the number of matches contributed by extend().  Shared by the
    scalar and vectorized software aligners (the hardware path instead
    streams 5-bit origin codes and leaves the walk to the CPU model).
    """
    p = penalties
    x, oe, e = p.mismatch, p.gap_open_total, p.gap_extend
    n, m = len(a), len(b)

    ops: list[str] = []
    matrix = "M"
    s = score
    k = m - n
    v = m

    def mget(score_: int, k_: int) -> int:
        wf = M.get(score_)
        return wf.get(k_) if wf is not None else NULL_OFFSET

    def iget(score_: int, k_: int) -> int:
        wf = I.get(score_)
        return wf.get(k_) if wf is not None else NULL_OFFSET

    def dget(score_: int, k_: int) -> int:
        wf = D.get(score_)
        return wf.get(k_) if wf is not None else NULL_OFFSET

    while True:
        if matrix == "M":
            if s == 0:
                # Initial wavefront: v remaining characters are matches.
                ops.append("M" * v)
                if k != 0:
                    raise AssertionError("backtrace ended off diagonal 0")
                break
            sub = mget(s - x, k) + 1
            ins = iget(s, k)
            dele = dget(s, k)
            v0 = max(sub, ins, dele)
            if v0 < 0:
                raise AssertionError(
                    f"backtrace found no live source for M[{s},{k}]={v}"
                )
            if v0 > v:
                raise AssertionError(
                    f"inconsistent backtrace at M[{s},{k}]: {v0} > {v}"
                )
            ops.append("M" * (v - v0))
            v = v0
            # Valid offsets are always >= 0; a NULL source shifted by +1
            # stays hugely negative, so >= 0 is the validity test.
            if v == sub and sub >= 0:
                ops.append("X")
                s -= x
                v -= 1
            elif v == ins and ins >= 0:
                matrix = "I"
            elif v == dele and dele >= 0:
                matrix = "D"
            else:
                raise AssertionError(f"backtrace stuck at M[{s},{k}]={v}")
        elif matrix == "I":
            open_src = mget(s - oe, k - 1) + 1
            ext_src = iget(s - e, k - 1) + 1
            ops.append("I")
            if v == ext_src and ext_src >= 0:
                s -= e
            elif v == open_src and open_src >= 0:
                s -= oe
                matrix = "M"
            else:
                raise AssertionError(f"backtrace stuck at I[{s},{k}]={v}")
            k -= 1
            v -= 1
        else:  # matrix == "D"
            open_src = mget(s - oe, k + 1)
            ext_src = dget(s - e, k + 1)
            ops.append("D")
            if v == ext_src and ext_src >= 0:
                s -= e
            elif v == open_src and open_src >= 0:
                s -= oe
                matrix = "M"
            else:
                raise AssertionError(f"backtrace stuck at D[{s},{k}]={v}")
            k += 1

    return Cigar("".join(reversed(ops)))


class ScoreLimitExceeded(RuntimeError):
    """Alignment penalty exceeded the configured ceiling (Eq. 6 analog)."""

    def __init__(self, score: int, limit: int, work: WfaWorkCounters) -> None:
        super().__init__(f"alignment score passed the limit ({score} > {limit})")
        self.score = score
        self.limit = limit
        self.work = work


def wfa_align(
    a: str, b: str, penalties: AffinePenalties = DEFAULT_PENALTIES
) -> WfaResult:
    """One-shot WFA alignment with backtrace."""
    return WfaAligner(penalties).align(a, b)


def wfa_score(a: str, b: str, penalties: AffinePenalties = DEFAULT_PENALTIES) -> int:
    """One-shot WFA score (low-memory, no backtrace)."""
    return WfaAligner(penalties, keep_backtrace=False).align(a, b).score
