"""The reachable-score lattice and theoretical wavefront bounds.

Section 4.3.1 of the paper observes that "only for some scores wavefront
vectors are generated, i.e., 0, 4, 8, 10, 12, 14, and so on" (for the
default penalties ``(4, 6, 2)``), and that "the corresponding score of a
column identifies the valid cells of that column".  Both facts are
*data-independent*: which scores can occur, and how wide the wavefront can
possibly be at each score, follow from the penalties alone.

The hardware exploits this determinism twice:

* the Aligner only spends cycles on the valid cells of each frame column,
  so the cycle model needs the theoretical ``lo..hi`` per score, and
* the CPU backtrace code must parse the backtrace stream without any
  side-channel, which is only possible because the per-step block layout
  (score sequence and cell counts) is reproducible from the penalties and
  ``k_max``.

This module provides that shared ground truth.  Existence/bounds follow
the same recurrences as Eq. 3:

* ``I`` exists at ``s`` iff ``M`` exists at ``s - o - e`` or ``I`` at
  ``s - e``; its band is the source band shifted up by one diagonal.
* ``D`` symmetric, shifted down by one diagonal.
* ``M`` exists at ``s`` iff ``s = 0``, ``M`` exists at ``s - x``, or
  ``I``/``D`` exist at ``s``; its band is the envelope of its sources.
"""

from __future__ import annotations

from dataclasses import dataclass

from .penalties import AffinePenalties

__all__ = ["Band", "ScoreLattice"]


@dataclass(frozen=True)
class Band:
    """An inclusive diagonal range ``lo..hi``; ``None`` bounds never occur."""

    lo: int
    hi: int

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def shifted(self, delta: int) -> "Band":
        return Band(self.lo + delta, self.hi + delta)

    def union(self, other: "Band | None") -> "Band":
        if other is None:
            return self
        return Band(min(self.lo, other.lo), max(self.hi, other.hi))

    def clamped(self, lo: int, hi: int) -> "Band | None":
        """Intersect with ``lo..hi``; ``None`` if empty."""
        new_lo = max(self.lo, lo)
        new_hi = min(self.hi, hi)
        if new_lo > new_hi:
            return None
        return Band(new_lo, new_hi)


class ScoreLattice:
    """Lazy memoised map from score to theoretical M/I/D wavefront bands.

    ``bands(s)`` returns ``(m_band, i_band, d_band)`` where each entry is a
    :class:`Band` or ``None`` if no wavefront of that type can exist at
    score ``s``.  Scores are unclamped (no ``k_max`` or sequence-length
    limit); callers clamp to their own geometry.
    """

    def __init__(self, penalties: AffinePenalties) -> None:
        self.penalties = penalties
        self._m: dict[int, Band | None] = {0: Band(0, 0)}
        self._i: dict[int, Band | None] = {0: None}
        self._d: dict[int, Band | None] = {0: None}

    # -- queries ---------------------------------------------------------

    def m_band(self, s: int) -> Band | None:
        return self._resolve(s)[0]

    def i_band(self, s: int) -> Band | None:
        return self._resolve(s)[1]

    def d_band(self, s: int) -> Band | None:
        return self._resolve(s)[2]

    def bands(self, s: int) -> tuple[Band | None, Band | None, Band | None]:
        return self._resolve(s)

    def exists(self, s: int) -> bool:
        """Whether any wavefront (equivalently the M wavefront) exists."""
        return self.m_band(s) is not None

    def scores_through(self, s_max: int) -> list[int]:
        """All scores ``0..s_max`` (inclusive) at which wavefronts exist."""
        g = self.penalties.score_granularity
        return [s for s in range(0, s_max + 1, g) if self.exists(s)]

    # -- internals ---------------------------------------------------------

    def _resolve(self, s: int) -> tuple[Band | None, Band | None, Band | None]:
        if s < 0:
            return None, None, None
        if s in self._m:
            return self._m[s], self._i[s], self._d[s]
        p = self.penalties
        # Resolve predecessors iteratively (recursion would overflow the
        # Python stack at 10 kbp scores).
        pending = [s]
        while pending:
            cur = pending[-1]
            if cur in self._m or cur < 0:
                pending.pop()
                continue
            deps = (cur - p.mismatch, cur - p.gap_open_total, cur - p.gap_extend)
            missing = [d for d in deps if d >= 0 and d not in self._m]
            if missing:
                pending.extend(missing)
                continue
            pending.pop()
            self._fill(cur)
        return self._m[s], self._i[s], self._d[s]

    def _get(self, store: dict[int, Band | None], s: int) -> Band | None:
        if s < 0:
            return None
        return store.get(s)

    def _fill(self, s: int) -> None:
        p = self.penalties
        m_oe = self._get(self._m, s - p.gap_open_total)
        i_e = self._get(self._i, s - p.gap_extend)
        d_e = self._get(self._d, s - p.gap_extend)
        m_x = self._get(self._m, s - p.mismatch)

        i_src = m_oe.union(i_e) if m_oe is not None else i_e
        i_band = i_src.shifted(+1) if i_src is not None else None
        d_src = m_oe.union(d_e) if m_oe is not None else d_e
        d_band = d_src.shifted(-1) if d_src is not None else None

        m_band: Band | None
        if m_x is not None:
            m_band = m_x
        else:
            m_band = None
        for extra in (i_band, d_band):
            if extra is not None:
                m_band = extra.union(m_band) if m_band is not None else extra

        self._m[s] = m_band
        self._i[s] = i_band
        self._d[s] = d_band
