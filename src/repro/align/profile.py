"""Per-stage profiling for the alignment hot path.

The batched aligner and the batch engine both run a small number of
well-defined stages per request (pack, compute, extend, backtrace,
dispatch/IPC, gather).  :class:`StageProfiler` accumulates wall-time and
call counts per stage with close to zero overhead, survives a pickle
round-trip as a plain dict (workers send their counters back with each
chunk), and merges across processes.

The profiler is deliberately dumb: no nesting, no thread-safety, no
sampling.  One instance per aligner/batch, timed with
``time.perf_counter``, merged into the engine's :class:`BatchReport`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["StageStats", "StageProfiler", "format_profile"]


@dataclass
class StageStats:
    """Accumulated cost of one stage: how often, and for how long."""

    calls: int = 0
    seconds: float = 0.0

    def add(self, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` of wall-time over ``calls`` invocations."""
        self.calls += calls
        self.seconds += seconds


class StageProfiler:
    """Wall-time and call counters keyed by stage name."""

    def __init__(self) -> None:
        self.stages: dict[str, StageStats] = {}

    def _stats(self, name: str) -> StageStats:
        stats = self.stages.get(name)
        if stats is None:
            stats = self.stages[name] = StageStats()
        return stats

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block: ``with prof.stage("compute"): ...``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._stats(name).add(time.perf_counter() - start)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds``/``calls`` to a stage directly."""
        self._stats(name).add(seconds, calls)

    def count(self, name: str, calls: int = 1) -> None:
        """Bump a pure counter (a stage with no meaningful wall-time)."""
        self._stats(name).add(0.0, calls)

    def merge(self, other: "StageProfiler | dict | None") -> None:
        """Fold another profiler (or its :meth:`as_dict` form) into this one."""
        if other is None:
            return
        items = (
            other.stages.items()
            if isinstance(other, StageProfiler)
            else other.items()
        )
        for name, stats in items:
            if isinstance(stats, StageStats):
                self._stats(name).add(stats.seconds, stats.calls)
            else:
                self._stats(name).add(stats["seconds"], stats["calls"])

    @property
    def total_seconds(self) -> float:
        """Wall-time summed over every stage."""
        return sum(s.seconds for s in self.stages.values())

    def publish(
        self,
        registry: Any,
        prefix: str = "engine",
        labels: dict | None = None,
    ) -> None:
        """Publish the accumulated stages to a metrics registry.

        Emits ``{prefix}_stage_seconds_total{stage=...}`` and
        ``{prefix}_stage_calls_total{stage=...}`` counters on
        ``registry`` (a :class:`repro.obs.metrics.MetricsRegistry`,
        duck-typed so this low-level module imports nothing from
        ``repro.obs``).  The profiler's own counters are untouched —
        publishing is additive, which is what keeps
        :meth:`as_dict`/``BatchReport.profile`` bit-identical to the
        pre-registry behaviour (the differential test's invariant).
        """
        seconds = registry.counter(
            f"{prefix}_stage_seconds_total", "Wall-time per stage"
        )
        calls = registry.counter(
            f"{prefix}_stage_calls_total", "Invocations per stage"
        )
        for name, stats in self.stages.items():
            stage_labels = {"stage": name, **(labels or {})}
            seconds.inc(stats.seconds, stage_labels)
            calls.inc(stats.calls, stage_labels)

    def as_dict(self) -> dict[str, dict]:
        """Picklable/JSON view: ``{stage: {"calls": n, "seconds": t}}``."""
        return {
            name: {"calls": stats.calls, "seconds": stats.seconds}
            for name, stats in sorted(self.stages.items())
        }


def format_profile(profile: dict[str, dict]) -> str:
    """Human-readable table of an :meth:`StageProfiler.as_dict` payload.

    Stages are sorted by descending wall-time; pure counters (zero
    seconds) sink to the bottom and show ``-`` in the time columns.
    """
    if not profile:
        return "profile: (no stages recorded)"
    total = sum(entry["seconds"] for entry in profile.values())
    rows = sorted(
        profile.items(), key=lambda kv: (-kv[1]["seconds"], kv[0])
    )
    lines = [f"{'stage':<14} {'calls':>8} {'seconds':>9} {'share':>6}"]
    for name, entry in rows:
        calls, seconds = entry["calls"], entry["seconds"]
        if seconds > 0.0:
            share = f"{seconds / total:.0%}" if total else "-"
            lines.append(f"{name:<14} {calls:>8} {seconds:>9.4f} {share:>6}")
        else:
            lines.append(f"{name:<14} {calls:>8} {'-':>9} {'-':>6}")
    lines.append(f"{'total':<14} {'':>8} {total:>9.4f} {'100%':>6}")
    return "\n".join(lines)
