"""Adaptive banded Smith-Waterman-Gotoh — the heuristic comparator.

The related work the paper positions against (§6) accelerates *heuristic*
seed extension: ABSW [13] and Darwin's GACT [20] compute only a moving
band/tile of the DP matrix, trading guaranteed optimality for bounded
work.  To let the repository quantify the paper's central claim — that
WFAsic is exact *and* fast — this module implements the classic adaptive
band heuristic:

* per DP row, only a window of ``band_width`` diagonals is computed;
* after each row the window re-centres on the best (lowest-penalty) cell
  of the row, following the alignment as it drifts off the main diagonal;
* cells outside the window are treated as unreachable.

The result is a *valid* alignment score (achievable by some alignment,
hence an upper bound on the optimum) that equals the optimum whenever the
optimal path stays within the band — and silently degrades otherwise,
which is exactly the accuracy risk §6 attributes to heuristic designs
("may compromise the accuracy of the results").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .penalties import AffinePenalties, DEFAULT_PENALTIES

__all__ = ["BandedResult", "banded_swg_score"]

_INF = np.int64(2**31)


@dataclass(frozen=True)
class BandedResult:
    """Outcome of a banded heuristic alignment."""

    score: int
    #: DP cells actually computed (the heuristic's work metric).
    cells_computed: int
    #: Whether the final cell was inside the band (a score exists at all).
    reached_end: bool


def banded_swg_score(
    a: str,
    b: str,
    band_width: int = 64,
    penalties: AffinePenalties = DEFAULT_PENALTIES,
) -> BandedResult:
    """Gap-affine alignment penalty under an adaptive band heuristic.

    ``band_width`` is the number of diagonals kept per row (ABSW-style).
    Returns the end-to-end penalty found within the band; when the band
    drifts away from the optimum the returned score is an upper bound.
    """
    if band_width < 1:
        raise ValueError("band_width must be >= 1")
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        cost = penalties.gap_cost(max(n, m))
        return BandedResult(score=cost, cells_computed=0, reached_end=True)

    x = penalties.mismatch
    oe = penalties.gap_open_total
    e = penalties.gap_extend
    bv = np.frombuffer(b.encode("ascii"), dtype=np.uint8)

    # Row 0: one long insertion; the band starts at column 0.
    lo = 0
    hi = min(m, band_width)
    width = hi - lo + 1
    prev_m = np.full(width, _INF, dtype=np.int64)
    prev_i = np.full(width, _INF, dtype=np.int64)
    prev_d = np.full(width, _INF, dtype=np.int64)
    prev_m[0] = 0
    for j in range(1, width):
        prev_i[j] = penalties.gap_open + e * (lo + j)
        prev_m[j] = prev_i[j]
    prev_lo = lo
    cells = width

    for i in range(1, n + 1):
        # Re-centre the band on the previous row's best cell.
        best_j = prev_lo + int(np.argmin(prev_m))
        lo = max(0, min(best_j - band_width // 2, m - band_width + 1))
        hi = min(m, lo + band_width - 1)
        width = hi - lo + 1
        cur_m = np.full(width, _INF, dtype=np.int64)
        cur_i = np.full(width, _INF, dtype=np.int64)
        cur_d = np.full(width, _INF, dtype=np.int64)

        def prev_at(arr: np.ndarray, j: int) -> int:
            idx = j - prev_lo
            if 0 <= idx < len(arr):
                return int(arr[idx])
            return int(_INF)

        ai = ord(a[i - 1])
        for t in range(width):
            j = lo + t
            # Deletion (vertical, from row i-1 same column).
            dele = min(prev_at(prev_m, j) + oe, prev_at(prev_d, j) + e)
            cur_d[t] = dele
            if j == 0:
                # Column 0: pure deletion boundary.
                boundary = penalties.gap_open + e * i
                cur_d[t] = min(cur_d[t], boundary)
                cur_m[t] = cur_d[t]
                continue
            # Insertion (horizontal, from this row's previous column).
            if t > 0:
                ins = min(int(cur_m[t - 1]) + oe, int(cur_i[t - 1]) + e)
            else:
                ins = int(_INF)
            cur_i[t] = ins
            # Substitution (diagonal, from row i-1 column j-1).
            sub_cost = 0 if ai == bv[j - 1] else x
            diag = prev_at(prev_m, j - 1)
            best = min(diag + sub_cost if diag < _INF else int(_INF), ins, int(cur_d[t]))
            cur_m[t] = best
        cells += width
        prev_m, prev_i, prev_d = cur_m, cur_i, cur_d
        prev_lo = lo

    final_idx = m - prev_lo
    if 0 <= final_idx < len(prev_m) and prev_m[final_idx] < _INF:
        return BandedResult(
            score=int(prev_m[final_idx]), cells_computed=cells, reached_end=True
        )
    return BandedResult(score=int(_INF), cells_computed=cells, reached_end=False)
