"""Gap-linear dynamic-programming alignment (Eq. 1 of the paper).

This is the classic single-matrix formulation where every gap character
costs the same penalty ``g`` regardless of position in a gap run.  It is
included as background substrate (Section 2.2 of the paper) and as a
cross-check: with ``o = 0`` the gap-affine oracle must agree with it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cigar import Cigar
from .penalties import LinearPenalties

__all__ = ["SwLinearResult", "sw_linear_align", "sw_linear_score"]

_INF = np.int64(2**31)


@dataclass(frozen=True)
class SwLinearResult:
    """Outcome of a gap-linear DP alignment."""

    score: int
    cigar: Cigar


def _matrix(a: str, b: str, penalties: LinearPenalties) -> np.ndarray:
    n, m = len(a), len(b)
    g = penalties.gap
    x = penalties.mismatch
    H = np.full((n + 1, m + 1), _INF, dtype=np.int64)
    H[0, :] = g * np.arange(m + 1, dtype=np.int64)
    H[:, 0] = g * np.arange(n + 1, dtype=np.int64)
    if n == 0 or m == 0:
        return H
    bv = np.frombuffer(b.encode("ascii"), dtype=np.uint8)
    for i in range(1, n + 1):
        sub = np.where(ord(a[i - 1]) == bv, 0, x)
        diag = H[i - 1, :-1] + sub
        up = H[i - 1, 1:] + g
        row = H[i]
        prev = row[0]
        for j in range(1, m + 1):
            best = min(diag[j - 1], up[j - 1], prev + g)
            row[j] = best
            prev = best
    return H


def sw_linear_score(a: str, b: str, penalties: LinearPenalties = LinearPenalties()) -> int:
    """Optimal gap-linear penalty of aligning ``a`` against ``b``."""
    return int(_matrix(a, b, penalties)[len(a), len(b)])


def sw_linear_align(
    a: str, b: str, penalties: LinearPenalties = LinearPenalties()
) -> SwLinearResult:
    """Optimal gap-linear alignment with backtrace (Eq. 1 + direction walk)."""
    n, m = len(a), len(b)
    H = _matrix(a, b, penalties)
    g = penalties.gap
    x = penalties.mismatch

    ops: list[str] = []
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            sub = 0 if a[i - 1] == b[j - 1] else x
            if H[i, j] == H[i - 1, j - 1] + sub:
                ops.append("M" if sub == 0 else "X")
                i -= 1
                j -= 1
                continue
        if j > 0 and H[i, j] == H[i, j - 1] + g:
            ops.append("I")
            j -= 1
            continue
        if i > 0 and H[i, j] == H[i - 1, j] + g:
            ops.append("D")
            i -= 1
            continue
        raise AssertionError(f"backtrace stuck at ({i}, {j})")

    return SwLinearResult(score=int(H[n, m]), cigar=Cigar("".join(reversed(ops))))
