"""Alignment-algorithm substrate: scoring models, DP oracles, and WFA.

Public surface:

* :class:`AffinePenalties` / :class:`LinearPenalties` — scoring models.
* :class:`Cigar` — alignment backtraces.
* :func:`swg_align` — gap-affine DP oracle (Eq. 2).
* :func:`sw_linear_align` — gap-linear DP (Eq. 1).
* :func:`wfa_align` / :class:`WfaAligner` — scalar WFA (Eq. 3/4).
* :func:`wfa_align_vectorized` / :class:`VectorizedWfaAligner` — numpy WFA.
* :func:`wfa_align_batched` / :class:`BatchedWfaAligner` — cross-pair
  batched WFA: N pairs' wavefronts advanced in lockstep per numpy call.
* :class:`PackCache` — per-sequence packing cache for the batched path.
* :class:`SequenceArena` / :class:`SequenceDescriptor` / :class:`ResultRing`
  — shared-memory arenas and descriptors for the zero-copy dispatch path.
* :class:`StageProfiler` — per-stage wall-time/call counters.
* :class:`ScoreLattice` — reachable scores and theoretical wavefront bands.
"""

from .arena import (
    ResultRing,
    SequenceArena,
    SequenceDescriptor,
    decode_descriptor,
    encode_descriptor,
    leaked_segments,
    pack_bits,
    read_sequence,
    unpack_bits,
)
from .banded import BandedResult, banded_swg_score
from .cigar import Cigar, CigarError
from .lattice import Band, ScoreLattice
from .packing import PackCache, pack_batch
from .penalties import DEFAULT_PENALTIES, AffinePenalties, LinearPenalties
from .profile import StageProfiler, format_profile
from .swg import SwgResult, swg_align, swg_score
from .swlinear import SwLinearResult, sw_linear_align, sw_linear_score
from .wfa import (
    NULL_OFFSET,
    ScoreLimitExceeded,
    Wavefront,
    WfaAligner,
    WfaResult,
    WfaWorkCounters,
    wfa_align,
    wfa_score,
)
from .wfa_batched import BatchedWfaAligner, wfa_align_batched
from .wfa_vectorized import VectorizedWfaAligner, wfa_align_vectorized

__all__ = [
    "AffinePenalties",
    "BandedResult",
    "Band",
    "BatchedWfaAligner",
    "Cigar",
    "CigarError",
    "DEFAULT_PENALTIES",
    "LinearPenalties",
    "NULL_OFFSET",
    "PackCache",
    "ResultRing",
    "ScoreLattice",
    "ScoreLimitExceeded",
    "SequenceArena",
    "SequenceDescriptor",
    "StageProfiler",
    "SwLinearResult",
    "SwgResult",
    "VectorizedWfaAligner",
    "Wavefront",
    "WfaAligner",
    "WfaResult",
    "WfaWorkCounters",
    "banded_swg_score",
    "decode_descriptor",
    "encode_descriptor",
    "format_profile",
    "leaked_segments",
    "pack_batch",
    "pack_bits",
    "read_sequence",
    "unpack_bits",
    "sw_linear_align",
    "sw_linear_score",
    "swg_align",
    "swg_score",
    "wfa_align",
    "wfa_align_batched",
    "wfa_align_vectorized",
    "wfa_score",
]
