"""Capacity planning: invert the fleet model under area/power budgets.

The forward direction (scheduler + DSE sweep) answers "what does this
fleet deliver?"; the planner answers the operator's question — *"I need
X pairs/s within Y mm² and Z watts: how many chips, in what
configuration?"* — by searching chip counts ascending and configurations
by predicted rate:

1. **Candidates** — configurations enumerated by
   :func:`repro.wfasic.asic_model.configs_within_budget` (or supplied by
   the caller), each rated by simulating a *single* chip on the target
   workload.  Configurations that cannot serve the workload at all
   (reads longer than ``max_read_len``, or any failed pair) are dropped.
2. **Selection** — :func:`select_plan`, a pure function over
   ``(rate, area, power)`` triples: the minimal chip count at which some
   candidate meets the target rate inside both budgets, ties broken by
   total area then total power.  Predicted fleet rate is
   ``chips x single-chip rate x derate`` — the derate (default 0.9)
   charges for scheduling imbalance ahead of time.
3. **Verification** — the selected fleet is *actually simulated* on the
   workload.  If the simulation misses the target the search resumes at
   the next chip count, so a returned feasible plan is always backed by
   a simulated run that meets the rate within the budgets.

``select_plan`` is deliberately simulation-free so its invariants (a
returned plan satisfies every budget; no smaller chip count admits any
feasible candidate) are property-testable in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..wfasic.asic_model import asic_report, configs_within_budget
from ..wfasic.config import WfasicConfig
from ..workloads.datasets import make_input_set
from ..workloads.generator import SequencePair
from .scheduler import FleetConfig, FleetResult, FleetScheduler

__all__ = [
    "FleetBudget",
    "PlanCandidate",
    "SelectedPlan",
    "select_plan",
    "CapacityPlan",
    "rate_candidates",
    "plan_capacity",
]

#: Predicted-rate safety factor: the planner only promises this fraction
#: of linear scaling, charging for scheduling imbalance ahead of time.
DEFAULT_DERATE = 0.9


@dataclass(frozen=True)
class FleetBudget:
    """The operator's question: a target rate inside physical budgets."""

    #: Required throughput on the target workload.
    pairs_per_sec: float
    #: Total silicon budget (mm²), or ``None`` for unconstrained.
    area_mm2: float | None = None
    #: Total power budget (W), or ``None`` for unconstrained.
    power_w: float | None = None
    #: Whether the area budget covers one Sargantana host per chip
    #: (the ~3 mm² SoC of §1) or the bare accelerator silicon.
    include_host: bool = True

    def __post_init__(self) -> None:
        if self.pairs_per_sec <= 0:
            raise ValueError("pairs_per_sec must be > 0")
        if self.area_mm2 is not None and self.area_mm2 <= 0:
            raise ValueError("area_mm2 must be > 0 (or None)")
        if self.power_w is not None and self.power_w <= 0:
            raise ValueError("power_w must be > 0 (or None)")


@dataclass(frozen=True)
class PlanCandidate:
    """One configuration rated for planning: per-chip rate and physicals."""

    config: WfasicConfig
    #: Simulated single-chip throughput on the target workload.
    rate_pairs_per_sec: float
    #: Per-chip area under the budget's host convention.
    area_mm2: float
    #: Per-chip accelerator power.
    power_w: float


@dataclass(frozen=True)
class SelectedPlan:
    """A budget-feasible selection (prediction only, not yet simulated)."""

    candidate: PlanCandidate
    chips: int
    predicted_rate: float
    total_area_mm2: float
    total_power_w: float


def select_plan(
    candidates: list[PlanCandidate],
    budget: FleetBudget,
    *,
    min_chips: int = 1,
    max_chips: int = 64,
    derate: float = DEFAULT_DERATE,
) -> SelectedPlan | None:
    """The pure selection core: minimal chip count meeting the budget.

    Scans chip counts from ``min_chips`` to ``max_chips``; at the first
    count where any candidate's predicted fleet rate
    (``chips x rate x derate``) reaches the target inside both budgets,
    returns the feasible candidate with the smallest total area (then
    total power, then the candidate's listed order).  ``None`` when no
    count admits a feasible candidate.
    """
    if min_chips < 1:
        raise ValueError("min_chips must be >= 1")
    if not 0 < derate <= 1:
        raise ValueError("derate must be in (0, 1]")
    for chips in range(min_chips, max_chips + 1):
        feasible: list[tuple[float, float, int, SelectedPlan]] = []
        for order, cand in enumerate(candidates):
            area = chips * cand.area_mm2
            power = chips * cand.power_w
            if budget.area_mm2 is not None and area > budget.area_mm2:
                continue
            if budget.power_w is not None and power > budget.power_w:
                continue
            rate = chips * cand.rate_pairs_per_sec * derate
            if rate < budget.pairs_per_sec:
                continue
            feasible.append(
                (area, power, order,
                 SelectedPlan(cand, chips, rate, area, power))
            )
        if feasible:
            return min(feasible, key=lambda row: row[:3])[3]
    return None


@dataclass
class CapacityPlan:
    """The planner's answer, backed by a simulated verification run."""

    feasible: bool
    budget: FleetBudget
    chips: int
    config: WfasicConfig | None
    predicted_pairs_per_second: float
    simulated_pairs_per_second: float
    total_area_mm2: float
    total_power_w: float
    candidates_considered: int
    workload: str
    num_pairs: int
    result: FleetResult | None

    def as_dict(self) -> dict:
        """JSON-ready plan document (the CLI ``-o`` payload)."""
        return {
            "kind": "fleet_plan",
            "feasible": self.feasible,
            "budget": {
                "pairs_per_sec": self.budget.pairs_per_sec,
                "area_mm2": self.budget.area_mm2,
                "power_w": self.budget.power_w,
                "include_host": self.budget.include_host,
            },
            "chips": self.chips,
            "config": None if self.config is None else {
                "num_aligners": self.config.num_aligners,
                "parallel_sections": self.config.parallel_sections,
                "k_max": self.config.k_max,
                "max_read_len": self.config.max_read_len,
            },
            "predicted_pairs_per_second": self.predicted_pairs_per_second,
            "simulated_pairs_per_second": self.simulated_pairs_per_second,
            "total_area_mm2": self.total_area_mm2,
            "total_power_w": self.total_power_w,
            "candidates_considered": self.candidates_considered,
            "workload": self.workload,
            "num_pairs": self.num_pairs,
            "fleet": None if self.result is None else self.result.as_dict(),
        }

    def describe(self) -> str:
        """Human-readable plan summary (the CLI's stdout block)."""
        b = self.budget
        budget_bits = [f"{b.pairs_per_sec:,.0f} pairs/s"]
        if b.area_mm2 is not None:
            host = "SoC" if b.include_host else "accelerator"
            budget_bits.append(f"<= {b.area_mm2:g} mm2 {host}")
        if b.power_w is not None:
            budget_bits.append(f"<= {b.power_w:g} W")
        lines = [f"budget: {', '.join(budget_bits)} on {self.workload} "
                 f"({self.num_pairs} pairs)"]
        if not self.feasible or self.config is None:
            lines.append(
                f"INFEASIBLE: no configuration meets the target within the "
                f"budgets ({self.candidates_considered} candidate(s) "
                "considered)"
            )
            return "\n".join(lines)
        lines.append(
            f"plan: {self.chips} chip(s) x "
            f"{self.config.num_aligners}x{self.config.parallel_sections}PS "
            f"(k_max {self.config.k_max}, {self.config.max_read_len} bp) -> "
            f"{self.total_area_mm2:.2f} mm2, {self.total_power_w * 1e3:.0f} mW"
        )
        lines.append(
            f"throughput: predicted {self.predicted_pairs_per_second:,.0f} "
            f"pairs/s, simulated {self.simulated_pairs_per_second:,.0f} pairs/s"
        )
        return "\n".join(lines)


def rate_candidates(
    configs: list[WfasicConfig],
    pairs: list[SequencePair],
    *,
    include_host: bool = True,
    batch_pairs: int = 4,
) -> list[PlanCandidate]:
    """Rate each configuration by simulating one chip on the workload.

    Configurations that cannot serve the workload — any unroutable or
    failed pair — are dropped: a plan must serve *every* pair of the
    target mix, not a lucky subset.
    """
    candidates: list[PlanCandidate] = []
    for config in configs:
        result = FleetScheduler(
            FleetConfig(chips=(config,), batch_pairs=batch_pairs)
        ).run(pairs)
        if result.failed_pairs:
            continue
        report = asic_report(config)
        candidates.append(
            PlanCandidate(
                config=config,
                rate_pairs_per_sec=result.pairs_per_second,
                area_mm2=(
                    report.soc_area_mm2 if include_host else report.total_area_mm2
                ),
                power_w=report.power_w,
            )
        )
    return candidates


def plan_capacity(
    budget: FleetBudget,
    *,
    workload: str = "100-10%",
    num_pairs: int = 32,
    pairs: list[SequencePair] | None = None,
    configs: list[WfasicConfig] | None = None,
    batch_pairs: int = 4,
    max_chips: int = 16,
    derate: float = DEFAULT_DERATE,
) -> CapacityPlan:
    """Answer a :class:`FleetBudget` with a simulation-verified plan.

    ``pairs`` overrides the named ``workload``; ``configs`` overrides
    the default budget-constrained enumeration.  The returned plan is
    feasible only if its fleet, actually simulated on the workload,
    meets the target rate — the selection loop walks chip counts upward
    until simulation confirms or the search space is exhausted.  The
    verification can only exercise as many chips as the workload has
    micro-batches (``num_pairs / batch_pairs``); very high targets need
    a proportionally larger ``num_pairs`` to validate large fleets.
    """
    if pairs is None:
        pairs = make_input_set(workload, num_pairs)
    else:
        workload = f"custom ({len(pairs)} pairs)"
    if configs is None:
        configs = configs_within_budget(
            area_budget_mm2=budget.area_mm2,
            power_budget_w=budget.power_w,
            include_host=budget.include_host,
        )
    candidates = rate_candidates(
        configs, pairs, include_host=budget.include_host,
        batch_pairs=batch_pairs,
    )

    infeasible = CapacityPlan(
        feasible=False,
        budget=budget,
        chips=0,
        config=None,
        predicted_pairs_per_second=0.0,
        simulated_pairs_per_second=0.0,
        total_area_mm2=0.0,
        total_power_w=0.0,
        candidates_considered=len(candidates),
        workload=workload,
        num_pairs=len(pairs),
        result=None,
    )
    min_chips = 1
    while True:
        selected = select_plan(
            candidates, budget,
            min_chips=min_chips, max_chips=max_chips, derate=derate,
        )
        if selected is None:
            return infeasible
        fleet = FleetScheduler(
            FleetConfig.uniform(
                selected.chips, selected.candidate.config,
                batch_pairs=batch_pairs,
            )
        ).run(pairs)
        if (
            fleet.pairs_per_second >= budget.pairs_per_sec
            and not fleet.failed_pairs
        ):
            return CapacityPlan(
                feasible=True,
                budget=budget,
                chips=selected.chips,
                config=selected.candidate.config,
                predicted_pairs_per_second=selected.predicted_rate,
                simulated_pairs_per_second=fleet.pairs_per_second,
                total_area_mm2=selected.total_area_mm2,
                total_power_w=selected.total_power_w,
                candidates_considered=len(candidates),
                workload=workload,
                num_pairs=len(pairs),
                result=fleet,
            )
        min_chips = selected.chips + 1
        if min_chips > max_chips:
            return infeasible
