"""Fleet-level scaling: N simulated WFAsic chips, planned and explored.

The paper evaluates one WFAsic instance on one RISC-V SoC; this package
answers the questions a deployment asks next:

* :class:`FleetScheduler` — N independently-configured simulated chips
  behind one queue, batches routed by capability and simulated queue
  depth (``least-loaded`` / ``round-robin``), results bit-identical to a
  single chip's.
* :func:`plan_capacity` / :func:`select_plan` — the capacity planner:
  invert the model ("X pairs/s within Y mm² and Z W → chip count +
  configuration"), verified by actually simulating the selected fleet.
* :func:`run_sweep` / :func:`pareto_frontier_indices` — the DSE sweep
  over compute sections × RAM banking (``k_max``) × chip count, emitting
  the schema-valid Pareto artifact ``docs/fleet.md`` renders from.

CLI: ``repro-wfasic fleet plan|sweep``.  Handbook: ``docs/fleet.md``.
"""

from .chip import DEFAULT_CHIP_MEMORY_BYTES, FleetChip, chip_trace_tid_base
from .dse import SweepGrid, dominates, pareto_frontier_indices, run_sweep
from .handbook import (
    WORKED_BUDGETS,
    best_point_for_budget,
    render_handbook_sections,
)
from .planner import (
    CapacityPlan,
    FleetBudget,
    PlanCandidate,
    SelectedPlan,
    plan_capacity,
    rate_candidates,
    select_plan,
)
from .report import FLEET_SWEEP_SCHEMA, validate_fleet_sweep
from .scheduler import (
    FLEET_POLICIES,
    ChipStats,
    FleetConfig,
    FleetPairOutcome,
    FleetResult,
    FleetScheduler,
)

__all__ = [
    "CapacityPlan",
    "ChipStats",
    "DEFAULT_CHIP_MEMORY_BYTES",
    "FLEET_POLICIES",
    "FLEET_SWEEP_SCHEMA",
    "FleetBudget",
    "FleetChip",
    "FleetConfig",
    "FleetPairOutcome",
    "FleetResult",
    "FleetScheduler",
    "PlanCandidate",
    "SelectedPlan",
    "SweepGrid",
    "WORKED_BUDGETS",
    "best_point_for_budget",
    "chip_trace_tid_base",
    "dominates",
    "pareto_frontier_indices",
    "plan_capacity",
    "rate_candidates",
    "render_handbook_sections",
    "run_sweep",
    "select_plan",
    "validate_fleet_sweep",
]
