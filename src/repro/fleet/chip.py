"""One simulated WFAsic chip inside a fleet.

A :class:`FleetChip` bundles everything the fleet scheduler needs to
know about one accelerator instance: its architecture configuration
(:class:`~repro.wfasic.WfasicConfig`), the physical estimate derived
from it (:func:`~repro.wfasic.asic_report` — area, power, memory), a
private :class:`~repro.soc.Soc` that actually executes batches, and the
chip's position on the *simulated-cycle* timeline.

Time model: every chip runs at the same §5.2 clock, so the fleet shares
one simulated-cycle axis.  A chip executes its batches back to back;
:attr:`ready_cycle` is the cycle at which its queue drains.  Routing a
batch appends it at ``ready_cycle`` and advances the tail by the
batch's end-to-end cycle count (driver + accelerator + backtrace, the
same total a single-chip run reports), so the fleet *makespan* is simply
``max(chip.ready_cycle)`` — no wall-clock anywhere, which keeps fleet
results bit-reproducible.

Memory: each chip owns a private main memory sized by
``memory_bytes``.  The default is deliberately far below the single-SoC
64 MB because :class:`~repro.soc.memory.MainMemory` eagerly allocates
its backing ``bytearray`` and a sweep instantiates dozens of chips; a
fleet batch image (tens of pairs at <= 10 kbp) fits comfortably in 8 MB.
"""

from __future__ import annotations

from typing import Sequence

from ..soc.soc import AcceleratedOutcome, Soc
from ..wfasic.asic_model import AsicReport, asic_report
from ..wfasic.config import WfasicConfig
from ..wfasic.packets import round_up_read_len
from ..workloads.generator import SequencePair

__all__ = ["FleetChip", "DEFAULT_CHIP_MEMORY_BYTES", "chip_trace_tid_base"]

#: Default per-chip main memory (see the module docstring).
DEFAULT_CHIP_MEMORY_BYTES = 8 * 1024 * 1024

#: Trace-lane stride between chips on the simulated-cycle timeline:
#: chip ``i`` owns tids ``1000 * (i + 1) ..`` inside the WFAsic trace
#: process, clear of the single-chip lanes (extractor 0, aligners 1+,
#: collector 999).
_CHIP_TID_STRIDE = 1000


def chip_trace_tid_base(index: int) -> int:
    """The trace thread-id base of chip ``index`` (see module docs)."""
    if index < 0:
        raise ValueError("chip index must be >= 0")
    return _CHIP_TID_STRIDE * (index + 1)


class FleetChip:
    """One WFAsic instance of a fleet: config + physicals + its own SoC."""

    def __init__(
        self,
        index: int,
        config: WfasicConfig,
        *,
        memory_bytes: int = DEFAULT_CHIP_MEMORY_BYTES,
    ) -> None:
        if index < 0:
            raise ValueError("chip index must be >= 0")
        self.index = index
        self.config = config
        #: GF22FDX physical estimate of this configuration.
        self.report: AsicReport = asic_report(config)
        self.soc = Soc(config, memory_bytes=memory_bytes)
        #: Simulated cycle at which this chip's batch queue drains.
        self.ready_cycle = 0
        #: Total cycles this chip spent executing batches.
        self.busy_cycles = 0
        #: Pairs routed to this chip so far.
        self.pairs_routed = 0
        #: Batches executed so far.
        self.batches = 0
        #: Bases seen so far (cost-estimator history).
        self._bases_seen = 0

    # -- capability ------------------------------------------------------

    def supports(self, pairs: Sequence[SequencePair]) -> bool:
        """Whether this chip can accept a batch (read-length capability).

        A batch's input image is built at the batch's rounded-up maximum
        read length (§4.2); the chip accepts it only when that fits its
        configured ``max_read_len``.  Score capability (``k_max``) is
        *not* gated here — the hardware accepts any supported-length pair
        and clears the Success flag when the score budget runs out, and
        the fleet reproduces exactly that behaviour.
        """
        longest = max((p.max_length for p in pairs), default=1)
        return round_up_read_len(longest) <= self.config.max_read_len

    # -- routing cost model ----------------------------------------------

    def estimate_cycles(self, pairs: Sequence[SequencePair]) -> int:
        """Deterministic integer cost estimate for routing ``pairs`` here.

        The scheduler needs a forecast *before* simulating: the estimate
        scales the chip's observed cycles-per-base history to the batch's
        base count (integer arithmetic, so routing decisions are
        platform-independent).  Before any history exists the raw base
        count is used — every chip starts from the same optimistic prior,
        so the first batches spread across the fleet.
        """
        bases = sum(len(p.pattern) + len(p.text) for p in pairs)
        if self._bases_seen:
            return bases * self.busy_cycles // self._bases_seen
        return bases

    # -- execution -------------------------------------------------------

    def run_batch(
        self, pairs: list[SequencePair], *, backtrace: bool = False
    ) -> tuple[int, AcceleratedOutcome]:
        """Execute one batch; returns ``(start_cycle, outcome)``.

        The batch is appended at :attr:`ready_cycle`; when a tracer is
        installed its schedule lands on this chip's own trace lanes,
        anchored at the batch's fleet-wide start cycle so the Perfetto
        timeline shows the true overlap across chips.
        """
        start = self.ready_cycle
        outcome = self.soc.run_accelerated(
            pairs,
            backtrace=backtrace,
            trace_tid_base=chip_trace_tid_base(self.index),
            trace_lane_prefix=f"chip {self.index} · ",
            trace_base_cycle=start,
        )
        self.ready_cycle = start + outcome.total_cycles
        self.busy_cycles += outcome.total_cycles
        self.pairs_routed += len(pairs)
        self.batches += 1
        self._bases_seen += sum(len(p.pattern) + len(p.text) for p in pairs)
        return start, outcome
