"""Design-space exploration: the fleet sweep and its Pareto frontier.

``examples/design_space_exploration.py`` swept single-chip aligner/PS
grids and printed a table; this module is its fleet-scale successor: a
grid over **compute sections** (parallel sections per Aligner), **RAM
banking** (``k_max`` — the wavefront RAM depth, which sets both the
score capability and most of the silicon) and **chip count**, every
point simulated end to end through the :class:`~repro.fleet.FleetScheduler`
on one fixed workload.

Each point lands in the sweep artifact with its simulated makespan,
throughput, physicals and active energy; the artifact then carries the
**Pareto frontier** over (pairs/s ↑, SoC area ↓, energy/pair ↓).  Points
with any failed pair (score over the point's ``k_max`` budget, or an
unroutable read) stay in the artifact — capability cliffs are part of
the story — but are excluded from the frontier: a config that cannot
serve the workload cannot win it.

Everything here is deterministic (integer cycles, fixed seeds, no
wall-clock), so re-running :func:`run_sweep` with the same grid and
workload reproduces the committed ``docs/data/fleet_sweep.json``
byte for byte — the property that lets ``docs/fleet.md`` claim every
number traces to the artifact.

:func:`pareto_frontier_indices` and :func:`dominates` are pure functions
over plain tuples so the frontier invariants (no dominated point
survives; every excluded point is dominated by a frontier point) are
property-testable without any simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..wfasic.asic_model import GF22_FREQUENCY_HZ, asic_report
from ..wfasic.config import WfasicConfig
from ..workloads.datasets import make_input_set
from ..workloads.generator import SequencePair
from .scheduler import FLEET_POLICIES, FleetConfig, FleetScheduler

__all__ = [
    "SweepGrid",
    "dominates",
    "pareto_frontier_indices",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepGrid:
    """The swept axes: compute sections × RAM banking × chip count.

    The committed ``docs/data/fleet_sweep.json`` uses the defaults; CI's
    ``fleet-smoke`` job runs a reduced grid through the same code path.
    """

    parallel_sections: tuple[int, ...] = (16, 32, 64, 128)
    k_max_values: tuple[int, ...] = (512, 3998)
    chip_counts: tuple[int, ...] = (1, 2, 4)
    max_read_len: int = 10_000

    def __post_init__(self) -> None:
        if not (self.parallel_sections and self.k_max_values and self.chip_counts):
            raise ValueError("every grid axis needs at least one value")
        if any(v < 1 for v in self.parallel_sections + self.k_max_values + self.chip_counts):
            raise ValueError("grid values must be >= 1")

    def configs(self) -> list[tuple[int, int, int, WfasicConfig]]:
        """The grid points as ``(sections, k_max, chips, config)`` rows,
        in deterministic (sections, k_max, chips) order."""
        rows = []
        for ps in sorted(set(self.parallel_sections)):
            for k_max in sorted(set(self.k_max_values)):
                config = WfasicConfig(
                    num_aligners=1,
                    parallel_sections=ps,
                    max_read_len=self.max_read_len,
                    k_max=k_max,
                    backtrace=False,
                )
                for chips in sorted(set(self.chip_counts)):
                    rows.append((ps, k_max, chips, config))
        return rows


def dominates(
    a: Sequence[float],
    b: Sequence[float],
    *,
    maximize: tuple[int, ...] = (0,),
    minimize: tuple[int, ...] = (1, 2),
) -> bool:
    """Whether point ``a`` Pareto-dominates point ``b``.

    ``a`` dominates when it is at least as good on every listed
    dimension (``>=`` on ``maximize`` indices, ``<=`` on ``minimize``)
    and strictly better on at least one.  Dimensions not listed are
    ignored.
    """
    at_least_as_good = all(
        a[i] >= b[i] for i in maximize
    ) and all(a[i] <= b[i] for i in minimize)
    strictly_better = any(a[i] > b[i] for i in maximize) or any(
        a[i] < b[i] for i in minimize
    )
    return at_least_as_good and strictly_better


def pareto_frontier_indices(
    rows: Sequence[Sequence[float]],
    *,
    maximize: tuple[int, ...] = (0,),
    minimize: tuple[int, ...] = (1, 2),
) -> list[int]:
    """Indices of the non-dominated rows, in input order.

    A row survives iff no other row :func:`dominates` it.  Duplicate
    rows all survive (neither dominates the other), which keeps the
    function permutation-stable — a property ``tests/fleet`` pins.
    """
    return [
        i
        for i, row in enumerate(rows)
        if not any(
            dominates(other, row, maximize=maximize, minimize=minimize)
            for j, other in enumerate(rows)
            if j != i
        )
    ]


def run_sweep(
    grid: SweepGrid | None = None,
    *,
    input_set: str = "100-10%",
    num_pairs: int = 32,
    batch_pairs: int = 4,
    policy: str = "least-loaded",
    pairs: list[SequencePair] | None = None,
) -> dict:
    """Simulate the whole grid; the schema-valid sweep artifact document.

    The default workload (32 pairs in batches of 4 → 8 micro-batches)
    deliberately over-provisions the largest default chip count so
    multi-chip points have enough batches to overlap — a sweep whose
    batch count is below its chip count measures idle silicon.

    ``pairs`` overrides the named ``input_set`` (the artifact then
    records the custom workload's shape but not a regenerable name).
    The returned document validates against
    :data:`repro.fleet.report.FLEET_SWEEP_SCHEMA`.
    """
    if policy not in FLEET_POLICIES:
        raise ValueError(f"unknown policy {policy!r}")
    grid = grid or SweepGrid()
    if pairs is None:
        pairs = make_input_set(input_set, num_pairs)
        workload_name = input_set
    else:
        workload_name = f"custom-{len(pairs)}"
    points: list[dict] = []
    for ps, k_max, chips, config in grid.configs():
        report = asic_report(config)
        result = FleetScheduler(
            FleetConfig.uniform(
                chips, config, batch_pairs=batch_pairs, policy=policy
            )
        ).run(pairs)
        points.append(
            {
                "parallel_sections": ps,
                "k_max": k_max,
                "chips": chips,
                "max_read_len": grid.max_read_len,
                "area_mm2": chips * report.total_area_mm2,
                "soc_area_mm2": chips * report.soc_area_mm2,
                "power_w": chips * report.power_w,
                "memory_mb": chips * report.memory_mb,
                "makespan_cycles": result.makespan_cycles,
                "busy_cycles": sum(c.busy_cycles for c in result.chips),
                "pairs_per_second": result.pairs_per_second,
                "gcups": result.gcups,
                "energy_per_pair_j": result.energy_per_pair_j,
                "failed_pairs": result.failed_pairs,
                "unroutable": result.unroutable,
            }
        )
    servable = [
        (i, (p["pairs_per_second"], p["soc_area_mm2"], p["energy_per_pair_j"]))
        for i, p in enumerate(points)
        if not p["failed_pairs"]
    ]
    frontier_local = pareto_frontier_indices([row for _, row in servable])
    frontier = sorted(servable[k][0] for k in frontier_local)
    for i, point in enumerate(points):
        point["on_frontier"] = i in frontier
    return {
        "kind": "fleet_sweep",
        "schema_version": 1,
        "clock_hz": GF22_FREQUENCY_HZ,
        "workload": {
            "input_set": workload_name,
            "num_pairs": len(pairs),
            "total_bases": sum(len(p.pattern) + len(p.text) for p in pairs),
            "swg_cells": sum(len(p.pattern) * len(p.text) for p in pairs),
            "max_read_len": max((p.max_length for p in pairs), default=0),
        },
        "grid": {
            "parallel_sections": sorted(set(grid.parallel_sections)),
            "k_max_values": sorted(set(grid.k_max_values)),
            "chip_counts": sorted(set(grid.chip_counts)),
            "max_read_len": grid.max_read_len,
        },
        "scheduler": {"policy": policy, "batch_pairs": batch_pairs},
        "points": points,
        "frontier": frontier,
    }
