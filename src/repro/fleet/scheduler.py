"""The fleet scheduler: N simulated WFAsic chips behind one queue.

The serving layer (PR 8) batches *requests*; this layer batches *chips*.
A :class:`FleetScheduler` owns N :class:`~repro.fleet.chip.FleetChip`
instances — each independently configured, each with its own physical
estimate — and routes consecutive micro-batches of an input workload to
them:

* **capability first** — a batch only goes to a chip whose configured
  ``max_read_len`` covers the batch (heterogeneous fleets can mix small
  short-read chips with a few long-read-capable ones);
* **queue depth second** — under the default ``least-loaded`` policy the
  batch goes to the capable chip whose simulated queue drains first
  (``ready_cycle`` plus an integer cycles-per-base forecast), ties
  broken by chip index; ``round-robin`` cycles through capable chips in
  order instead.

Everything is deterministic and wall-clock-free: routing decisions are
integer comparisons over simulated cycles, so a fleet run is exactly
reproducible — the property the DSE sweep artifact and the handbook
depend on.  Results come back *bit-identical* to a single-chip run of
the same configuration (the per-pair simulation does not depend on which
chip, or which batch, carried the pair); ``tests/fleet`` pins that.

A pair no chip can accept (longer than every chip's ``max_read_len``)
is *unroutable*: it is reported with ``success=False`` and counted in
``fleet_unroutable_total`` rather than aborting the workload — the same
per-pair isolation stance the engine takes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.cups import swg_equivalent_cells
from ..metrics.energy import active_energy_j
from ..obs.metrics import MetricsRegistry
from ..obs.publish import publish_fleet_result
from ..wfasic.asic_model import GF22_FREQUENCY_HZ
from ..wfasic.config import WfasicConfig
from ..workloads.generator import SequencePair
from .chip import DEFAULT_CHIP_MEMORY_BYTES, FleetChip

__all__ = [
    "FLEET_POLICIES",
    "FleetConfig",
    "FleetPairOutcome",
    "ChipStats",
    "FleetResult",
    "FleetScheduler",
]

#: Supported routing policies.
FLEET_POLICIES = ("least-loaded", "round-robin")


@dataclass(frozen=True)
class FleetConfig:
    """Static configuration of one fleet.

    Attributes
    ----------
    chips:
        One :class:`~repro.wfasic.WfasicConfig` per chip.  Heterogeneous
        fleets are first-class: chips may differ in parallel sections,
        ``k_max`` and ``max_read_len``.
    batch_pairs:
        Pairs per routed micro-batch.  Input order is preserved: the
        workload is cut into consecutive slices of this size.
    policy:
        ``least-loaded`` (default) or ``round-robin`` — see the module
        docstring.
    backtrace:
        Run the backtrace flow (CIGARs recovered by each chip's CPU).
        Requires every chip configuration to have ``backtrace=True``.
    chip_memory_bytes:
        Private main-memory size of each chip's SoC.
    """

    chips: tuple[WfasicConfig, ...]
    batch_pairs: int = 8
    policy: str = "least-loaded"
    backtrace: bool = False
    chip_memory_bytes: int = DEFAULT_CHIP_MEMORY_BYTES

    def __post_init__(self) -> None:
        if not self.chips:
            raise ValueError("a fleet needs at least one chip")
        if self.batch_pairs < 1:
            raise ValueError("batch_pairs must be >= 1")
        if self.policy not in FLEET_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {FLEET_POLICIES}"
            )
        if self.chip_memory_bytes < 1024 * 1024:
            raise ValueError("chip_memory_bytes must be >= 1 MiB")
        if self.backtrace and not all(c.backtrace for c in self.chips):
            raise ValueError(
                "backtrace fleets need every chip configured with backtrace=True"
            )

    @classmethod
    def uniform(
        cls,
        count: int,
        config: WfasicConfig,
        *,
        batch_pairs: int = 8,
        policy: str = "least-loaded",
        backtrace: bool = False,
        chip_memory_bytes: int = DEFAULT_CHIP_MEMORY_BYTES,
    ) -> "FleetConfig":
        """A homogeneous fleet of ``count`` identical chips."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return cls(
            chips=(config,) * count,
            batch_pairs=batch_pairs,
            policy=policy,
            backtrace=backtrace,
            chip_memory_bytes=chip_memory_bytes,
        )


@dataclass(frozen=True)
class FleetPairOutcome:
    """Per-pair result of a fleet run, in workload input order."""

    pair_id: int
    score: int
    success: bool
    cigar: str | None
    #: Index of the chip that served the pair, or ``-1`` if unroutable.
    chip_index: int

    @property
    def routed(self) -> bool:
        """Whether any chip accepted this pair."""
        return self.chip_index >= 0


@dataclass(frozen=True)
class ChipStats:
    """Utilisation and physicals of one chip after a fleet run."""

    index: int
    num_aligners: int
    parallel_sections: int
    k_max: int
    max_read_len: int
    busy_cycles: int
    pairs: int
    batches: int
    area_mm2: float
    soc_area_mm2: float
    power_w: float


@dataclass
class FleetResult:
    """Aggregate outcome of one fleet run.

    Throughput is derived from the *makespan* — the cycle at which the
    last chip drains — at the shared §5.2 clock; energy is the active
    energy of every chip (its post-PnR power over its busy cycles), an
    accelerator-side figure that deliberately excludes host idle power.
    """

    outcomes: list[FleetPairOutcome]
    makespan_cycles: int
    chips: list[ChipStats]
    batches: int
    unroutable: int
    #: SWG-equivalent DP cells of the routed pairs (GCUPS basis).
    swg_cells: int
    clock_hz: float = GF22_FREQUENCY_HZ
    policy: str = "least-loaded"
    _extra: dict[str, float] = field(default_factory=dict, repr=False)

    @property
    def num_pairs(self) -> int:
        """Pairs in the workload, routed or not."""
        return len(self.outcomes)

    @property
    def failed_pairs(self) -> int:
        """Pairs without a successful alignment (unroutable included)."""
        return sum(1 for o in self.outcomes if not o.success)

    @property
    def seconds(self) -> float:
        """Makespan in seconds at the shared clock."""
        return self.makespan_cycles / self.clock_hz

    @property
    def pairs_per_second(self) -> float:
        """Workload pairs over the fleet makespan."""
        if self.makespan_cycles <= 0:
            return 0.0
        return self.num_pairs / self.seconds

    @property
    def gcups(self) -> float:
        """SWG-equivalent GCUPS over the fleet makespan."""
        if self.makespan_cycles <= 0:
            return 0.0
        return self.swg_cells / self.seconds / 1e9

    @property
    def total_area_mm2(self) -> float:
        """Summed accelerator silicon (host cores excluded)."""
        return sum(c.area_mm2 for c in self.chips)

    @property
    def total_soc_area_mm2(self) -> float:
        """Summed SoC silicon (one Sargantana host per chip included)."""
        return sum(c.soc_area_mm2 for c in self.chips)

    @property
    def total_power_w(self) -> float:
        """Summed accelerator power draw of the fleet."""
        return sum(c.power_w for c in self.chips)

    @property
    def energy_j(self) -> float:
        """Active energy: each chip's power over its own busy cycles."""
        return sum(
            active_energy_j(c.power_w, c.busy_cycles, self.clock_hz)
            for c in self.chips
        )

    @property
    def energy_per_pair_j(self) -> float:
        """Active energy per workload pair."""
        if not self.outcomes:
            return 0.0
        return self.energy_j / len(self.outcomes)

    def as_dict(self) -> dict:
        """JSON-ready summary (per-pair outcomes omitted)."""
        return {
            "num_pairs": self.num_pairs,
            "failed_pairs": self.failed_pairs,
            "unroutable": self.unroutable,
            "batches": self.batches,
            "makespan_cycles": self.makespan_cycles,
            "clock_hz": self.clock_hz,
            "policy": self.policy,
            "pairs_per_second": self.pairs_per_second,
            "gcups": self.gcups,
            "total_area_mm2": self.total_area_mm2,
            "total_soc_area_mm2": self.total_soc_area_mm2,
            "total_power_w": self.total_power_w,
            "energy_j": self.energy_j,
            "energy_per_pair_j": self.energy_per_pair_j,
            "chips": [
                {
                    "index": c.index,
                    "config": f"{c.num_aligners}x{c.parallel_sections}PS",
                    "k_max": c.k_max,
                    "max_read_len": c.max_read_len,
                    "busy_cycles": c.busy_cycles,
                    "pairs": c.pairs,
                    "batches": c.batches,
                    "area_mm2": c.area_mm2,
                    "soc_area_mm2": c.soc_area_mm2,
                    "power_w": c.power_w,
                }
                for c in self.chips
            ],
        }

    def describe(self) -> str:
        """Human-readable summary (the CLI's stdout block)."""
        lines = [
            f"fleet: {len(self.chips)} chip(s), policy {self.policy}, "
            f"{self.num_pairs} pairs in {self.batches} batch(es)",
            f"makespan {self.makespan_cycles} cycles "
            f"({self.seconds * 1e6:.1f} us @ {self.clock_hz / 1e9:g} GHz) "
            f"-> {self.pairs_per_second:,.0f} pairs/s, {self.gcups:.1f} GCUPS",
            f"silicon {self.total_soc_area_mm2:.2f} mm2 SoC "
            f"({self.total_area_mm2:.2f} mm2 accelerator), "
            f"{self.total_power_w * 1e3:.0f} mW, "
            f"{self.energy_per_pair_j * 1e9:.1f} nJ/pair",
        ]
        if self.failed_pairs:
            lines.append(
                f"failures: {self.failed_pairs} pair(s) "
                f"({self.unroutable} unroutable)"
            )
        for c in self.chips:
            share = c.busy_cycles / self.makespan_cycles if self.makespan_cycles else 0.0
            lines.append(
                f"  chip {c.index} [{c.num_aligners}x{c.parallel_sections}PS, "
                f"k_max {c.k_max}, {c.max_read_len} bp]: "
                f"{c.pairs} pairs / {c.batches} batches, "
                f"{c.busy_cycles} cycles ({share:.0%} of makespan)"
            )
        return "\n".join(lines)


class FleetScheduler:
    """Routes an input workload across a fleet of simulated chips."""

    def __init__(
        self, config: FleetConfig, *, registry: MetricsRegistry | None = None
    ) -> None:
        self.config = config
        self.chips = [
            FleetChip(i, chip_config, memory_bytes=config.chip_memory_bytes)
            for i, chip_config in enumerate(config.chips)
        ]
        self._registry = registry
        self._rr_next = 0

    def run(self, pairs: list[SequencePair]) -> FleetResult:
        """Route ``pairs`` through the fleet; the aggregate result.

        Pair ids must be unique — they key the per-pair outcome map, as
        they do everywhere else in the repository.
        """
        if len({p.pair_id for p in pairs}) != len(pairs):
            raise ValueError("fleet workloads need unique pair_ids")
        outcomes: dict[int, FleetPairOutcome] = {}
        unroutable = 0
        step = self.config.batch_pairs
        for at in range(0, len(pairs), step):
            unroutable += self._route(pairs[at : at + step], outcomes)
        result = FleetResult(
            outcomes=[outcomes[p.pair_id] for p in pairs],
            makespan_cycles=max((c.ready_cycle for c in self.chips), default=0),
            chips=[
                ChipStats(
                    index=c.index,
                    num_aligners=c.config.num_aligners,
                    parallel_sections=c.config.parallel_sections,
                    k_max=c.config.k_max,
                    max_read_len=c.config.max_read_len,
                    busy_cycles=c.busy_cycles,
                    pairs=c.pairs_routed,
                    batches=c.batches,
                    area_mm2=c.report.total_area_mm2,
                    soc_area_mm2=c.report.soc_area_mm2,
                    power_w=c.report.power_w,
                )
                for c in self.chips
            ],
            batches=sum(c.batches for c in self.chips),
            unroutable=unroutable,
            swg_cells=sum(
                swg_equivalent_cells(len(p.pattern), len(p.text))
                for p in pairs
                if outcomes[p.pair_id].routed
            ),
            policy=self.config.policy,
        )
        publish_fleet_result(result, registry=self._registry)
        return result

    # -- routing ---------------------------------------------------------

    def _route(
        self,
        batch: list[SequencePair],
        outcomes: dict[int, FleetPairOutcome],
    ) -> int:
        """Route one micro-batch; the number of unroutable pairs."""
        capable = [c for c in self.chips if c.supports(batch)]
        if not capable:
            if len(batch) > 1:
                # A mixed batch may be partially routable pair by pair.
                return sum(self._route([p], outcomes) for p in batch)
            pair = batch[0]
            outcomes[pair.pair_id] = FleetPairOutcome(
                pair_id=pair.pair_id,
                score=0,
                success=False,
                cigar=None,
                chip_index=-1,
            )
            return 1
        chip = self._pick(capable, batch)
        _, outcome = chip.run_batch(batch, backtrace=self.config.backtrace)
        for pair in batch:
            cigar = outcome.cigars.get(pair.pair_id)
            outcomes[pair.pair_id] = FleetPairOutcome(
                pair_id=pair.pair_id,
                score=outcome.scores[pair.pair_id],
                success=outcome.success[pair.pair_id],
                cigar=None if cigar is None else cigar.compact(),
                chip_index=chip.index,
            )
        return 0

    def _pick(
        self, capable: list[FleetChip], batch: list[SequencePair]
    ) -> FleetChip:
        """The routing decision over the capable chips (deterministic)."""
        if self.config.policy == "round-robin":
            n = len(self.chips)
            for offset in range(n):
                chip = self.chips[(self._rr_next + offset) % n]
                if chip in capable:
                    self._rr_next = (chip.index + 1) % n
                    return chip
            raise AssertionError("capable chips vanished")  # pragma: no cover
        return min(
            capable,
            key=lambda c: (c.ready_cycle + c.estimate_cycles(batch), c.index),
        )
