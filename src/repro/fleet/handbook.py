"""Render the capacity-planning handbook's numbers from the sweep artifact.

``docs/fleet.md`` promises that **every number in it traces to the
committed sweep artifact** (``docs/data/fleet_sweep.json``).  This
module is how that promise is kept: the handbook's generated sections —
workload provenance, the Pareto-frontier table, the worked capacity
examples — are rendered *from the artifact document* by the functions
here, spliced between ``FLEET:*`` markers by ``tools/sync_fleet_docs.py``
and pinned against drift by ``tests/fleet/test_handbook.py``.  Nothing
in a generated section is hand-written.

The worked examples answer fixed budget questions (the
:data:`WORKED_BUDGETS`) by *selecting among the artifact's simulated
points* — minimal chip count first, then smallest SoC area — the same
dominance logic the live planner applies, but over committed data so
the handbook stays reproducible without re-simulation.
"""

from __future__ import annotations

__all__ = [
    "WORKED_BUDGETS",
    "best_point_for_budget",
    "render_workload",
    "render_frontier",
    "render_examples",
    "render_handbook_sections",
]

#: The handbook's worked examples: (pairs/s target, SoC mm² cap, W cap).
#: The first row is the ISSUE's canonical "1M pairs/s under 100 mm² and
#: 10 W"; the last is deliberately beyond the swept grid so the handbook
#: shows what an infeasible answer looks like.
WORKED_BUDGETS: tuple[tuple[float, float, float], ...] = (
    (1_000_000, 100.0, 10.0),
    (4_000_000, 12.0, 1.0),
    (8_000_000, 40.0, 4.0),
    (50_000_000, 100.0, 10.0),
)


def _config_label(point: dict) -> str:
    """A point's configuration, rendered the repository's usual way."""
    return (
        f"{point['chips']} × 1x{point['parallel_sections']}PS "
        f"(k_max {point['k_max']})"
    )


def best_point_for_budget(
    doc: dict, pairs_per_sec: float, area_mm2: float, power_w: float
) -> dict | None:
    """The artifact point answering one budget, or ``None``.

    Feasible = serves every pair, meets the rate, fits both caps (SoC
    area convention — host cores included).  Among feasible points the
    winner has the fewest chips, then the smallest SoC area, then the
    lowest power — the planner's own tie-break order.
    """
    feasible = [
        p
        for p in doc["points"]
        if not p["failed_pairs"]
        and p["pairs_per_second"] >= pairs_per_sec
        and p["soc_area_mm2"] <= area_mm2
        and p["power_w"] <= power_w
    ]
    if not feasible:
        return None
    return min(
        feasible,
        key=lambda p: (p["chips"], p["soc_area_mm2"], p["power_w"]),
    )


def render_workload(doc: dict) -> str:
    """The workload-provenance section: what the sweep actually ran."""
    w = doc["workload"]
    grid = doc["grid"]
    sched = doc["scheduler"]
    return (
        f"* **Workload:** input set `{w['input_set']}` — "
        f"{w['num_pairs']} pairs, {w['total_bases']:,} bases, "
        f"longest read {w['max_read_len']} bp, "
        f"{w['swg_cells']:,} SWG-equivalent cells.\n"
        f"* **Grid:** parallel sections {grid['parallel_sections']} × "
        f"k_max {grid['k_max_values']} × chips {grid['chip_counts']} "
        f"at max_read_len {grid['max_read_len']} "
        f"({len(doc['points'])} simulated points).\n"
        f"* **Scheduler:** `{sched['policy']}` routing, "
        f"{sched['batch_pairs']} pairs per micro-batch.\n"
        f"* **Clock:** every chip at {doc['clock_hz'] / 1e9:g} GHz "
        f"(§5.2 post-PnR)."
    )


def render_frontier(doc: dict) -> str:
    """The Pareto-frontier table over (pairs/s ↑, SoC mm² ↓, nJ/pair ↓)."""
    lines = [
        "| fleet | SoC area (mm²) | power (mW) | makespan (cycles) "
        "| pairs/s | GCUPS | energy (nJ/pair) |",
        "| --- | --- | --- | --- | --- | --- | --- |",
    ]
    frontier_points = [doc["points"][i] for i in doc["frontier"]]
    for p in sorted(frontier_points, key=lambda p: p["pairs_per_second"]):
        lines.append(
            f"| {_config_label(p)} "
            f"| {p['soc_area_mm2']:.2f} "
            f"| {p['power_w'] * 1e3:.0f} "
            f"| {p['makespan_cycles']:,} "
            f"| {p['pairs_per_second']:,.0f} "
            f"| {p['gcups']:.1f} "
            f"| {p['energy_per_pair_j'] * 1e9:.1f} |"
        )
    dominated = sum(
        1 for p in doc["points"] if not p["on_frontier"] and not p["failed_pairs"]
    )
    unservable = sum(1 for p in doc["points"] if p["failed_pairs"])
    lines.append("")
    lines.append(
        f"{len(frontier_points)} of {len(doc['points'])} swept points are "
        f"Pareto-optimal; {dominated} servable point(s) are dominated"
        + (
            f" and {unservable} cannot serve the workload "
            "(failed or unroutable pairs)."
            if unservable
            else "."
        )
    )
    return "\n".join(lines)


def render_examples(doc: dict) -> str:
    """The worked capacity-planning examples over the artifact points."""
    lines = [
        "| budget (pairs/s, ≤ mm², ≤ W) | answer | simulated pairs/s "
        "| SoC area (mm²) | power (mW) |",
        "| --- | --- | --- | --- | --- |",
    ]
    for rate, area, power in WORKED_BUDGETS:
        budget = f"{rate:,.0f}, ≤ {area:g} mm², ≤ {power:g} W"
        point = best_point_for_budget(doc, rate, area, power)
        if point is None:
            lines.append(
                f"| {budget} | **infeasible** at the swept grid | — | — | — |"
            )
            continue
        lines.append(
            f"| {budget} "
            f"| {_config_label(point)} "
            f"| {point['pairs_per_second']:,.0f} "
            f"| {point['soc_area_mm2']:.2f} "
            f"| {point['power_w'] * 1e3:.0f} |"
        )
    return "\n".join(lines)


def render_handbook_sections(doc: dict) -> dict[str, str]:
    """All generated handbook sections, keyed by their marker name."""
    return {
        "WORKLOAD": render_workload(doc),
        "FRONTIER": render_frontier(doc),
        "EXAMPLES": render_examples(doc),
    }
