"""The fleet-sweep artifact schema and validator.

The DSE sweep (:func:`repro.fleet.dse.run_sweep`) emits one JSON
document per run; the committed copy lives at
``docs/data/fleet_sweep.json`` and is the *only* source of numbers for
``docs/fleet.md`` (rendered by ``tools/sync_fleet_docs.py``).  This
module pins the document's shape with the same dependency-free
JSON-schema subset (:func:`repro.obs.schema.validate`) the trace /
metrics / manifest artifacts already use, so CI's ``fleet-smoke`` job
can gate any sweep output — reduced-resolution or committed — against
one schema.
"""

from __future__ import annotations

from ..obs.schema import SchemaError, validate

__all__ = ["FLEET_SWEEP_SCHEMA", "validate_fleet_sweep", "SchemaError"]

#: One simulated grid point of the sweep.
_POINT_SCHEMA = {
    "type": "object",
    "required": [
        "parallel_sections",
        "k_max",
        "chips",
        "max_read_len",
        "area_mm2",
        "soc_area_mm2",
        "power_w",
        "memory_mb",
        "makespan_cycles",
        "busy_cycles",
        "pairs_per_second",
        "gcups",
        "energy_per_pair_j",
        "failed_pairs",
        "unroutable",
        "on_frontier",
    ],
    "additionalProperties": False,
    "properties": {
        "parallel_sections": {"type": "integer", "minimum": 1},
        "k_max": {"type": "integer", "minimum": 1},
        "chips": {"type": "integer", "minimum": 1},
        "max_read_len": {"type": "integer", "minimum": 1},
        "area_mm2": {"type": "number", "minimum": 0},
        "soc_area_mm2": {"type": "number", "minimum": 0},
        "power_w": {"type": "number", "minimum": 0},
        "memory_mb": {"type": "number", "minimum": 0},
        "makespan_cycles": {"type": "integer", "minimum": 0},
        "busy_cycles": {"type": "integer", "minimum": 0},
        "pairs_per_second": {"type": "number", "minimum": 0},
        "gcups": {"type": "number", "minimum": 0},
        "energy_per_pair_j": {"type": "number", "minimum": 0},
        "failed_pairs": {"type": "integer", "minimum": 0},
        "unroutable": {"type": "integer", "minimum": 0},
        "on_frontier": {"type": "boolean"},
    },
}

#: The whole sweep artifact (``kind: fleet_sweep``).
FLEET_SWEEP_SCHEMA = {
    "type": "object",
    "required": [
        "kind",
        "schema_version",
        "clock_hz",
        "workload",
        "grid",
        "scheduler",
        "points",
        "frontier",
    ],
    "additionalProperties": False,
    "properties": {
        "kind": {"enum": ["fleet_sweep"]},
        "schema_version": {"type": "integer", "minimum": 1},
        "clock_hz": {"type": "number", "minimum": 1},
        "workload": {
            "type": "object",
            "required": [
                "input_set",
                "num_pairs",
                "total_bases",
                "swg_cells",
                "max_read_len",
            ],
            "additionalProperties": False,
            "properties": {
                "input_set": {"type": "string"},
                "num_pairs": {"type": "integer", "minimum": 1},
                "total_bases": {"type": "integer", "minimum": 0},
                "swg_cells": {"type": "integer", "minimum": 0},
                "max_read_len": {"type": "integer", "minimum": 0},
            },
        },
        "grid": {
            "type": "object",
            "required": [
                "parallel_sections",
                "k_max_values",
                "chip_counts",
                "max_read_len",
            ],
            "additionalProperties": False,
            "properties": {
                "parallel_sections": {
                    "type": "array",
                    "items": {"type": "integer", "minimum": 1},
                },
                "k_max_values": {
                    "type": "array",
                    "items": {"type": "integer", "minimum": 1},
                },
                "chip_counts": {
                    "type": "array",
                    "items": {"type": "integer", "minimum": 1},
                },
                "max_read_len": {"type": "integer", "minimum": 1},
            },
        },
        "scheduler": {
            "type": "object",
            "required": ["policy", "batch_pairs"],
            "additionalProperties": False,
            "properties": {
                "policy": {"enum": ["least-loaded", "round-robin"]},
                "batch_pairs": {"type": "integer", "minimum": 1},
            },
        },
        "points": {"type": "array", "items": _POINT_SCHEMA},
        "frontier": {
            "type": "array",
            "items": {"type": "integer", "minimum": 0},
        },
    },
}


def validate_fleet_sweep(doc: object) -> None:
    """Validate a sweep artifact; raises :class:`SchemaError` on faults.

    Beyond the schema, the frontier indices must address real points and
    agree with the per-point ``on_frontier`` flags — the cross-field
    consistency a pure JSON schema cannot express.
    """
    validate(doc, FLEET_SWEEP_SCHEMA)
    assert isinstance(doc, dict)
    points = doc["points"]
    frontier = doc["frontier"]
    for index in frontier:
        if index >= len(points):
            raise SchemaError(
                f"$.frontier[{frontier.index(index)}]",
                f"index {index} out of range ({len(points)} points)",
            )
    flagged = sorted(i for i, p in enumerate(points) if p["on_frontier"])
    if flagged != sorted(frontier):
        raise SchemaError(
            "$.frontier", "frontier indices disagree with on_frontier flags"
        )
