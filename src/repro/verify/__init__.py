"""Differential verification and fault injection (the §5.1 analog)."""

from .equivalence import EquivalenceChecker, EquivalenceReport, Mismatch
from .faults import FAULT_KINDS, FaultCampaign, FaultKind, FaultOutcome

__all__ = [
    "EquivalenceChecker",
    "EquivalenceReport",
    "FAULT_KINDS",
    "FaultCampaign",
    "FaultKind",
    "FaultOutcome",
    "Mismatch",
]
