"""Fault injection — the §5.1 robustness campaign.

"To check that the WFAsic does not cause the CPU to hang in case of
receiving broken data, we intentionally send data in different
unexpected formats to the WFAsic.  In these tests, we did not observe
any CPU freeze."

The simulator analog: mutate well-formed input images in targeted ways
and require that the whole flow either completes (with Success cleared
for the broken pairs) or raises a *well-typed* error — never hangs,
never crashes with an unrelated exception, and never corrupts the
results of the surrounding healthy pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..soc.memory import MemoryError_
from ..wfasic.accelerator import WfasicAccelerator
from ..wfasic.backtrace_cpu import BacktraceStreamError
from ..wfasic.config import WfasicConfig

__all__ = ["FaultKind", "FaultOutcome", "FaultCampaign", "FAULT_KINDS"]

#: Exceptions that count as *graceful* rejection of broken data.
_GRACEFUL = (ValueError, BacktraceStreamError, MemoryError_)


@dataclass(frozen=True)
class FaultKind:
    """One way of breaking an input image."""

    name: str
    description: str


FAULT_KINDS: tuple[FaultKind, ...] = (
    FaultKind("garbage_bases", "replace sequence bytes with random garbage"),
    FaultKind("huge_length", "declare a length far beyond MAX_READ_LEN"),
    FaultKind("negative_ish_length", "declare a length of 2^32 - 1"),
    FaultKind("truncated_image", "cut the image mid-record"),
    FaultKind("oversized_image", "append trailing garbage sections"),
    FaultKind("zeroed_record", "zero out an entire pair record"),
    FaultKind("random_flips", "flip random bytes across the image"),
)


@dataclass
class FaultOutcome:
    """Result of injecting one fault."""

    kind: str
    completed: bool
    graceful_error: str | None
    unsupported_pairs: int

    @property
    def hung_or_crashed(self) -> bool:
        return not self.completed and self.graceful_error is None


@dataclass
class FaultCampaign:
    """Run every fault kind against a configured accelerator."""

    config: WfasicConfig = field(
        default_factory=lambda: WfasicConfig.paper_default(backtrace=False)
    )
    seed: int = 0

    def corrupt(self, image: bytes, kind: FaultKind, record_size: int) -> bytes:
        rng = random.Random(self.seed + hash(kind.name) % 1000)
        data = bytearray(image)
        if kind.name == "garbage_bases":
            start = 3 * 16
            for _ in range(32):
                if len(data) > start:
                    data[rng.randrange(start, len(data))] = rng.randrange(256)
        elif kind.name == "huge_length":
            data[16:20] = (2**20).to_bytes(4, "little")
        elif kind.name == "negative_ish_length":
            data[32:36] = (2**32 - 1).to_bytes(4, "little")
        elif kind.name == "truncated_image":
            del data[len(data) - record_size // 2 :]
        elif kind.name == "oversized_image":
            data.extend(rng.randbytes(record_size // 2 // 16 * 16))
        elif kind.name == "zeroed_record":
            data[:record_size] = bytes(record_size)
        elif kind.name == "random_flips":
            for _ in range(64):
                data[rng.randrange(len(data))] ^= 0xFF
        else:
            raise ValueError(f"unknown fault kind {kind.name!r}")
        return bytes(data)

    def run_one(
        self, image: bytes, kind: FaultKind, max_read_len: int, record_size: int
    ) -> FaultOutcome:
        broken = self.corrupt(image, kind, record_size)
        accel = WfasicAccelerator(self.config)
        try:
            batch = accel.run_image(broken, max_read_len)
        except _GRACEFUL as exc:
            return FaultOutcome(
                kind=kind.name,
                completed=False,
                graceful_error=f"{type(exc).__name__}: {exc}",
                unsupported_pairs=0,
            )
        rejected = sum(1 for r in batch.runs if not r.success)
        return FaultOutcome(
            kind=kind.name,
            completed=True,
            graceful_error=None,
            unsupported_pairs=rejected,
        )

    def run_all(
        self, image: bytes, max_read_len: int, record_size: int
    ) -> list[FaultOutcome]:
        return [
            self.run_one(image, kind, max_read_len, record_size)
            for kind in FAULT_KINDS
        ]
