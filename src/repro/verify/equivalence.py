"""Differential verification — the simulator analog of §5.1's LEC/GLS.

The paper proves its netlists equivalent to the RTL with Cadence LEC and
gate-level simulation; the simulator analog is *differential testing*:
drive the full accelerator model and the two software WFA engines with
the same inputs and check that

* every score equals the SWG dynamic-programming optimum,
* every CIGAR recovered through the hardware path (origin stream ->
  CPU backtrace) is a valid alignment whose Eq. 5 score equals the
  reported score,
* the scalar and vectorised software engines agree cell-for-cell on
  abstract work.

`EquivalenceChecker.run` is used by the integration tests and can be run
standalone for longer campaigns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..align.swg import swg_align
from ..align.wfa import WfaAligner
from ..align.wfa_vectorized import VectorizedWfaAligner
from ..wfasic.accelerator import WfasicAccelerator
from ..wfasic.backtrace_cpu import CpuBacktracer
from ..wfasic.config import WfasicConfig
from ..wfasic.packets import encode_input_image, round_up_read_len
from ..workloads.generator import PairGenerator, SequencePair

__all__ = ["Mismatch", "EquivalenceReport", "EquivalenceChecker"]


@dataclass(frozen=True)
class Mismatch:
    """One disagreement found by the checker."""

    pair_id: int
    kind: str
    detail: str


@dataclass
class EquivalenceReport:
    """Outcome of one differential campaign."""

    pairs_checked: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


class EquivalenceChecker:
    """Accelerator-vs-oracle differential tester."""

    def __init__(self, config: WfasicConfig | None = None, *, seed: int = 0) -> None:
        self.config = (config or WfasicConfig.paper_default()).with_backtrace(True)
        self.seed = seed

    def generate(self, count: int, max_len: int = 120) -> list[SequencePair]:
        """A mixed difficulty batch: related and unrelated pairs."""
        rng = random.Random(self.seed)
        pairs: list[SequencePair] = []
        pid = 0
        while len(pairs) < count:
            length = rng.randint(1, max_len)
            rate = rng.choice([0.0, 0.02, 0.1, 0.3])
            gen = PairGenerator(
                length=length, error_rate=rate, seed=rng.randrange(2**31)
            )
            p = gen.pair()
            pairs.append(
                SequencePair(pattern=p.pattern, text=p.text, pair_id=pid)
            )
            pid += 1
        return pairs

    def run(self, pairs: list[SequencePair]) -> EquivalenceReport:
        """Check one batch through every engine."""
        report = EquivalenceReport()
        cfg = self.config
        pen = cfg.penalties
        max_read_len = min(
            round_up_read_len(max((p.max_length for p in pairs), default=1)),
            cfg.max_read_len,
        )
        image = encode_input_image(pairs, max_read_len)
        accel = WfasicAccelerator(cfg)
        batch = accel.run_image(image, max_read_len)
        sequences = {p.pair_id: (p.pattern, p.text) for p in pairs}
        bt_results, _ = CpuBacktracer(cfg).process(
            batch.output.as_stream(), sequences, separate=cfg.num_aligners > 1
        )
        bt_by_id = {r.alignment_id: r for r in bt_results}

        scalar = WfaAligner(pen)
        vector = VectorizedWfaAligner(pen)

        for pair in pairs:
            report.pairs_checked += 1
            a, b = pair.pattern, pair.text
            oracle = swg_align(a, b, pen)
            run = batch.run_for(pair.pair_id)

            if not run.success:
                report.mismatches.append(
                    Mismatch(pair.pair_id, "success", "accelerator rejected pair")
                )
                continue
            if run.score != oracle.score:
                report.mismatches.append(
                    Mismatch(
                        pair.pair_id,
                        "score",
                        f"accelerator {run.score} != oracle {oracle.score}",
                    )
                )
            res_bt = bt_by_id.get(pair.pair_id)
            if res_bt is None or res_bt.cigar is None:
                report.mismatches.append(
                    Mismatch(pair.pair_id, "backtrace", "no CIGAR recovered")
                )
            else:
                try:
                    res_bt.cigar.validate(a, b)
                    if res_bt.cigar.score(pen) != oracle.score:
                        report.mismatches.append(
                            Mismatch(
                                pair.pair_id,
                                "cigar-score",
                                f"{res_bt.cigar.score(pen)} != {oracle.score}",
                            )
                        )
                except Exception as exc:  # CigarError
                    report.mismatches.append(
                        Mismatch(pair.pair_id, "cigar", str(exc))
                    )

            rs = scalar.align(a, b)
            rv = vector.align(a, b)
            if rs.score != oracle.score or rv.score != oracle.score:
                report.mismatches.append(
                    Mismatch(
                        pair.pair_id,
                        "software",
                        f"scalar {rs.score} / vector {rv.score} vs {oracle.score}",
                    )
                )
            if rs.work.cells_computed != rv.work.cells_computed:
                report.mismatches.append(
                    Mismatch(pair.pair_id, "work", "scalar/vector cell counts differ")
                )
        return report

    def campaign(self, count: int = 50, max_len: int = 120) -> EquivalenceReport:
        """Generate-and-check in one call."""
        return self.run(self.generate(count, max_len))
