"""Performance metrics: (G)CUPS and speedups (§5.5).

"Cell Updates Per Second (CUPS) is a well-known performance metric of SW
algorithms that describes the number of cells of the DP matrix that are
computed per second."  For WFA-based designs, which skip most cells, the
paper computes CUPS "considering the equivalent number of DP cells that
the SWG algorithm would need to compute the optimal alignment" — i.e.
the full ``n x m`` matrix per pair — so that exact methods remain
comparable across platforms.

Table 2's non-WFAsic rows are published measurements from the cited
works; they are carried here as constants with their provenance, exactly
as the paper itself uses them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "swg_equivalent_cells",
    "gcups",
    "gcups_from_cycles",
    "speedup",
    "PlatformRow",
    "TABLE2_REFERENCE_ROWS",
]


def swg_equivalent_cells(len_a: int, len_b: int) -> int:
    """DP cells SWG would compute for one pair: the full ``n x m`` matrix."""
    if len_a < 0 or len_b < 0:
        raise ValueError("sequence lengths must be >= 0")
    return len_a * len_b


def gcups(total_cells: int, seconds: float) -> float:
    """Giga cell-updates per second."""
    if seconds <= 0:
        raise ValueError("seconds must be > 0")
    return total_cells / seconds / 1e9


def gcups_from_cycles(total_cells: int, cycles: int, frequency_hz: float) -> float:
    """GCUPS of a cycle count scaled to a clock frequency (§5.5: "The
    GCUPS of the WFAsic accelerator on the ASIC is estimated by scaling
    the cycle counts measured on the FPGA prototype to the ASIC
    frequency")."""
    if cycles <= 0:
        raise ValueError("cycles must be > 0")
    if frequency_hz <= 0:
        raise ValueError("frequency must be > 0")
    return gcups(total_cells, cycles / frequency_hz)


def speedup(baseline_cycles: float, accelerated_cycles: float) -> float:
    """Cycle-ratio speedup (the FPGA-prototype measurement of Fig. 9)."""
    if accelerated_cycles <= 0 or baseline_cycles < 0:
        raise ValueError("cycle counts must be positive")
    return baseline_cycles / accelerated_cycles


@dataclass(frozen=True)
class PlatformRow:
    """One row of Table 2."""

    platform: str
    gcups: float
    area_mm2: float
    source: str

    @property
    def gcups_per_mm2(self) -> float:
        return self.gcups / self.area_mm2


#: Published rows of Table 2 (everything except the WFAsic rows, which
#: this repository measures).  GACT is Darwin's seed-extension module
#: (heuristic); the EPYC rows run the WFA CPU code; WFA-GPU numbers are
#: derived from that paper's supplementary material.
TABLE2_REFERENCE_ROWS: tuple[PlatformRow, ...] = (
    PlatformRow(
        "GACT-ASIC [Heuristic]", 2129.0, 85.6, "Darwin, Turakhia et al. [20]"
    ),
    PlatformRow(
        "WFA-CPU on AMD EPYC [1 thread]", 7.5, 1008.0, "paper Table 2 / [14]"
    ),
    PlatformRow(
        "WFA-CPU on AMD EPYC [64 threads]", 98.0, 1008.0, "paper Table 2 / [14]"
    ),
    PlatformRow(
        "WFA-GPU [NVIDIA GeForce 3080]", 476.0, 628.0, "Aguado-Puig et al. [1]"
    ),
)
