"""Batch analysis: utilisation and cycle breakdowns.

Turns a :class:`~repro.wfasic.accelerator.BatchResult` schedule into the
quantities a hardware evaluation cares about — how busy each Aligner and
the input path were, where the makespan went — feeding the design-space
example and the Fig. 10 saturation story (idle Aligners beyond Eq. 7's
knee show up directly as utilisation loss).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..wfasic.accelerator import BatchResult

__all__ = ["BatchAnalysis", "analyse_batch"]


@dataclass(frozen=True)
class BatchAnalysis:
    """Derived utilisation metrics of one accelerator batch."""

    makespan: int
    num_pairs: int
    num_aligners: int
    #: Fraction of aligner-cycles spent aligning (1.0 = no idling).
    aligner_utilisation: float
    #: Fraction of the makespan the input path spent streaming.
    reader_utilisation: float
    #: Fraction of the makespan the output path spent streaming.
    output_utilisation: float
    #: Mean per-pair wait between read completion and its read start
    #: (input-path queueing, the §5.3 bandwidth bottleneck signature).
    mean_read_wait: float

    @property
    def input_bound(self) -> bool:
        """Heuristic: the batch is limited by the input path.

        The reader never reaches 100 % because the makespan includes the
        tail where the last alignments drain after the final read.
        """
        return self.reader_utilisation > 0.75 and self.aligner_utilisation < 0.6


def analyse_batch(result: BatchResult) -> BatchAnalysis:
    """Compute utilisation metrics from a batch's schedule."""
    makespan = result.total_cycles
    pairs = len(result.runs)
    aligners = result.config.num_aligners
    if makespan == 0 or pairs == 0:
        return BatchAnalysis(
            makespan=0,
            num_pairs=pairs,
            num_aligners=aligners,
            aligner_utilisation=0.0,
            reader_utilisation=0.0,
            output_utilisation=0.0,
            mean_read_wait=0.0,
        )
    align_cycles = sum(run.cycles for run in result.runs)
    read_cycles = result.reading_cycles_per_pair * pairs
    waits = []
    expected_start = 0
    for sched in result.schedule:
        waits.append(sched.read_start - expected_start)
        expected_start = sched.read_end
    return BatchAnalysis(
        makespan=makespan,
        num_pairs=pairs,
        num_aligners=aligners,
        aligner_utilisation=align_cycles / (makespan * aligners),
        reader_utilisation=read_cycles / makespan,
        output_utilisation=result.output_cycles / makespan,
        mean_read_wait=sum(waits) / len(waits),
    )
