"""Performance metrics: GCUPS and speedups (§5.5)."""

from .analysis import BatchAnalysis, analyse_batch
from .energy import (
    EnergyRow,
    TABLE_ENERGY_ROWS,
    active_energy_j,
    energy_per_alignment_j,
)
from .cups import (
    TABLE2_REFERENCE_ROWS,
    PlatformRow,
    gcups,
    gcups_from_cycles,
    speedup,
    swg_equivalent_cells,
)

__all__ = [
    "BatchAnalysis",
    "EnergyRow",
    "TABLE_ENERGY_ROWS",
    "PlatformRow",
    "TABLE2_REFERENCE_ROWS",
    "active_energy_j",
    "analyse_batch",
    "energy_per_alignment_j",
    "gcups",
    "gcups_from_cycles",
    "speedup",
    "swg_equivalent_cells",
]
