"""Energy accounting — the §1 portability claim, quantified.

The introduction argues the WFAsic SoC "is easily portable and could be
supplied with batteries or other portable power supplies" against
GPU/CPU platforms that are "non-portable [and] consume excessive amounts
of energy".  This module turns that into numbers: energy per alignment
for each Table 2 platform, from its GCUPS (throughput) and its power.

Power figures: WFAsic's 312 mW is the paper's post-PnR measurement; the
competitor numbers are the parts' published board/TDP values (the same
level of approximation Table 2 applies to their areas).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cups import TABLE2_REFERENCE_ROWS

__all__ = [
    "EnergyRow",
    "energy_per_alignment_j",
    "active_energy_j",
    "TABLE_ENERGY_ROWS",
]

#: Published power draws (W) for the Table 2 platforms.
_PLATFORM_POWER_W = {
    "GACT-ASIC [Heuristic]": 15.0,  # Darwin reports ~15 W for the ASIC
    "WFA-CPU on AMD EPYC [1 thread]": 225.0,  # EPYC 7742 TDP
    "WFA-CPU on AMD EPYC [64 threads]": 225.0,
    "WFA-GPU [NVIDIA GeForce 3080]": 320.0,  # RTX 3080 board power
}


@dataclass(frozen=True)
class EnergyRow:
    """Energy efficiency of one platform at the 10 kbp workload."""

    platform: str
    power_w: float
    gcups: float

    @property
    def joules_per_alignment(self) -> float:
        """Energy of one 10 kbp x 10 kbp alignment (1e8 SWG cells)."""
        return energy_per_alignment_j(self.power_w, self.gcups)

    @property
    def gcups_per_watt(self) -> float:
        return self.gcups / self.power_w


def energy_per_alignment_j(power_w: float, gcups: float, cells: int = 10**8) -> float:
    """Energy (J) to process ``cells`` DP-equivalent cells."""
    if power_w <= 0 or gcups <= 0:
        raise ValueError("power and GCUPS must be > 0")
    seconds = cells / (gcups * 1e9)
    return power_w * seconds


def active_energy_j(power_w: float, cycles: int, frequency_hz: float) -> float:
    """Active energy (J) of ``cycles`` busy cycles at ``frequency_hz``.

    The fleet layer's accounting: a chip draws its post-PnR power while
    executing and is charged nothing while idle — an accelerator-side
    figure that deliberately excludes host and idle power (documented in
    ``docs/fleet.md``).  Zero cycles cost zero joules.
    """
    if power_w <= 0:
        raise ValueError("power must be > 0")
    if frequency_hz <= 0:
        raise ValueError("frequency must be > 0")
    if cycles < 0:
        raise ValueError("cycles must be >= 0")
    return power_w * cycles / frequency_hz


def TABLE_ENERGY_ROWS(
    wfasic_gcups_bt: float, wfasic_gcups_nbt: float, wfasic_power_w: float
) -> list[EnergyRow]:
    """The Table 2 platforms extended with energy, plus measured WFAsic."""
    rows = [
        EnergyRow(ref.platform, _PLATFORM_POWER_W[ref.platform], ref.gcups)
        for ref in TABLE2_REFERENCE_ROWS
    ]
    rows.append(EnergyRow("WFAsic [With Backtrace]", wfasic_power_w, wfasic_gcups_bt))
    rows.append(
        EnergyRow("WFAsic [Without Backtrace]", wfasic_power_w, wfasic_gcups_nbt)
    )
    return rows
