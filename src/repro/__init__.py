"""WFAsic reproduction — a cycle-approximate simulator of the paper

"WFAsic: A High-Performance ASIC Accelerator for DNA Sequence Alignment on
a RISC-V SoC" (Haghi et al., ICPP 2023).

Subpackages
-----------
``repro.align``
    Alignment algorithms: SWG/gap-linear DP oracles, scalar and
    vectorised WFA, CIGARs, penalties, the reachable-score lattice.
``repro.workloads``
    Synthetic read-pair generation and the paper's six input sets.
``repro.wfasic``
    The accelerator model: Extractor, Aligner (Extend/Compute parallel
    sections), Collectors, banked RAMs, byte-exact memory formats, the
    CPU-side backtrace, and the ASIC area/frequency model.
``repro.soc``
    The RISC-V SoC substrate: main memory, AXI buses, DMA, MMIO register
    file, the Sargantana CPU cost model, and a Linux-driver-style API.
``repro.metrics``
    GCUPS and speedup accounting.
``repro.verify``
    Differential verification (the LEC/GLS analog) and fault injection.
``repro.reporting``
    Paper-style tables for benches and EXPERIMENTS.md.
"""

__version__ = "1.0.0"
