"""A small synchronous client for the alignment service.

:class:`ServeClient` speaks the NDJSON protocol over one TCP
connection.  It is deliberately synchronous — the scripting and test
surface (``repro-wfasic submit`` is built on it) — while still
exploiting the server's pipelining: :meth:`align_many` writes every
request before reading any response, so one scripted client fills the
server's micro-batches as well as a fleet of concurrent ones.

Responses may arrive out of order (the protocol contract); the client
tags every request with a connection-unique ``id`` and reorders on
receipt, so callers always get answers in submission order.
"""

from __future__ import annotations

import json
import socket
from types import TracebackType
from typing import Iterable, Sequence

from .protocol import decode_line

__all__ = ["ServeClient"]


class ServeClient:
    """One connection to a running :class:`AlignmentServer`.

    Usable as a context manager; ``timeout`` is the socket timeout per
    read (a stuck server surfaces as :class:`socket.timeout` instead of
    a hang).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7878, *, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rwb")
        self._next_id = 0

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # -- wire helpers --------------------------------------------------

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _send(self, doc: dict) -> None:
        self._fh.write((json.dumps(doc, separators=(",", ":")) + "\n").encode("ascii"))

    def _recv(self) -> dict:
        line = self._fh.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    def request(self, doc: dict) -> dict:
        """Send one raw request document and wait for its response."""
        if "id" not in doc:
            doc = {**doc, "id": self._fresh_id()}
        self._send(doc)
        self._fh.flush()
        return self._recv()

    # -- API -----------------------------------------------------------

    def align(
        self,
        pattern: str,
        text: str,
        *,
        deadline_ms: float | None = None,
    ) -> dict:
        """Align one pair; returns the response document."""
        doc: dict = {"type": "align", "pattern": pattern, "text": text}
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        return self.request(doc)

    def align_many(
        self,
        pairs: Iterable[Sequence[str]],
        *,
        deadline_ms: float | None = None,
    ) -> list[dict]:
        """Align many pairs pipelined; responses in submission order.

        Every request goes out before any response is read — this is
        what lets a single connection fill server-side micro-batches —
        then responses are matched back by ``id``.
        """
        ids: list[int] = []
        for pattern, text in pairs:
            request_id = self._fresh_id()
            ids.append(request_id)
            doc: dict = {
                "type": "align",
                "id": request_id,
                "pattern": pattern,
                "text": text,
            }
            if deadline_ms is not None:
                doc["deadline_ms"] = deadline_ms
            self._send(doc)
        self._fh.flush()
        by_id: dict[object, dict] = {}
        for _ in ids:
            response = self._recv()
            by_id[response.get("id")] = response
        return [by_id[request_id] for request_id in ids]

    def stats(self) -> dict:
        """The server's metrics snapshot + merged session report."""
        return self.request({"type": "stats"})

    def ping(self) -> dict:
        """Liveness probe; returns the ``pong`` document."""
        return self.request({"type": "ping"})
