"""The serve wire protocol: newline-delimited JSON requests/responses.

One TCP connection carries any number of requests, one JSON document
per line (NDJSON).  Responses echo the request's ``id`` verbatim and
**may arrive out of order** — the server pipelines every request on a
connection into the shared micro-batching scheduler, so a client that
sends ten lines back to back gets ten answers in whatever order their
batches complete.  Clients that care match on ``id``
(:class:`repro.serve.client.ServeClient` does).

Three request kinds::

    {"type": "align", "id": 7, "pattern": "ACGT", "text": "ACCT",
     "deadline_ms": 250}          # deadline optional
    {"type": "stats", "id": "s"}  # metrics snapshot + session report
    {"type": "ping", "id": 0}

``type`` defaults to ``align`` so the minimal request is just
``{"pattern": ..., "text": ...}``.  An align response mirrors the
engine's :class:`~repro.engine.PairOutcome` channels exactly — the
hardware ``success`` flag and the ``ok``/``error_kind``/``error_msg``
engine error channel — which is what makes served responses
bit-comparable with a one-shot :func:`repro.engine.align_pairs` run::

    {"id": 7, "ok": true, "score": -4, "success": true, "cigar": null,
     "error_kind": null, "error_msg": null}

Admission-control rejections reuse the same shape with serve-specific
``error_kind`` values (and ``retry_after_ms`` on ``queue_full``):

* ``queue_full`` — the bounded queue is at capacity; retry after
  ``retry_after_ms`` (the backpressure contract, ``docs/serving.md``);
* ``deadline_exceeded`` — the request's deadline passed before its
  batch dispatched (the serve-side face of PR 3's timeout machinery;
  engine-side chunk timeouts still surface as ``timeout``);
* ``shutting_down`` — the server is draining; the connection will close
  once in-flight batches finish;
* ``protocol_error`` — the line was not a valid request (malformed
  JSON, missing fields, wrong types).

A malformed *line* never kills the connection: the server answers with
``protocol_error`` (``id`` null when unparseable) and keeps reading.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ProtocolError",
    "AlignRequest",
    "ControlRequest",
    "ERROR_QUEUE_FULL",
    "ERROR_DEADLINE",
    "ERROR_SHUTTING_DOWN",
    "ERROR_PROTOCOL",
    "parse_request",
    "align_response",
    "error_response",
    "encode_line",
    "decode_line",
]

#: Serve-level ``error_kind`` values (the engine's taxonomy lives in
#: :mod:`repro.engine.validation`; these extend it at the admission
#: boundary and never collide with it).
ERROR_QUEUE_FULL = "queue_full"
ERROR_DEADLINE = "deadline_exceeded"
ERROR_SHUTTING_DOWN = "shutting_down"
ERROR_PROTOCOL = "protocol_error"


class ProtocolError(ValueError):
    """A request line that is not a valid protocol document."""


@dataclass(frozen=True)
class AlignRequest:
    """One alignment job: the unit the micro-batcher schedules."""

    #: Echoed verbatim in the response (any JSON scalar; ``None`` legal).
    request_id: Any
    pattern: str
    text: str
    #: Per-request latency budget in milliseconds, measured from arrival
    #: at the server; ``None`` uses the server's default deadline.
    deadline_ms: float | None = None


@dataclass(frozen=True)
class ControlRequest:
    """A non-alignment request: ``stats`` or ``ping``."""

    request_id: Any
    kind: str


def decode_line(line: bytes | str) -> dict:
    """Parse one NDJSON line into a dict, or raise :class:`ProtocolError`."""
    try:
        doc = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request line is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def parse_request(line: bytes | str) -> AlignRequest | ControlRequest:
    """One wire line -> a typed request, or raise :class:`ProtocolError`."""
    doc = decode_line(line)
    request_id = doc.get("id")
    kind = doc.get("type", "align")
    if kind in ("stats", "ping"):
        return ControlRequest(request_id=request_id, kind=kind)
    if kind != "align":
        raise ProtocolError(f"unknown request type {kind!r}")
    missing = [key for key in ("pattern", "text") if key not in doc]
    if missing:
        raise ProtocolError(
            f"align request is missing {', '.join(missing)!s}"
        )
    pattern, text = doc["pattern"], doc["text"]
    if not isinstance(pattern, str) or not isinstance(text, str):
        raise ProtocolError("pattern and text must be strings")
    deadline_ms = doc.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ):
            raise ProtocolError("deadline_ms must be a number")
        if deadline_ms <= 0:
            raise ProtocolError("deadline_ms must be > 0")
        deadline_ms = float(deadline_ms)
    return AlignRequest(
        request_id=request_id,
        pattern=pattern,
        text=text,
        deadline_ms=deadline_ms,
    )


def align_response(request_id: Any, outcome: Any) -> dict:
    """The response document for a served :class:`PairOutcome`."""
    return {
        "id": request_id,
        "ok": outcome.ok,
        "score": outcome.score,
        "success": outcome.success,
        "cigar": outcome.cigar,
        "error_kind": outcome.error_kind,
        "error_msg": outcome.error_msg,
    }


def error_response(
    request_id: Any,
    kind: str,
    msg: str,
    *,
    retry_after_ms: float | None = None,
) -> dict:
    """A serve-level rejection (admission control, protocol errors)."""
    doc = {
        "id": request_id,
        "ok": False,
        "score": 0,
        "success": False,
        "cigar": None,
        "error_kind": kind,
        "error_msg": msg,
    }
    if retry_after_ms is not None:
        doc["retry_after_ms"] = retry_after_ms
    return doc


def encode_line(doc: dict) -> bytes:
    """Serialise one response document as an NDJSON line."""
    return (json.dumps(doc, separators=(",", ":")) + "\n").encode("ascii")
