"""The always-on alignment service: an asyncio NDJSON socket server.

:class:`AlignmentServer` owns one long-lived
:class:`~repro.engine.BatchAlignmentEngine` (its worker pool, LRU cache
and shared-memory arena persist across every request of the session —
the spin-up cost a one-shot CLI pays per invocation is paid once here)
and one :class:`~repro.serve.scheduler.MicroBatcher` feeding it.  Each
client connection is read line by line; every request on a connection
is pipelined into the shared scheduler as its own task, so a single
client streaming requests fills micro-batches just as well as many
clients sending one each.

Shutdown is a *graceful drain*: the listening socket closes first (no
new connections), new submissions are rejected ``shutting_down``,
queued requests still dispatch and get real answers, and only then do
the engine pool and its ``/dev/shm`` arena tear down — the same
leak-free exit contract the PR 6 battery pins for the CLI, extended to
the serving path.

The server never prints; the CLI (``repro-wfasic serve``) owns stdout
and renders :meth:`MicroBatcher.session_report` on exit.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from ..engine.engine import BatchAlignmentEngine, EngineConfig
from ..obs.metrics import MetricsRegistry, get_registry
from .protocol import (
    ERROR_PROTOCOL,
    AlignRequest,
    ControlRequest,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    parse_request,
)
from .scheduler import MicroBatcher, ServeConfig

__all__ = ["AlignmentServer"]


class AlignmentServer:
    """One serve session: engine + scheduler + listening socket.

    Usage (the CLI does exactly this)::

        server = AlignmentServer(engine_config, serve_config, port=7878)
        await server.start()
        await server.wait_closed()   # until shutdown() is called

    ``port=0`` binds an ephemeral port (tests); the bound address is
    available as :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        engine_config: EngineConfig | None = None,
        serve_config: ServeConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.engine_config = engine_config or EngineConfig()
        self.serve_config = serve_config or ServeConfig()
        self.host = host
        self.port = port
        self._registry = registry
        self.engine: BatchAlignmentEngine | None = None
        #: All engine instances (``serve_config.instances`` of them);
        #: ``engine`` aliases the first for back-compatibility.
        self.engines: list[BatchAlignmentEngine] = []
        self.batcher: MicroBatcher | None = None
        self._server: asyncio.AbstractServer | None = None
        self._closed: "asyncio.Event | None" = None
        self._shutting_down = False

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return (self.host, self.port)
        host, port = self._server.sockets[0].getsockname()[:2]
        return (host, port)

    async def start(self) -> None:
        """Create the engine(s), start the batcher loop, bind the socket."""
        self.engines = [
            BatchAlignmentEngine(self.engine_config)
            for _ in range(self.serve_config.instances)
        ]
        self.engine = self.engines[0]
        self.batcher = MicroBatcher(
            self.engines, self.serve_config, registry=self._registry
        )
        self.batcher.start()
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def shutdown(self) -> None:
        """Graceful drain: close the socket, flush, tear the engine down."""
        if self._shutting_down:
            return
        self._shutting_down = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.batcher is not None:
            await self.batcher.drain()
        for engine in self.engines:
            # close() joins the pool and unlinks the arena — blocking
            # work that belongs off the event loop.
            await asyncio.get_running_loop().run_in_executor(
                None, engine.close
            )
        if self._closed is not None:
            self._closed.set()

    async def wait_closed(self) -> None:
        """Block until :meth:`shutdown` completes (the CLI's main await)."""
        if self._closed is not None:
            await self._closed.wait()

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client: pipeline every line into the scheduler.

        Each request becomes its own task so a connection's requests
        batch together (and with other connections'); responses are
        written under a per-connection lock in completion order, which
        the protocol allows (clients match on ``id``).
        """
        write_lock = asyncio.Lock()
        tasks: set["asyncio.Task[None]"] = set()

        async def respond(doc: dict) -> None:
            async with write_lock:
                writer.write(encode_line(doc))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(stripped, respond)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client went away mid-conversation; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_line(
        self,
        line: bytes,
        respond: Callable[[dict], Awaitable[None]],
    ) -> None:
        assert self.batcher is not None, "serve_line before start()"
        registry = self._registry or get_registry()
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            registry.counter(
                "serve_rejected_total", "Requests rejected by reason"
            ).inc(1, {"kind": ERROR_PROTOCOL})
            await respond(
                error_response(
                    _best_effort_id(line), ERROR_PROTOCOL, str(exc)
                )
            )
            return
        if isinstance(request, AlignRequest):
            await respond(await self.batcher.submit(request))
            return
        assert isinstance(request, ControlRequest)
        registry.counter(
            "serve_requests_total", "Requests received by kind"
        ).inc(1, {"kind": request.kind})
        if request.kind == "ping":
            await respond(
                {"id": request.request_id, "ok": True, "type": "pong"}
            )
        else:
            await respond(self.batcher.stats_payload(request.request_id))


def _best_effort_id(line: bytes) -> object:
    """The request ``id`` of an invalid line, when one is recoverable."""
    try:
        return decode_line(line).get("id")
    except ProtocolError:
        return None
