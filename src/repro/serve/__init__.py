"""The always-on alignment service (``repro-wfasic serve``).

The layer that turns the batch engine into a *system*: a long-running
asyncio socket server accepts newline-delimited JSON alignment
requests from many concurrent clients and feeds them through a
micro-batching scheduler into one long-lived
:class:`~repro.engine.BatchAlignmentEngine` — so every client shares
the engine's worker pool, LRU cache, duplicate coalescing and
zero-copy dispatch path, and the fixed per-dispatch cost amortises
across whoever happens to be asking at the same time.

* :mod:`.protocol` — the NDJSON wire protocol and its error taxonomy;
* :mod:`.scheduler` — :class:`MicroBatcher`: batch windows, bounded
  queue with retry-after backpressure, per-request deadlines;
* :mod:`.server` — :class:`AlignmentServer`: connections, pipelining,
  graceful drain;
* :mod:`.client` — :class:`ServeClient`: the synchronous scripting and
  ``repro-wfasic submit`` surface.

See ``docs/serving.md`` for the protocol and admission-control
contract.
"""

from .client import ServeClient
from .protocol import (
    ERROR_DEADLINE,
    ERROR_PROTOCOL,
    ERROR_QUEUE_FULL,
    ERROR_SHUTTING_DOWN,
    AlignRequest,
    ControlRequest,
    ProtocolError,
    align_response,
    decode_line,
    encode_line,
    error_response,
    parse_request,
)
from .scheduler import MicroBatcher, ServeConfig
from .server import AlignmentServer

__all__ = [
    "AlignmentServer",
    "MicroBatcher",
    "ServeConfig",
    "ServeClient",
    "AlignRequest",
    "ControlRequest",
    "ProtocolError",
    "parse_request",
    "align_response",
    "error_response",
    "encode_line",
    "decode_line",
    "ERROR_QUEUE_FULL",
    "ERROR_DEADLINE",
    "ERROR_SHUTTING_DOWN",
    "ERROR_PROTOCOL",
]
