"""The micro-batching scheduler: admission control over the batch engine.

The serving problem is amortisation: the engine's fixed per-dispatch
cost (payload build, pool hand-off, gather) is the same for 1 pair as
for 64, and the LRU cache plus within-batch coalescing only pay off
when requests actually meet inside one :meth:`align_batch` call.  So
requests from every connection land in one shared queue and the
batcher loop turns them into engine batches:

1. **Accumulate** — the first queued request opens a *batch window*
   (``ServeConfig.batch_window``, a few ms); requests arriving inside
   the window join the batch, and the window closes early once
   ``max_batch`` requests are waiting.
2. **Admit** — the queue is bounded at ``max_queue_depth``; a request
   arriving at a full queue is rejected immediately with
   ``queue_full`` and a ``retry_after_ms`` hint (clients back off
   instead of piling up — the backpressure contract).
3. **Expire** — each request carries a deadline (its own
   ``deadline_ms`` or the server default); a request whose deadline
   passed while it queued is answered ``deadline_exceeded`` *without*
   being dispatched, so an overloaded server sheds exactly the work
   nobody is waiting for any more.
4. **Dispatch** — the surviving requests go to the long-lived
   :class:`~repro.engine.BatchAlignmentEngine` as one batch (in a
   worker thread: ``align_batch`` is synchronous), where cross-client
   duplicates coalesce through the engine cache exactly as same-batch
   duplicates always have.

Latency, batch-size and queue-depth distributions are published to the
process :class:`~repro.obs.MetricsRegistry` under the ``serve_*``
vocabulary rows, and every dispatched batch lands as a span on the
installed tracer (the engine's own ``batch`` span nests right under
it on the same Perfetto timeline).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from contextlib import suppress
from typing import Any, Sequence

from ..engine.engine import BatchAlignmentEngine, BatchReport, merge_batch_reports
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import get_tracer
from .protocol import (
    ERROR_DEADLINE,
    ERROR_QUEUE_FULL,
    ERROR_SHUTTING_DOWN,
    AlignRequest,
    align_response,
    error_response,
)

__all__ = ["ServeConfig", "MicroBatcher"]

#: Batch-size histogram buckets: powers of two up to the largest
#: ``max_batch`` anyone sensibly configures.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Queue-depth histogram buckets (sampled at every batch formation).
QUEUE_DEPTH_BUCKETS = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)


@dataclass(frozen=True)
class ServeConfig:
    """Admission-control knobs of one serve session.

    Attributes
    ----------
    batch_window:
        Seconds the first queued request waits for company before its
        batch dispatches.  ``0`` dispatches every request immediately
        (batch-size-1 — the baseline the benchmark compares against).
    max_batch:
        Requests per dispatched batch; a full batch closes its window
        early.
    max_queue_depth:
        Queued (admitted, not yet dispatched) requests beyond which new
        arrivals are rejected with ``queue_full``.
    default_deadline_ms:
        Deadline applied to requests that carry none; ``None`` means
        such requests never expire in the queue.
    instances:
        Engine instances behind the shared queue.  ``1`` (default)
        dispatches batches strictly one at a time; ``N > 1`` keeps up
        to ``N`` batches in flight, one per engine — an engine is not
        thread-safe, so each holds at most one batch — the same
        multi-chip shape :mod:`repro.fleet` simulates in cycles.
    """

    batch_window: float = 0.002
    max_batch: int = 64
    max_queue_depth: int = 1024
    default_deadline_ms: float | None = None
    instances: int = 1

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0 (or None)")
        if self.instances < 1:
            raise ValueError("instances must be >= 1")


@dataclass
class _Pending:
    """One admitted request waiting for its batch."""

    request: AlignRequest
    future: "asyncio.Future[dict]"
    #: ``perf_counter`` stamp at admission (latency zero point).
    arrival: float
    #: Absolute ``perf_counter`` deadline, or ``None`` for no deadline.
    expires: float | None


class MicroBatcher:
    """Admission control + micro-batch formation over one engine.

    Created by :class:`repro.serve.server.AlignmentServer`; usable on
    its own in tests.  :meth:`start` spawns the batcher loop on the
    running event loop; :meth:`submit` is awaited per request and
    resolves to the response document; :meth:`drain` stops admission,
    flushes the queue and waits for in-flight work.
    """

    def __init__(
        self,
        engine: BatchAlignmentEngine | Sequence[BatchAlignmentEngine],
        config: ServeConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        engines = (
            list(engine) if isinstance(engine, (list, tuple)) else [engine]
        )
        if not engines:
            raise ValueError("MicroBatcher needs at least one engine")
        #: Engine instances behind the shared queue; at most one batch
        #: is in flight per engine at any moment.
        self.engines: list[BatchAlignmentEngine] = engines
        #: The first engine — the whole pool on the single-instance path.
        self.engine = engines[0]
        self.config = config or ServeConfig()
        self._registry = registry
        self._queue: deque[_Pending] = deque()
        self._wake = asyncio.Event()
        self._task: "asyncio.Task[None] | None" = None
        self._draining = False
        #: Per-batch engine reports of the session, in dispatch order.
        self.reports: list[BatchReport] = []
        self._started = time.perf_counter()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn the batcher loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def drain(self) -> None:
        """Stop admitting, flush queued work, stop the loop (idempotent).

        Queued requests are still dispatched (graceful drain: every
        admitted request gets a real answer); only *new* submissions are
        rejected with ``shutting_down``.
        """
        self._draining = True
        self._wake.set()
        if self._task is not None:
            task = self._task
            self._task = None
            await task

    @property
    def queue_depth(self) -> int:
        """Requests admitted and waiting for a batch."""
        return len(self._queue)

    def session_report(self) -> BatchReport | None:
        """The session's merged engine report over its true wall span.

        ``None`` until the first batch dispatches.  Uses the session
        wall clock, not the per-batch sum — the whole point of the
        ``merge_batch_reports`` wall-span fix: a server's batches
        overlap with idle time and with each other, so summing their
        wall-times would fabricate the derived rates.
        """
        if not self.reports:
            return None
        return merge_batch_reports(
            self.reports,
            wall_seconds=time.perf_counter() - self._started,
        )

    # -- admission -----------------------------------------------------

    async def submit(self, request: AlignRequest) -> dict:
        """Admit one request and wait for its response document."""
        registry = self._registry or get_registry()
        registry.counter(
            "serve_requests_total", "Requests received by kind"
        ).inc(1, {"kind": "align"})
        if self._draining:
            registry.counter(
                "serve_rejected_total", "Requests rejected by reason"
            ).inc(1, {"kind": ERROR_SHUTTING_DOWN})
            return error_response(
                request.request_id,
                ERROR_SHUTTING_DOWN,
                "server is draining; no new requests admitted",
            )
        if len(self._queue) >= self.config.max_queue_depth:
            registry.counter(
                "serve_rejected_total", "Requests rejected by reason"
            ).inc(1, {"kind": ERROR_QUEUE_FULL})
            return error_response(
                request.request_id,
                ERROR_QUEUE_FULL,
                f"queue is at capacity ({self.config.max_queue_depth})",
                retry_after_ms=self._retry_after_ms(),
            )
        now = time.perf_counter()
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.config.default_deadline_ms
        )
        pending = _Pending(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            arrival=now,
            expires=None if deadline_ms is None else now + deadline_ms / 1e3,
        )
        self._queue.append(pending)
        self._wake.set()
        return await pending.future

    def _retry_after_ms(self) -> float:
        """The backpressure hint: when a full queue should have space.

        A full queue drains one ``max_batch`` per window-plus-dispatch;
        suggesting one window per queued batch is deliberately
        pessimistic — clients that come back too early just get
        rejected again.
        """
        batches_queued = max(
            1, -(-len(self._queue) // self.config.max_batch)
        )
        return max(1.0, batches_queued * self.config.batch_window * 1e3)

    # -- batching ------------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        if len(self.engines) > 1:
            await self._run_multi(loop)
            return
        while True:
            if not self._queue:
                if self._draining:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            await self._fill_window(loop)
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), self.config.max_batch))
            ]
            await self._dispatch(loop, batch)

    async def _run_multi(self, loop: asyncio.AbstractEventLoop) -> None:
        """The multi-instance loop: one in-flight batch per engine.

        The single-engine loop above awaits each dispatch inline; here a
        formed batch goes to any idle engine as its own task and the
        loop immediately returns to batch formation, so up to
        ``len(self.engines)`` batches overlap.  With every engine busy
        the loop blocks on the first completion — queue-depth
        backpressure then works exactly as before.  Drain waits for all
        in-flight tasks, so the graceful-drain contract (every admitted
        request gets a real answer) is unchanged.
        """
        inflight: dict[int, "asyncio.Task[None]"] = {}
        try:
            while True:
                for idx, task in list(inflight.items()):
                    if task.done():
                        del inflight[idx]
                        task.result()
                if not self._queue:
                    if self._draining:
                        return
                    self._wake.clear()
                    if inflight:
                        wake = loop.create_task(self._wake.wait())
                        await asyncio.wait(
                            {wake, *inflight.values()},
                            return_when=asyncio.FIRST_COMPLETED,
                        )
                        wake.cancel()
                        with suppress(asyncio.CancelledError):
                            await wake
                    else:
                        await self._wake.wait()
                    continue
                idle = [
                    i for i in range(len(self.engines)) if i not in inflight
                ]
                if not idle:
                    await asyncio.wait(
                        set(inflight.values()),
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    continue
                await self._fill_window(loop)
                batch = [
                    self._queue.popleft()
                    for _ in range(
                        min(len(self._queue), self.config.max_batch)
                    )
                ]
                inflight[idle[0]] = loop.create_task(
                    self._dispatch(loop, batch, engine=self.engines[idle[0]])
                )
        finally:
            if inflight:
                await asyncio.gather(*inflight.values())

    async def _fill_window(self, loop: asyncio.AbstractEventLoop) -> None:
        """Hold the batch open for ``batch_window`` or until it fills."""
        if self.config.batch_window <= 0 or self._draining:
            return
        closes = loop.time() + self.config.batch_window
        while len(self._queue) < self.config.max_batch and not self._draining:
            remaining = closes - loop.time()
            if remaining <= 0:
                return
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), remaining)
            except asyncio.TimeoutError:
                return

    async def _dispatch(
        self,
        loop: asyncio.AbstractEventLoop,
        batch: list[_Pending],
        engine: BatchAlignmentEngine | None = None,
    ) -> None:
        engine = engine or self.engine
        registry = self._registry or get_registry()
        tracer = get_tracer()
        start = time.perf_counter()
        start_us = tracer.now_us() if tracer is not None else 0.0
        registry.histogram(
            "serve_queue_depth",
            "Queued requests at batch formation",
            buckets=QUEUE_DEPTH_BUCKETS,
        ).observe(len(self._queue) + len(batch))

        live: list[_Pending] = []
        expired = 0
        for pending in batch:
            if pending.expires is not None and start >= pending.expires:
                expired += 1
                registry.counter(
                    "serve_rejected_total", "Requests rejected by reason"
                ).inc(1, {"kind": ERROR_DEADLINE})
                pending.future.set_result(
                    error_response(
                        pending.request.request_id,
                        ERROR_DEADLINE,
                        "deadline passed before the request's batch "
                        "dispatched",
                    )
                )
            else:
                live.append(pending)
        if live:
            pairs = [(p.request.pattern, p.request.text) for p in live]
            try:
                result = await loop.run_in_executor(
                    None, engine.align_batch, pairs
                )
            except Exception as exc:  # noqa: BLE001 — the serving boundary
                # Strict engines raise; a server must keep serving, so
                # the failure is fanned out per request instead.
                msg = f"{type(exc).__name__}: {exc}"
                for pending in live:
                    pending.future.set_result(
                        error_response(
                            pending.request.request_id, "backend_error", msg
                        )
                    )
            else:
                self.reports.append(result.report)
                done = time.perf_counter()
                latency = registry.histogram(
                    "serve_request_latency_seconds",
                    "Admission-to-response latency per request",
                )
                for pending, outcome in zip(live, result.outcomes):
                    latency.observe(done - pending.arrival)
                    pending.future.set_result(
                        align_response(pending.request.request_id, outcome)
                    )
        registry.histogram(
            "serve_batch_size",
            "Requests per dispatched batch (expired ones included)",
            buckets=BATCH_SIZE_BUCKETS,
        ).observe(len(batch))
        registry.counter("serve_batches_total", "Micro-batches formed").inc(1)
        if tracer is not None:
            tracer.complete(
                "serve:batch",
                "serve",
                start_us,
                (time.perf_counter() - start) * 1e6,
                args={
                    "requests": len(batch),
                    "dispatched": len(live),
                    "expired": expired,
                },
            )

    # -- stats ---------------------------------------------------------

    def stats_payload(self, request_id: Any) -> dict:
        """The ``stats`` response document (registry + session report)."""
        registry = self._registry or get_registry()
        report = self.session_report()
        return {
            "id": request_id,
            "ok": True,
            "type": "stats",
            "uptime_seconds": time.perf_counter() - self._started,
            "queue_depth": self.queue_depth,
            "metrics": registry.snapshot(),
            "report": None if report is None else report.as_dict(),
        }
