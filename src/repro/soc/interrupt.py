"""Completion signalling (§3): Idle polling or a dedicated interrupt.

"The CPU triggers the start of the accelerator by writing to the Start
register, and it checks the completion of the computation in the
accelerator by polling the Idle register.  A dedicated interrupt could
also be enabled to signal the job completion to the CPU."
"""

from __future__ import annotations

from typing import Callable

__all__ = ["InterruptLine"]


class InterruptLine:
    """A single level-sensitive interrupt line with handler dispatch."""

    def __init__(self) -> None:
        self._handlers: list[Callable[[], None]] = []
        self.pending = False
        self.raised_count = 0

    def connect(self, handler: Callable[[], None]) -> None:
        """Register a handler; fired synchronously on :meth:`raise_`."""
        self._handlers.append(handler)

    def raise_(self) -> None:
        """Assert the line: dispatch handlers, latch pending."""
        self.pending = True
        self.raised_count += 1
        for handler in self._handlers:
            handler()

    def clear(self) -> None:
        """Acknowledge (CPU-side)."""
        self.pending = False
