"""The WFAsic memory-mapped register file (§3).

"The WFAsic accelerator includes a set of memory-mapped registers, and
the CPU writes into these registers the configuration of the
accelerator": backtrace enable, the batch MAX_READ_LEN, the DMA source
address/size and destination address, plus the Start/Idle handshake pair
and the interrupt enable.

Registers are 32-bit, word-addressed.  Start is write-one-to-trigger;
Idle is read-only from the CPU side.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["Reg", "RegisterFile", "MmioError"]


class MmioError(RuntimeError):
    """Bad register access (unknown offset, read-only violation)."""


class Reg:
    """Register offsets (byte addresses on the AXI-Lite bus)."""

    CTRL_START = 0x00  # write 1: trigger a batch
    STATUS_IDLE = 0x04  # read-only: 1 when the accelerator is idle
    BT_ENABLE = 0x08  # 1: generate backtrace data (§4.1)
    MAX_READ_LEN = 0x0C  # batch MAX_READ_LEN in bases (§4.2)
    SRC_ADDR = 0x10  # input image base address
    SRC_SIZE = 0x14  # input image size in bytes
    DST_ADDR = 0x18  # result region base address
    IRQ_ENABLE = 0x1C  # 1: raise an interrupt on completion (§3)
    DST_SIZE = 0x20  # result bytes written (read-only, set by hardware)

    ALL = (
        CTRL_START,
        STATUS_IDLE,
        BT_ENABLE,
        MAX_READ_LEN,
        SRC_ADDR,
        SRC_SIZE,
        DST_ADDR,
        IRQ_ENABLE,
        DST_SIZE,
    )
    READ_ONLY = (STATUS_IDLE, DST_SIZE)


class RegisterFile:
    """The accelerator's AXI-Lite-visible registers."""

    def __init__(self) -> None:
        self._regs: dict[int, int] = {off: 0 for off in Reg.ALL}
        self._regs[Reg.STATUS_IDLE] = 1
        self._start_callback: Callable[[], None] | None = None

    def on_start(self, callback: Callable[[], None]) -> None:
        """Hook invoked when the CPU writes 1 to CTRL_START."""
        self._start_callback = callback

    # -- CPU-side (AXI-Lite) access ------------------------------------------

    def read(self, offset: int) -> int:
        try:
            return self._regs[offset]
        except KeyError:
            raise MmioError(f"read of unknown register offset {offset:#x}") from None

    def write(self, offset: int, value: int) -> None:
        if offset not in self._regs:
            raise MmioError(f"write to unknown register offset {offset:#x}")
        if offset in Reg.READ_ONLY:
            raise MmioError(f"register {offset:#x} is read-only")
        if not 0 <= value < 2**32:
            raise MmioError("register values are 32-bit")
        self._regs[offset] = value
        if offset == Reg.CTRL_START and value & 1:
            if self._start_callback is None:
                raise MmioError("start triggered with no accelerator attached")
            self._start_callback()

    # -- hardware-side access ----------------------------------------------------

    def hw_set(self, offset: int, value: int) -> None:
        """Accelerator-side register update (Idle, DST_SIZE)."""
        if offset not in self._regs:
            raise MmioError(f"hw write to unknown register offset {offset:#x}")
        self._regs[offset] = value & 0xFFFFFFFF
