"""Main-memory model of the SoC (Fig. 3).

A flat byte-addressable memory with a trivial bump allocator for the
regions the co-design flow needs (input image, result region), plus
access counters for bandwidth sanity checks.  All addresses are offsets
into one address space shared by the CPU (via AXI-Lite or the L2 path)
and the WFAsic DMA (via AXI-Full).
"""

from __future__ import annotations

__all__ = ["MemoryError_", "MainMemory"]


class MemoryError_(RuntimeError):
    """Out-of-range access or allocation failure."""


class MainMemory:
    """Byte-addressable main memory with a bump allocator."""

    def __init__(self, size: int = 64 * 1024 * 1024) -> None:
        if size <= 0:
            raise ValueError("memory size must be > 0")
        self.size = size
        self._data = bytearray(size)
        self._next_free = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- allocation ------------------------------------------------------------

    def allocate(self, size: int, *, align: int = 16) -> int:
        """Reserve ``size`` bytes; returns the base address."""
        if size < 0:
            raise ValueError("allocation size must be >= 0")
        base = -(-self._next_free // align) * align
        if base + size > self.size:
            raise MemoryError_(
                f"out of memory: need {size} bytes at {base}, have {self.size}"
            )
        self._next_free = base + size
        return base

    def reset_allocator(self) -> None:
        """Free everything (batch-to-batch reuse)."""
        self._next_free = 0

    @property
    def remaining(self) -> int:
        """Bytes still available to :meth:`allocate`."""
        return self.size - self._next_free

    # -- access ------------------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        self.bytes_read += size
        return bytes(self._data[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self.bytes_written += len(data)
        self._data[addr : addr + len(data)] = data

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size:
            raise MemoryError_(
                f"access [{addr}, {addr + size}) outside memory of {self.size} bytes"
            )
