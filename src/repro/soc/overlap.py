"""Overlapped batch execution — accelerator/CPU pipelining.

§1/§3 emphasise that WFAsic "runs as an independent process in parallel
to other CPU processes": while the accelerator aligns batch *i*, the CPU
is free — and the obvious thing to do with that freedom is the backtrace
of batch *i-1* (Fig. 4's two steps form a classic two-stage pipeline).

:func:`run_overlapped` executes a sequence of batches both ways and
reports the pipelining gain.  With backtrace enabled, the CPU stage
dominates long-read batches (§5.3), so the achievable speedup approaches
``1 + accel/cpu`` rather than 2; the function reports the measured value.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.generator import SequencePair
from .soc import AcceleratedOutcome, Soc

__all__ = ["OverlappedOutcome", "run_overlapped"]


@dataclass
class OverlappedOutcome:
    """Timing of a multi-batch run, sequential vs pipelined."""

    outcomes: list[AcceleratedOutcome]
    #: Total cycles running batches strictly one after another (Fig. 4).
    sequential_cycles: int
    #: Total cycles with the CPU backtrace of batch i-1 overlapping the
    #: accelerator's batch i.
    overlapped_cycles: int

    @property
    def speedup(self) -> float:
        if self.overlapped_cycles == 0:
            return 1.0
        # wfalint: disable=W002 — speedup is a derived ratio, not a counter
        return self.sequential_cycles / self.overlapped_cycles


def run_overlapped(
    soc: Soc,
    batches: list[list[SequencePair]],
    *,
    backtrace: bool | None = None,
) -> OverlappedOutcome:
    """Run several batches and compute both execution schedules.

    The functional results are identical either way (the schedules only
    reorder *when* work happens); the two-stage pipeline recurrence is

    ``accel_done[i] = accel_done[i-1] + A[i]``
    ``cpu_done[i]   = max(accel_done[i], cpu_done[i-1]) + C[i]``
    """
    outcomes = [soc.run_accelerated(batch, backtrace=backtrace) for batch in batches]

    sequential = sum(o.total_cycles for o in outcomes)
    accel_done = 0
    cpu_done = 0
    for o in outcomes:
        # Driver programming precedes the accelerator stage of its batch.
        accel_done += o.cpu_driver_cycles + o.accelerator_cycles
        cpu_done = max(accel_done, cpu_done) + o.cpu_backtrace_cycles
    return OverlappedOutcome(
        outcomes=outcomes,
        sequential_cycles=sequential,
        overlapped_cycles=cpu_done,
    )
