"""The SoC top level (Fig. 3): CPU + WFAsic + memory, plus the experiment
flows of §5.

:class:`Soc` wires the pieces together and exposes the two execution
flows every figure of the evaluation compares:

* :meth:`run_accelerated` — the co-design flow of Fig. 4: stage the
  image, drive the accelerator through the Linux-style driver, and (when
  backtrace is on) run the CPU backtrace over the result stream.
* :meth:`run_cpu` — the software WFA on the Sargantana core (scalar or
  RVV vector), functionally executed by ``repro.align`` and costed by
  the calibrated CPU model.

Both return cycle breakdowns in the *FPGA-prototype sense* (one shared
clock, as the paper measures): speedups are direct cycle ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..align.cigar import Cigar
from ..align.wfa import WfaWorkCounters
from ..align.wfa_vectorized import VectorizedWfaAligner
from ..obs.publish import publish_accelerator_batch
from ..wfasic.accelerator import BatchResult
from ..wfasic.backtrace_cpu import CpuBacktracer, CpuBacktraceWork
from ..wfasic.config import WfasicConfig
from ..wfasic.packets import encode_input_image, round_up_read_len
from ..workloads.generator import SequencePair
from .cpu import SargantanaModel
from .driver import WfasicDevice, WfasicDriver
from .memory import MainMemory

__all__ = ["AcceleratedOutcome", "CpuOutcome", "Soc"]


@dataclass
class AcceleratedOutcome:
    """Result of one accelerated batch (Fig. 4 flow)."""

    batch: BatchResult
    #: Accelerator makespan in cycles (reading + aligning + output).
    accelerator_cycles: int
    #: CPU cycles spent on the backtrace step (0 with backtrace off).
    cpu_backtrace_cycles: int
    #: CPU cycles spent programming/polling the MMIO registers (§3).
    cpu_driver_cycles: int
    #: Per-alignment outcomes keyed by alignment ID.
    scores: dict[int, int]
    success: dict[int, bool]
    cigars: dict[int, Cigar | None]
    backtrace_work: CpuBacktraceWork | None

    @property
    def total_cycles(self) -> int:
        """End-to-end cycles: driver programming, alignment, then the
        CPU backtrace (sequential, §3.1)."""
        return (
            self.cpu_driver_cycles
            + self.accelerator_cycles
            + self.cpu_backtrace_cycles
        )


@dataclass
class CpuOutcome:
    """Result of the software WFA flow on the CPU."""

    cycles: int
    scores: dict[int, int]
    per_pair_cycles: dict[int, int]
    work: WfaWorkCounters = field(default_factory=WfaWorkCounters)


class Soc:
    """The whole chip: Sargantana + WFAsic + 64 MB of main memory."""

    def __init__(
        self,
        config: WfasicConfig | None = None,
        *,
        memory_bytes: int = 64 * 1024 * 1024,
        cpu: SargantanaModel | None = None,
    ) -> None:
        self.config = config or WfasicConfig.paper_default()
        self.memory = MainMemory(memory_bytes)
        self.device = WfasicDevice(self.config, self.memory)
        self.driver = WfasicDriver(self.device, self.memory)
        self.cpu = cpu or SargantanaModel()

    # -- accelerated flow -----------------------------------------------------

    def run_accelerated(
        self,
        pairs: list[SequencePair],
        *,
        backtrace: bool | None = None,
        separate: bool | None = None,
        trace_tid_base: int = 0,
        trace_lane_prefix: str = "",
        trace_base_cycle: int | None = None,
    ) -> AcceleratedOutcome:
        """Fig. 4: CPU stages inputs, WFAsic aligns, CPU backtraces.

        ``backtrace`` defaults to the SoC configuration; ``separate``
        picks the CPU backtrace method and defaults to the §4.5 rule:
        separation only when more than one Aligner interleaves the
        stream.  The three ``trace_*`` knobs pass through to
        :func:`~repro.obs.publish.publish_accelerator_batch` so fleet
        runs can give each chip its own trace lanes anchored at the
        batch's simulated start cycle.
        """
        bt = self.config.backtrace if backtrace is None else backtrace
        if separate is None:
            separate = self.config.num_aligners > 1
        max_read_len = round_up_read_len(
            max((p.max_length for p in pairs), default=1)
        )
        image = encode_input_image(pairs, max_read_len)

        self.memory.reset_allocator()
        accesses_before = self.driver.axi_lite.reads + self.driver.axi_lite.writes
        stream = self.driver.run(image, max_read_len, backtrace=bt, irq=True)
        batch = self.device.last_batch
        assert batch is not None
        # Cycle-stage counters (and, when tracing, the batch schedule on
        # the simulated timeline); CPU-side cycles publish from the
        # SargantanaModel conversion methods themselves.
        publish_accelerator_batch(
            batch,
            tid_base=trace_tid_base,
            lane_prefix=trace_lane_prefix,
            base_cycle=trace_base_cycle,
        )
        register_accesses = (
            self.driver.axi_lite.reads + self.driver.axi_lite.writes
        ) - accesses_before
        driver_cycles = self.cpu.driver_cycles(register_accesses)

        scores = {r.alignment_id: r.score for r in batch.runs}
        success = {r.alignment_id: r.success for r in batch.runs}
        cigars: dict[int, Cigar | None] = {r.alignment_id: None for r in batch.runs}
        cpu_bt_cycles = 0
        bt_work: CpuBacktraceWork | None = None

        if bt:
            cfg = self.config.with_backtrace(True)
            sequences = {p.pair_id: (p.pattern, p.text) for p in pairs}
            results, bt_work = CpuBacktracer(cfg).process(
                stream, sequences, separate=separate
            )
            for res in results:
                cigars[res.alignment_id] = res.cigar
                scores[res.alignment_id] = res.score if res.success else 0
                success[res.alignment_id] = res.success
            cpu_bt_cycles = self.cpu.backtrace_cycles(
                bt_work, num_alignments=len(pairs)
            )

        return AcceleratedOutcome(
            batch=batch,
            accelerator_cycles=batch.total_cycles,
            cpu_backtrace_cycles=cpu_bt_cycles,
            cpu_driver_cycles=driver_cycles,
            scores=scores,
            success=success,
            cigars=cigars,
            backtrace_work=bt_work,
        )

    # -- CPU-only flow -------------------------------------------------------------

    def run_cpu(
        self,
        pairs: list[SequencePair],
        *,
        vector: bool = False,
        backtrace: bool = True,
    ) -> CpuOutcome:
        """The software WFA [14] on the Sargantana core.

        The algorithm really runs (via the vectorised engine, which is
        work-count-identical to the scalar reference); the cycle total
        comes from the calibrated cost model.
        """
        engine = VectorizedWfaAligner(self.config.penalties, keep_backtrace=False)
        total_work = WfaWorkCounters()
        per_pair: dict[int, int] = {}
        scores: dict[int, int] = {}
        total = 0
        for pair in pairs:
            result = engine.align(pair.pattern, pair.text)
            cycles = self.cpu.wfa_cycles(
                result.work, vector=vector, backtrace=backtrace
            )
            per_pair[pair.pair_id] = cycles
            scores[pair.pair_id] = result.score
            total += cycles
            total_work.merge(result.work)
        return CpuOutcome(
            cycles=total, scores=scores, per_pair_cycles=per_pair, work=total_work
        )
