"""The RISC-V SoC substrate (Fig. 3): memory, buses, CPU model, driver.

Public surface:

* :class:`Soc` — the assembled chip with the two §5 execution flows.
* :class:`WfasicDriver` / :class:`WfasicDevice` — the Linux-driver-style
  register-level interface (Fig. 4).
* :class:`SargantanaModel` / :class:`CpuTimings` — the calibrated CPU
  cycle-cost model; :class:`CacheModel` — its memory-boundedness.
* :class:`MainMemory`, :class:`AxiLite`, :class:`AxiFull`,
  :class:`RegisterFile`, :class:`InterruptLine` — the SoC plumbing.
"""

from .axi import AxiFull, AxiLite
from .cache import CacheModel
from .cpu import SARGANTANA_FREQUENCY_HZ, CpuTimings, SargantanaModel
from .driver import DriverError, WfasicDevice, WfasicDriver
from .interrupt import InterruptLine
from .memory import MainMemory, MemoryError_
from .overlap import OverlappedOutcome, run_overlapped
from .mmio import MmioError, Reg, RegisterFile
from .soc import AcceleratedOutcome, CpuOutcome, Soc

__all__ = [
    "AcceleratedOutcome",
    "AxiFull",
    "AxiLite",
    "CacheModel",
    "CpuOutcome",
    "CpuTimings",
    "DriverError",
    "InterruptLine",
    "MainMemory",
    "MemoryError_",
    "MmioError",
    "OverlappedOutcome",
    "Reg",
    "RegisterFile",
    "SARGANTANA_FREQUENCY_HZ",
    "SargantanaModel",
    "Soc",
    "WfasicDevice",
    "WfasicDriver",
    "run_overlapped",
]
