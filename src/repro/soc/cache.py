"""Cache hierarchy model of the Sargantana CPU (§3).

The CPU has a 32 KB L1 data cache and a 512 KB L2.  For the cost model we
do not simulate tags; what Fig. 9/Table 2 need is the *memory-boundedness*
of the software WFA as working sets outgrow the hierarchy ("the CPU
execution of WFA ... is strongly limited by memory accesses as 10K-long
sequence alignment requires a large memory footprint").

:func:`CacheModel.memory_factor` returns a multiplicative stall factor
for compute-bound loops given their working-set size: 1.0 while the set
fits in L2, growing logarithmically beyond it and saturating — the
classic shape of a blocked stencil losing locality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CacheModel"]


@dataclass(frozen=True)
class CacheModel:
    """Capacity-based stall model for the Sargantana hierarchy."""

    l1_bytes: int = 32 * 1024
    l2_bytes: int = 512 * 1024
    #: Extra stall per decade of working set beyond L2 (fitted so the
    #: 10 kbp software WFA lands in the paper's speedup band).
    stall_per_decade: float = 0.35
    #: Saturation: DRAM-bound loops stop getting slower eventually.
    max_factor: float = 1.8

    def __post_init__(self) -> None:
        if self.l1_bytes <= 0 or self.l2_bytes < self.l1_bytes:
            raise ValueError("cache sizes must satisfy 0 < L1 <= L2")

    def memory_factor(self, footprint_bytes: int) -> float:
        """Stall multiplier for a loop with the given working set."""
        if footprint_bytes < 0:
            raise ValueError("footprint must be >= 0")
        if footprint_bytes <= self.l2_bytes:
            return 1.0
        decades = math.log10(footprint_bytes / self.l2_bytes)
        return min(self.max_factor, 1.0 + self.stall_per_decade * decades)

    def fits_l1(self, footprint_bytes: int) -> bool:
        return footprint_bytes <= self.l1_bytes

    def fits_l2(self, footprint_bytes: int) -> bool:
        return footprint_bytes <= self.l2_bytes
