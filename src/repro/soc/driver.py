"""Linux-driver-style API over the memory-mapped interface (§3 / Fig. 4).

The co-design flow: the CPU parses the input and stages it in main
memory, programs the accelerator's registers over AXI-Lite (backtrace
enable, MAX_READ_LEN, DMA source/destination), writes Start, and waits —
polling Idle or taking the completion interrupt.  The accelerator
streams the image in over AXI-Full, aligns, and streams results out.

:class:`WfasicDevice` is the "hardware" side binding a
:class:`~repro.wfasic.WfasicAccelerator` to the register file, bus and
interrupt line; :class:`WfasicDriver` is the "software" side the
examples and benches program against.
"""

from __future__ import annotations

from ..wfasic.accelerator import BatchResult, WfasicAccelerator
from ..wfasic.config import WfasicConfig
from .axi import AxiFull, AxiLite
from .interrupt import InterruptLine
from .memory import MainMemory
from .mmio import Reg, RegisterFile

__all__ = ["WfasicDevice", "WfasicDriver", "DriverError"]


class DriverError(RuntimeError):
    """Misuse of the driver API (bad configuration, premature reads)."""


class WfasicDevice:
    """Hardware side: accelerator + registers + DMA port + interrupt."""

    def __init__(self, config: WfasicConfig, memory: MainMemory) -> None:
        self.base_config = config
        self.registers = RegisterFile()
        self.axi_full = AxiFull(memory)
        self.irq = InterruptLine()
        self.registers.on_start(self._start)
        self.last_batch: BatchResult | None = None

    def _start(self) -> None:
        regs = self.registers
        regs.hw_set(Reg.STATUS_IDLE, 0)
        cfg = self.base_config.with_backtrace(bool(regs.read(Reg.BT_ENABLE)))
        accel = WfasicAccelerator(cfg)
        src = regs.read(Reg.SRC_ADDR)
        size = regs.read(Reg.SRC_SIZE)
        image = self.axi_full.read_stream(src, size)
        result = accel.run_image(image, regs.read(Reg.MAX_READ_LEN))
        out = result.output.as_stream()
        self.axi_full.write_stream(regs.read(Reg.DST_ADDR), out)
        regs.hw_set(Reg.DST_SIZE, len(out))
        regs.hw_set(Reg.STATUS_IDLE, 1)
        self.last_batch = result
        if regs.read(Reg.IRQ_ENABLE):
            self.irq.raise_()


class WfasicDriver:
    """Software side: the standard configure/start/wait/read flow."""

    def __init__(self, device: WfasicDevice, memory: MainMemory) -> None:
        self.device = device
        self.memory = memory
        self.axi_lite = AxiLite(memory, device.registers)
        self._dst_addr: int | None = None
        self.poll_count = 0

    # -- register helpers --------------------------------------------------------

    def _reg_write(self, offset: int, value: int) -> None:
        self.axi_lite.write32(AxiLite.MMIO_BASE + offset, value)

    def _reg_read(self, offset: int) -> int:
        return self.axi_lite.read32(AxiLite.MMIO_BASE + offset)

    # -- the Fig. 4 flow ------------------------------------------------------------

    def configure(
        self,
        image: bytes,
        max_read_len: int,
        *,
        backtrace: bool,
        result_capacity: int,
        irq: bool = False,
    ) -> None:
        """Stage the input image and program the accelerator registers."""
        if max_read_len % 16:
            raise DriverError("MAX_READ_LEN must be divisible by 16 (§4.2)")
        src = self.memory.allocate(len(image))
        self.memory.write(src, image)
        dst = self.memory.allocate(result_capacity)
        self._dst_addr = dst
        self._reg_write(Reg.BT_ENABLE, int(backtrace))
        self._reg_write(Reg.MAX_READ_LEN, max_read_len)
        self._reg_write(Reg.SRC_ADDR, src)
        self._reg_write(Reg.SRC_SIZE, len(image))
        self._reg_write(Reg.DST_ADDR, dst)
        self._reg_write(Reg.IRQ_ENABLE, int(irq))

    def start(self) -> None:
        """Trigger the batch (CPU writes the Start register)."""
        if self._dst_addr is None:
            raise DriverError("configure() must run before start()")
        self._reg_write(Reg.CTRL_START, 1)

    def wait(self) -> None:
        """Wait for completion by polling Idle (§3)."""
        while not self._reg_read(Reg.STATUS_IDLE):
            self.poll_count += 1
        self.poll_count += 1  # the read that observed Idle

    def result_stream(self) -> bytes:
        """The raw result bytes the accelerator wrote to memory."""
        if self._dst_addr is None:
            raise DriverError("no batch configured")
        if not self._reg_read(Reg.STATUS_IDLE):
            raise DriverError("accelerator still busy")
        size = self._reg_read(Reg.DST_SIZE)
        return self.memory.read(self._dst_addr, size)

    def run(
        self, image: bytes, max_read_len: int, *, backtrace: bool, irq: bool = False
    ) -> bytes:
        """configure + start + wait + read, with a generous result region.

        Backtrace streams can dwarf the input (§4.1: ~10 MB per 10 kbp
        pair at 10 % error), so the result region takes all memory left
        after the image.
        """
        capacity = self.memory.remaining - len(image) - 64
        if capacity <= 0:
            raise DriverError("no memory left for the result region")
        self.configure(
            image,
            max_read_len,
            backtrace=backtrace,
            result_capacity=capacity,
            irq=irq,
        )
        self.start()
        self.wait()
        return self.result_stream()
