"""Sargantana CPU cost model (§3).

The paper's Fig. 9 baseline is "the publicly available C implementation
of the WFA [14] executed on the RISC-V CPU of the SoC", measured in clock
cycles on the FPGA prototype; the "vector" variant uses the RVV 0.7.1
SIMD unit.  We substitute a *calibrated operation-cost model*: the real
algorithms run in ``repro.align`` (producing exact scores/CIGARs and
work counters), and this module converts the counted work into cycles.

Calibration (documented in EXPERIMENTS.md): the per-operation constants
below were fitted once so the six Fig. 9 no-backtrace speedups land in
the paper's 143x-1076x band with the right monotonic order; they are not
re-tuned per experiment.  The constants are *plausible microarchitectural
magnitudes* for an in-order 7-stage core running the reference WFA code:
a wavefront cell is ~3 loads + compares + a store (tens of cycles with
cache effects), a character compare a few cycles, and so on.

The backtrace-side constants model the §4.5 CPU code: scanning result
transactions, the data-separation copy (memory-bound, much worse once
the stream outgrows the L2), the origin walk, and match insertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..align.wfa import WfaWorkCounters
from ..obs.publish import publish_cpu_cycles
from ..wfasic.backtrace_cpu import CpuBacktraceWork
from .cache import CacheModel

__all__ = ["CpuTimings", "SargantanaModel", "SARGANTANA_FREQUENCY_HZ"]

#: §3: Sargantana "reaches a frequency of 1.26GHz".
SARGANTANA_FREQUENCY_HZ = 1.26e9


@dataclass(frozen=True)
class CpuTimings:
    """Per-operation cycle costs of the software WFA on Sargantana."""

    # -- scalar WFA ([14] compiled for RV64G) --------------------------------
    #: Cycles per wavefront cell computed (Eq. 3: loads, max tree, store).
    cell_cycles: float = 26.0
    #: Cycles per character comparison in extend().
    compare_cycles: float = 3.3
    #: Loop/bookkeeping cycles per score iteration.
    step_cycles: float = 65.0
    #: Fixed per-alignment cost (setup, allocation, result handling).
    pair_fixed_cycles: float = 1_300.0

    # -- RVV vector WFA (8 x 64-bit lanes, 16-char compare blocks) ------------
    #: Vectorised compute: ~8 cells per vector op plus overhead.
    vector_cell_cycles: float = 4.5
    #: Vectorised extend: one 16-character block per vector compare.
    vector_block_cycles: float = 3.9
    #: Vector loops pay more per-step setup (mask/stripmine logic).
    vector_step_cycles: float = 78.0

    # -- CPU backtrace over the accelerator's result stream (§4.5) ------------
    #: Boundary scan of one 16-byte transaction (no-separation method).
    scan_txn_cycles: float = 5.0
    #: Data separation per transaction while one alignment's stream fits
    #: in the L2 (copy + demux bookkeeping).
    separate_txn_cycles: float = 75.0
    #: Data separation per transaction once a single alignment's stream
    #: outgrows the L2: each gather/scatter access goes to DRAM.
    separate_txn_cycles_dram: float = 1_850.0
    #: Per-alignment setup of the separation step (allocate and zero the
    #: per-ID destination region, build the demux index).
    separate_pair_fixed_cycles: float = 60_000.0
    #: Origin-walk cost per recovered difference operation.
    walk_op_cycles: float = 30.0
    #: Match-insertion cost per emitted CIGAR character.
    match_char_cycles: float = 2.0
    #: Per-alignment fixed backtrace overhead (driver/result bookkeeping,
    #: uncached result-region setup on the in-order core).
    bt_pair_fixed_cycles: float = 12_000.0

    # -- software backtrace of the CPU-only WFA -------------------------------
    #: Per CIGAR character of the in-core software backtrace.
    sw_backtrace_char_cycles: float = 6.0

    # -- driver interactions (§3) ----------------------------------------------
    #: One uncached AXI-Lite register access (read or write).
    mmio_access_cycles: float = 20.0


@dataclass
class SargantanaModel:
    """Cycle-cost conversion for all CPU-side work in the co-design."""

    timings: CpuTimings = field(default_factory=CpuTimings)
    cache: CacheModel = field(default_factory=CacheModel)

    # -- software WFA -----------------------------------------------------------

    def wfa_footprint_bytes(self, work: WfaWorkCounters, *, backtrace: bool) -> int:
        """Working set of the software WFA.

        With backtrace the reference code keeps *all* wavefronts alive
        (4 bytes per allocated cell); score-only keeps the recurrence
        window, proportional to the peak wavefront width.
        """
        if backtrace:
            return 4 * work.cells_allocated
        return 4 * 3 * 10 * max(work.peak_wavefront_width, 1)

    def wfa_cycles(
        self,
        work: WfaWorkCounters,
        *,
        vector: bool = False,
        backtrace: bool = True,
        cigar_length: int | None = None,
    ) -> int:
        """Cycles of one software WFA alignment on the CPU.

        ``cigar_length`` sizes the in-core backtrace term; when unknown it
        is approximated from the extension totals.
        """
        t = self.timings
        if vector:
            blocks = -(-work.extend_comparisons // 16)
            compute = (
                t.vector_cell_cycles * work.cells_computed
                + t.vector_block_cycles * blocks
                + t.vector_step_cycles * work.score_iterations
            )
        else:
            compute = (
                t.cell_cycles * work.cells_computed
                + t.compare_cycles * work.extend_comparisons
                + t.step_cycles * work.score_iterations
            )
        factor = self.cache.memory_factor(
            self.wfa_footprint_bytes(work, backtrace=backtrace)
        )
        cycles = compute * factor + t.pair_fixed_cycles
        if backtrace:
            length = (
                cigar_length
                if cigar_length is not None
                else work.extend_matches + work.wavefront_steps
            )
            cycles += t.sw_backtrace_char_cycles * length
        total = int(cycles)
        publish_cpu_cycles("wfa_vector" if vector else "wfa_scalar", total)
        return total

    # -- accelerator-flow backtrace (§4.5) ----------------------------------------

    def backtrace_cycles(self, work: CpuBacktraceWork, *, num_alignments: int) -> int:
        """Cycles of the CPU backtrace over an accelerator result stream.

        ``work`` comes from :class:`repro.wfasic.CpuBacktracer`; whether
        the data-separation step ran is visible in
        ``work.separation_bytes``.
        """
        t = self.timings
        cycles = t.scan_txn_cycles * work.transactions_scanned
        if work.separation_bytes and num_alignments > 0:
            sep_txns = work.separation_bytes / 10  # 10 payload bytes each
            # Locality is per alignment: the demux streams one source
            # region into one destination region at a time, so the cliff
            # comes when a *single alignment's* data outgrows the L2.
            per_pair_bytes = (work.separation_bytes / num_alignments) * 16 / 10
            per_txn = (
                t.separate_txn_cycles
                if self.cache.fits_l2(int(per_pair_bytes))
                else t.separate_txn_cycles_dram
            )
            cycles += per_txn * sep_txns
            cycles += t.separate_pair_fixed_cycles * num_alignments
        cycles += t.walk_op_cycles * work.walk_ops
        cycles += t.match_char_cycles * work.match_chars
        cycles += t.bt_pair_fixed_cycles * num_alignments
        total = int(cycles)
        publish_cpu_cycles("backtrace", total)
        return total

    # -- input preparation ---------------------------------------------------------

    def input_prepare_cycles(self, image_bytes: int) -> int:
        """CPU cost of staging the input image (Fig. 4 step 1): a
        memory-bound copy/packing pass over the image."""
        total = int(2 * image_bytes)
        publish_cpu_cycles("input_prepare", total)
        return total

    # -- driver programming (§3) ------------------------------------------------------

    def driver_cycles(self, register_accesses: int) -> int:
        """CPU cost of the MMIO configure/start/poll sequence.

        Each AXI-Lite register access is uncached and crosses the bus;
        with ~10 accesses per batch this is negligible against any
        alignment, which is why the paper never itemises it — but the
        model carries it so the accounting is complete.
        """
        if register_accesses < 0:
            raise ValueError("register_accesses must be >= 0")
        total = int(self.timings.mmio_access_cycles * register_accesses)
        publish_cpu_cycles("driver", total)
        return total
