"""AXI bus models (Fig. 3).

Two buses connect the blocks of the SoC:

* **AXI-Lite** — the CPU's path to the accelerator's register file
  (single 32-bit accesses) and to main memory for uncached accesses.
* **AXI-Full** — the 16-byte-wide data path used by the WFAsic DMA and
  by the CPU's L2 cache refills.

These are functional routers with transfer counters; the *timing* of
AXI-Full bursts lives in ``repro.wfasic.dma`` (where Table 1 calibrates
it) and the CPU-side access costs live in ``repro.soc.cpu``.
"""

from __future__ import annotations

from ..wfasic.config import AXI_DATA_BYTES
from .memory import MainMemory
from .mmio import RegisterFile

__all__ = ["AxiLite", "AxiFull"]


class AxiLite:
    """CPU <-> register-file/memory single-word transactions."""

    #: Register space occupies the top of the address map.
    MMIO_BASE = 0xFFFF_0000

    def __init__(self, memory: MainMemory, registers: RegisterFile) -> None:
        self.memory = memory
        self.registers = registers
        self.reads = 0
        self.writes = 0

    def read32(self, addr: int) -> int:
        self.reads += 1
        if addr >= self.MMIO_BASE:
            return self.registers.read(addr - self.MMIO_BASE)
        return int.from_bytes(self.memory.read(addr, 4), "little")

    def write32(self, addr: int, value: int) -> None:
        self.writes += 1
        if addr >= self.MMIO_BASE:
            self.registers.write(addr - self.MMIO_BASE, value)
            return
        self.memory.write(addr, int(value).to_bytes(4, "little"))


class AxiFull:
    """16-byte-wide burst data path to main memory."""

    def __init__(self, memory: MainMemory) -> None:
        self.memory = memory
        self.beats_read = 0
        self.beats_written = 0

    def read_stream(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes as whole beats (size padded up)."""
        padded = -(-size // AXI_DATA_BYTES) * AXI_DATA_BYTES
        self.beats_read += padded // AXI_DATA_BYTES
        return self.memory.read(addr, size)

    def write_stream(self, addr: int, data: bytes) -> None:
        self.beats_written += -(-len(data) // AXI_DATA_BYTES)
        self.memory.write(addr, data)
