"""Set-associative cache simulator — grounding the analytic cache model.

:class:`~repro.soc.cache.CacheModel` is an *analytic* stall model (a
capacity-based factor).  This module provides the mechanism-level ground
truth: an LRU set-associative cache with real tag arrays, plus a memory-
trace generator for the software WFA's access pattern, so the analytic
factors can be validated (and re-fitted if the cache geometry changes)
instead of trusted blindly.

Geometry defaults follow §3: a 32 KB L1D (8-way here, 64 B lines) in
front of a 512 KB L2 (16-way).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheSim", "CacheStats", "Hierarchy", "wfa_trace"]


@dataclass
class CacheStats:
    """Access counters of one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheSim:
    """One LRU set-associative cache level."""

    def __init__(
        self, size_bytes: int, ways: int = 8, line_bytes: int = 64
    ) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be a multiple of ways * line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        # tags[set][way]; -1 = invalid.  lru[set][way] = age (0 = MRU).
        self._tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._age = np.zeros((self.num_sets, ways), dtype=np.int64)
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Access one address; returns True on hit."""
        line = addr // self.line_bytes
        idx = line % self.num_sets
        tag = line // self.num_sets
        self.stats.accesses += 1
        ways = self._tags[idx]
        hit = np.flatnonzero(ways == tag)
        if hit.size:
            way = int(hit[0])
            self._touch(idx, way)
            return True
        self.stats.misses += 1
        victim = int(np.argmax(self._age[idx]))
        self._tags[idx, victim] = tag
        self._touch(idx, victim)
        return False

    def _touch(self, idx: int, way: int) -> None:
        self._age[idx] += 1
        self._age[idx, way] = 0


class Hierarchy:
    """L1 -> L2 -> DRAM with per-level hit latencies."""

    def __init__(
        self,
        *,
        l1_bytes: int = 32 * 1024,
        l2_bytes: int = 512 * 1024,
        l1_hit_cycles: int = 2,
        l2_hit_cycles: int = 12,
        dram_cycles: int = 80,
        line_bytes: int = 64,
    ) -> None:
        self.l1 = CacheSim(l1_bytes, ways=8, line_bytes=line_bytes)
        self.l2 = CacheSim(l2_bytes, ways=16, line_bytes=line_bytes)
        self.l1_hit_cycles = l1_hit_cycles
        self.l2_hit_cycles = l2_hit_cycles
        self.dram_cycles = dram_cycles
        self.total_cycles = 0

    def access(self, addr: int) -> int:
        """Access an address; returns the latency charged."""
        if self.l1.access(addr):
            latency = self.l1_hit_cycles
        elif self.l2.access(addr):
            latency = self.l2_hit_cycles
        else:
            latency = self.dram_cycles
        self.total_cycles += latency
        return latency

    def run_trace(self, addresses: np.ndarray, *, coalesce: bool = False) -> int:
        """Replay a trace; returns the total memory cycles.

        ``coalesce=True`` replays at cache-line granularity, dropping
        consecutive same-line accesses (which would all hit anyway) —
        a 16x faster replay whose hit/miss *counts* are unchanged, at
        the cost of AMAT being per-line rather than per-access.
        """
        if coalesce and len(addresses):
            lines = np.asarray(addresses) // self.l1.line_bytes
            keep = np.ones(len(lines), dtype=bool)
            keep[1:] = lines[1:] != lines[:-1]
            addresses = lines[keep] * self.l1.line_bytes
        for addr in addresses:
            self.access(int(addr))
        return self.total_cycles

    @property
    def amat(self) -> float:
        """Average memory access time over everything replayed so far."""
        # wfalint: disable=W002 — AMAT is a derived ratio, not a counter
        return self.total_cycles / max(self.l1.stats.accesses, 1)


def wfa_trace(
    num_steps: int,
    mean_width: int,
    *,
    backtrace: bool,
    cell_bytes: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """A synthetic address trace of the software WFA's inner loop.

    Per wavefront step the code reads three source wavefronts and writes
    one, each a contiguous vector of ``mean_width`` cells.  With
    ``backtrace`` the vectors are fresh allocations (addresses grow
    forever — the footprint is the whole history); score-only mode reuses
    a window of ten vectors, so the footprint stays bounded.  This is the
    precise access-pattern difference behind the paper's observation that
    10 kbp CPU alignments become memory-bound.
    """
    if num_steps < 0 or mean_width < 1:
        raise ValueError("num_steps must be >= 0, mean_width >= 1")
    rng = np.random.default_rng(seed)
    vec_bytes = mean_width * cell_bytes
    window_slots = 10
    addresses: list[np.ndarray] = []
    for step in range(num_steps):
        if backtrace:
            base_write = step * vec_bytes
        else:
            base_write = (step % window_slots) * vec_bytes
        sources = rng.integers(1, min(step + 1, window_slots) + 1, size=3)
        for src in sources:
            if backtrace:
                base_read = max(step - int(src), 0) * vec_bytes
            else:
                base_read = ((step - int(src)) % window_slots) * vec_bytes
            addresses.append(base_read + np.arange(0, vec_bytes, cell_bytes))
        addresses.append(base_write + np.arange(0, vec_bytes, cell_bytes))
    if backtrace and num_steps:
        # The backtrace walk touches one cold cell per historical step.
        walk = np.arange(num_steps - 1, -1, -1, dtype=np.int64) * vec_bytes
        addresses.append(walk)
    if not addresses:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(addresses)
