"""Publishing helpers: one call per subsystem to light up the registry.

Instrumentation sites throughout the repository (the batch engine, the
``wfasic`` simulator, the Sargantana CPU model, the ASIC physical
model) each call one function here instead of hand-rolling metric
updates.  Everything publishes to the process-default
:class:`~repro.obs.metrics.MetricsRegistry` and, when a tracer is
installed (:func:`repro.obs.trace.install_tracer`), also emits trace
spans.  The functions take the existing result objects duck-typed
(``BatchReport``, ``BatchResult``, ``AsicReport``) so this module
imports nothing from the packages it observes — the observability layer
sits below everyone.

The metric vocabulary emitted here is the reference list in
``docs/observability.md``; add a metric there when you add one here.
"""

from __future__ import annotations

from typing import Any

from .metrics import MetricsRegistry, get_registry
from .trace import COLLECTOR_TID, Tracer, get_tracer

__all__ = [
    "publish_batch_report",
    "publish_accelerator_batch",
    "publish_cpu_cycles",
    "publish_asic_report",
    "publish_fleet_result",
]


def publish_batch_report(
    report: Any, registry: MetricsRegistry | None = None
) -> None:
    """Publish one engine :class:`~repro.engine.BatchReport`.

    Counters reconcile field-for-field with the report (the CLI
    round-trip test asserts exact equality): ``engine_pairs_total`` ==
    ``num_pairs``, ``engine_cache_hits_total`` == ``cache_hits`` and so
    on, all labelled by backend.
    """
    reg = registry or get_registry()
    labels = {"backend": report.backend}
    reg.counter("engine_batches_total", "Batches executed").inc(1, labels)
    for counter, help_text, value in (
        ("engine_pairs_total", "Pairs submitted", report.num_pairs),
        ("engine_pairs_aligned_total", "Pairs a backend aligned", report.pairs_aligned),
        ("engine_cache_hits_total", "Pairs served from the LRU", report.cache_hits),
        ("engine_coalesced_total", "Within-batch duplicate pairs", report.coalesced),
        ("engine_errors_total", "Pairs with an engine error", report.errors),
        ("engine_rejected_total", "Pairs stopped at validation", report.rejected),
        ("engine_retries_total", "Chunk resubmissions", report.retries),
        ("engine_band_fallbacks_total", "Banded pairs re-aligned exact", report.band_fallbacks),
        ("engine_peak_wavefront_bytes_total", "Per-pair peak wavefront bytes, summed", report.peak_wavefront_bytes),
        ("engine_swg_cells_total", "SWG-equivalent DP cells served", report.swg_cells),
    ):
        reg.counter(counter, help_text).inc(value, labels)
    reg.histogram(
        "engine_batch_seconds", "Wall-time per batch"
    ).observe(report.elapsed_seconds, labels)
    reg.gauge(
        "engine_workers", "Configured worker processes"
    ).set(report.workers, labels)


def publish_accelerator_batch(
    batch: Any,
    *,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    base_us: float | None = None,
    tid_base: int = 0,
    lane_prefix: str = "",
    base_cycle: int | None = None,
) -> None:
    """Publish one simulator :class:`~repro.wfasic.BatchResult`.

    Registry side: per-stage cycle totals (``wfasic_cycles_total`` with
    ``stage`` = ``read`` / ``compute`` / ``extend`` / ``other`` /
    ``output``) and per-alignment outcomes.  Tracer side: the batch
    schedule mapped onto the simulated-cycle timeline — per-pair
    Extractor read spans, per-Aligner alignment spans with their
    Compute/Extend split (aggregate cycle counts laid out sequentially
    inside the span — the simulator records totals, not a per-step
    timeline), and the Collector output drain.  ``base_us`` anchors
    cycle 0 on the wall clock; it defaults to "now".

    Fleet runs give each chip its own lanes on the one simulated-cycle
    timeline: ``tid_base`` offsets every track id (chip ``i`` uses
    ``1000 * (i + 1)``), ``lane_prefix`` labels the tracks ("chip 0 · "),
    and ``base_cycle`` anchors the batch at its *simulated* start cycle
    instead of the wall clock — so Perfetto shows the true cross-chip
    overlap (``base_us`` is then ignored).
    """
    reg = registry or get_registry()
    cycles = reg.counter(
        "wfasic_cycles_total", "Simulated accelerator cycles by stage"
    )
    read_total = sum(s.read_end - s.read_start for s in batch.schedule)
    compute_total = sum(r.stats.compute_cycles for r in batch.runs)
    extend_total = sum(r.stats.extend_cycles for r in batch.runs)
    align_total = sum(r.cycles for r in batch.runs)
    cycles.inc(read_total, {"stage": "read"})
    cycles.inc(compute_total, {"stage": "compute"})
    cycles.inc(extend_total, {"stage": "extend"})
    cycles.inc(
        max(align_total - compute_total - extend_total, 0), {"stage": "other"}
    )
    cycles.inc(batch.output_cycles, {"stage": "output"})
    reg.counter(
        "wfasic_makespan_cycles_total", "Batch makespans, summed"
    ).inc(batch.total_cycles)
    reg.counter("wfasic_batches_total", "Accelerator batches").inc(1)
    outcomes = reg.counter(
        "wfasic_alignments_total", "Alignments by hardware success flag"
    )
    for run in batch.runs:
        outcomes.inc(1, {"success": "true" if run.success else "false"})

    tr = tracer or get_tracer()
    if tr is None:
        return
    if base_cycle is not None:
        base = tr.cycles_to_us(base_cycle)
    else:
        base = tr.now_us() if base_us is None else base_us
    tr.name_thread(2, tid_base, f"{lane_prefix}extractor / input path")
    runs_by_id = {run.alignment_id: run for run in batch.runs}
    for sched in batch.schedule:
        tr.name_thread(
            2,
            tid_base + 1 + sched.aligner_index,
            f"{lane_prefix}aligner {sched.aligner_index}",
        )
        tr.cycle_span(
            f"read pair {sched.alignment_id}",
            "wfasic:extractor",
            base,
            sched.read_start,
            sched.read_end,
            tid=tid_base,
            args={"alignment_id": sched.alignment_id},
        )
        run = runs_by_id[sched.alignment_id]
        tid = tid_base + 1 + sched.aligner_index
        tr.cycle_span(
            f"align pair {sched.alignment_id}",
            "wfasic:aligner",
            base,
            sched.read_end,
            sched.align_end,
            tid=tid,
            args={
                "alignment_id": sched.alignment_id,
                "score": run.score,
                "success": run.success,
                "wavefront_steps": run.stats.wavefront_steps,
            },
        )
        # Aggregate sub-spans: the simulator counts Compute/Extend cycles
        # per alignment but not per step, so the split is laid out
        # sequentially inside the alignment span.
        at = sched.read_end
        for stage, stage_cycles in (
            ("compute", run.stats.compute_cycles),
            ("extend", run.stats.extend_cycles),
        ):
            if stage_cycles:
                tr.cycle_span(
                    stage,
                    f"wfasic:{stage}",
                    base,
                    at,
                    at + stage_cycles,
                    tid=tid,
                    args={"alignment_id": sched.alignment_id},
                )
                at += stage_cycles
    if batch.output_cycles:
        tr.name_thread(
            2, tid_base + COLLECTOR_TID, f"{lane_prefix}collector / output path"
        )
        tr.cycle_span(
            "drain results",
            "wfasic:collector",
            base,
            0,
            batch.output_cycles,
            tid=tid_base + COLLECTOR_TID,
            args={"transactions": batch.output.num_transactions},
        )


def publish_cpu_cycles(
    kind: str, cycles: int, registry: MetricsRegistry | None = None
) -> None:
    """Publish Sargantana CPU-model cycles (``soc_cpu_cycles_total``)."""
    reg = registry or get_registry()
    reg.counter(
        "soc_cpu_cycles_total", "Modelled Sargantana cycles by activity"
    ).inc(cycles, {"kind": kind})


def publish_asic_report(
    report: Any, registry: MetricsRegistry | None = None
) -> None:
    """Publish the physical model's headline figures as gauges."""
    reg = registry or get_registry()
    reg.gauge("wfasic_asic_area_mm2", "GF22FDX accelerator area").set(
        report.total_area_mm2
    )
    reg.gauge("wfasic_asic_memory_mb", "On-chip memory").set(report.memory_mb)
    reg.gauge("wfasic_asic_power_w", "Post-PnR power estimate").set(
        report.power_w
    )
    reg.gauge("wfasic_asic_frequency_hz", "Post-PnR frequency").set(
        report.frequency_hz
    )
    reg.gauge(
        "wfasic_asic_memory_macros", "Register-file macro count"
    ).set(report.inventory.total_macros)


def publish_fleet_result(
    result: Any, registry: MetricsRegistry | None = None
) -> None:
    """Publish one fleet run (:class:`~repro.fleet.FleetResult`).

    Fleet-aggregate counters plus per-chip busy cycles labelled by chip
    index; the per-chip trace lanes are emitted by the accelerator
    batches themselves (``publish_accelerator_batch`` with a per-chip
    ``tid_base``), not here.
    """
    reg = registry or get_registry()
    reg.gauge("fleet_chips", "Simulated chips in the fleet").set(
        len(result.chips)
    )
    reg.counter(
        "fleet_pairs_total", "Pairs routed through the fleet"
    ).inc(result.num_pairs - result.unroutable)
    reg.counter(
        "fleet_unroutable_total", "Pairs no chip could accept"
    ).inc(result.unroutable)
    reg.counter(
        "fleet_batches_total", "Micro-batches dispatched to chips"
    ).inc(result.batches)
    reg.counter(
        "fleet_makespan_cycles_total", "Fleet makespans, summed"
    ).inc(result.makespan_cycles)
    busy = reg.counter(
        "fleet_busy_cycles_total", "Simulated busy cycles per chip"
    )
    for chip in result.chips:
        busy.inc(chip.busy_cycles, {"chip": str(chip.index)})
