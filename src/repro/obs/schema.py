"""Documented JSON schemas for everything the observability layer emits.

Three artefact families leave the process as JSON — trace events
(:mod:`repro.obs.trace`), metrics snapshots (:mod:`repro.obs.metrics`)
and run manifests (:mod:`repro.obs.manifest`) — and each has a schema
here, written in a (deliberately small) subset of JSON Schema and
enforced by :func:`validate`, a dependency-free validator.  The schemas
are the contract ``docs/observability.md`` documents and
``tests/obs/`` pins: every event a :class:`~repro.obs.trace.Tracer`
records must validate, and every manifest the CLI or the benchmarks
write must validate before it is written.

Supported schema keywords: ``type`` (with ``"number"`` accepting ints),
``required``, ``properties``, ``additionalProperties`` (schema form),
``items``, ``enum``, ``minimum``.  That subset is all these formats
need; anything fancier belongs in a real dependency, which the
repository deliberately avoids.
"""

from __future__ import annotations

__all__ = [
    "SchemaError",
    "validate",
    "TRACE_EVENT_SCHEMA",
    "TRACE_DOCUMENT_SCHEMA",
    "METRIC_SCHEMA",
    "MANIFEST_SCHEMA",
    "validate_trace_event",
    "validate_trace_document",
    "validate_metrics_snapshot",
    "validate_manifest",
]


class SchemaError(ValueError):
    """A document does not match its schema; ``path`` locates the fault."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path or "$"
        super().__init__(f"{self.path}: {message}")


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check_type(value: object, expected: str, path: str) -> None:
    if expected == "number":
        # bool is an int subclass; a bare True is not a number here.
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(path, f"expected number, got {type(value).__name__}")
        return
    if expected == "integer":
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaError(path, f"expected integer, got {type(value).__name__}")
        return
    cls = _TYPES[expected]
    if expected == "boolean":
        if not isinstance(value, bool):
            raise SchemaError(path, f"expected boolean, got {type(value).__name__}")
        return
    if not isinstance(value, cls) or (
        cls is dict and isinstance(value, bool)
    ):
        raise SchemaError(path, f"expected {expected}, got {type(value).__name__}")


def validate(value: object, schema: dict, path: str = "$") -> None:
    """Validate ``value`` against a schema; raise :class:`SchemaError`.

    Returns ``None`` on success — validation is a gate, not a parse.
    """
    expected = schema.get("type")
    if expected is not None:
        if isinstance(expected, list):
            for candidate in expected:
                try:
                    _check_type(value, candidate, path)
                    break
                except SchemaError:
                    continue
            else:
                raise SchemaError(
                    path, f"expected one of {expected}, got {type(value).__name__}"
                )
        else:
            _check_type(value, expected, path)
    if "enum" in schema and value not in schema["enum"]:
        raise SchemaError(path, f"{value!r} not in {schema['enum']!r}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if not isinstance(value, bool) and value < schema["minimum"]:
            raise SchemaError(path, f"{value!r} < minimum {schema['minimum']!r}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise SchemaError(path, f"missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}")
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, item in value.items():
                if key not in properties:
                    validate(item, extra, f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


#: One Chrome trace event.  ``X`` spans carry ``dur``; metadata (``M``),
#: instants (``i``) and counters (``C``) do not.
TRACE_EVENT_SCHEMA: dict = {
    "type": "object",
    "required": ["ph", "name", "pid", "tid", "ts"],
    "properties": {
        "ph": {"type": "string", "enum": ["X", "M", "i", "C", "B", "E"]},
        "name": {"type": "string"},
        "cat": {"type": "string"},
        "pid": {"type": "integer", "minimum": 0},
        "tid": {"type": "integer", "minimum": 0},
        "ts": {"type": "number", "minimum": 0},
        "dur": {"type": "number", "minimum": 0},
        "s": {"type": "string", "enum": ["t", "p", "g"]},
        "args": {"type": "object"},
    },
}

#: The whole trace file (what ``Tracer.write`` produces).
TRACE_DOCUMENT_SCHEMA: dict = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {"type": "array", "items": TRACE_EVENT_SCHEMA},
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
    },
}

#: One metric entry of a :meth:`MetricsRegistry.snapshot` payload.
METRIC_SCHEMA: dict = {
    "type": "object",
    "required": ["type", "series"],
    "properties": {
        "type": {"type": "string", "enum": ["counter", "gauge", "histogram"]},
        "help": {"type": "string"},
        "series": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["labels", "value"],
                "properties": {
                    "labels": {
                        "type": "object",
                        "additionalProperties": {"type": "string"},
                    },
                    # Scalar for counter/gauge, histogram state otherwise;
                    # the histogram shape is checked by the snapshot
                    # validator below.
                },
            },
        },
    },
}

_HISTOGRAM_VALUE_SCHEMA: dict = {
    "type": "object",
    "required": ["count", "sum", "buckets", "counts"],
    "properties": {
        "count": {"type": "integer", "minimum": 0},
        "sum": {"type": "number"},
        "min": {"type": ["number", "null"]},
        "max": {"type": ["number", "null"]},
        "buckets": {"type": "array", "items": {"type": "number"}},
        "counts": {"type": "array", "items": {"type": "integer"}},
    },
}

#: The run manifest (``docs/observability.md`` documents every field).
MANIFEST_SCHEMA: dict = {
    "type": "object",
    "required": [
        "schema_version",
        "kind",
        "created_unix",
        "tool",
        "run",
        "metrics",
    ],
    "properties": {
        "schema_version": {"type": "integer", "enum": [1]},
        "kind": {"type": "string", "enum": ["run_manifest"]},
        "created_unix": {"type": "number", "minimum": 0},
        "tool": {
            "type": "object",
            "required": ["name", "version"],
            "properties": {
                "name": {"type": "string"},
                "version": {"type": "string"},
            },
        },
        "run": {
            "type": "object",
            "required": ["command", "config", "seed", "dataset"],
            "properties": {
                "command": {"type": "array", "items": {"type": "string"}},
                "config": {"type": "object"},
                "seed": {"type": ["integer", "null"]},
                "git": {
                    "type": ["object", "null"],
                    "required": ["revision", "dirty"],
                    "properties": {
                        "revision": {"type": "string"},
                        "dirty": {"type": "boolean"},
                    },
                },
                "dataset": {
                    "type": "object",
                    "required": ["source", "num_pairs", "fingerprint"],
                    "properties": {
                        "source": {"type": "string"},
                        "num_pairs": {"type": "integer", "minimum": 0},
                        "fingerprint": {"type": "string"},
                        "total_bases": {"type": "integer", "minimum": 0},
                    },
                },
            },
        },
        "report": {"type": ["object", "null"]},
        "metrics": {"type": "object", "additionalProperties": METRIC_SCHEMA},
    },
}


def validate_trace_event(event: dict) -> None:
    """Gate one trace event (raises :class:`SchemaError`)."""
    validate(event, TRACE_EVENT_SCHEMA)
    if event["ph"] == "X" and "dur" not in event:
        raise SchemaError("$", "complete ('X') events require 'dur'")


def validate_trace_document(doc: dict) -> None:
    """Gate a whole trace file, event by event."""
    validate(doc, TRACE_DOCUMENT_SCHEMA)
    for i, event in enumerate(doc["traceEvents"]):
        if event["ph"] == "X" and "dur" not in event:
            raise SchemaError(f"$.traceEvents[{i}]", "'X' events require 'dur'")


def validate_metrics_snapshot(snapshot: dict) -> None:
    """Gate a metrics snapshot, including histogram series shapes."""
    validate(
        snapshot, {"type": "object", "additionalProperties": METRIC_SCHEMA}
    )
    for name, doc in snapshot.items():
        for i, entry in enumerate(doc["series"]):
            value = entry["value"]
            path = f"$.{name}.series[{i}].value"
            if doc["type"] == "histogram":
                validate(value, _HISTOGRAM_VALUE_SCHEMA, path)
                if len(value["counts"]) != len(value["buckets"]) + 1:
                    raise SchemaError(
                        path, "counts must have len(buckets) + 1 slots"
                    )
            else:
                validate(value, {"type": "number"}, path)


def validate_manifest(doc: dict) -> None:
    """Gate a run manifest, including its embedded metrics snapshot."""
    validate(doc, MANIFEST_SCHEMA)
    validate_metrics_snapshot(doc["metrics"])
