"""Run manifests: a machine-readable record of every run.

A :class:`RunManifest` captures what the paper's methodology section
captures in prose — *what exactly ran* (command, configuration, git
revision), *on what data* (a SHA-256 dataset fingerprint, so two runs
can be proven to have aligned the same pairs), and *what it measured*
(the metrics snapshot, plus the engine's batch report) — in one JSON
document validated against :data:`repro.obs.schema.MANIFEST_SCHEMA`.

``repro-wfasic batch --metrics out.json`` writes one per run, and the
benchmark suite writes one next to each ``BENCH_*.json`` it produces,
so every number in the bench trajectory is traceable to a revision,
seed and input fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from .schema import validate_manifest

__all__ = [
    "RunManifest",
    "dataset_fingerprint",
    "git_revision",
    "load_manifest",
]

#: Manifest schema version (bump on breaking field changes).
SCHEMA_VERSION = 1


def dataset_fingerprint(pairs: Iterable[Any]) -> tuple[str, int, int]:
    """Fingerprint a workload: (sha256 hex, num_pairs, total_bases).

    ``pairs`` may hold :class:`~repro.workloads.generator.SequencePair`
    objects or plain ``(pattern, text)`` tuples.  The digest covers
    every base of every pair in order, with separators so boundary
    shifts change the hash.
    """
    digest = hashlib.sha256()
    num_pairs = 0
    total_bases = 0
    for pair in pairs:
        if hasattr(pair, "pattern"):
            pattern, text = pair.pattern, pair.text
        else:
            pattern, text = pair
        digest.update(pattern.encode("ascii"))
        digest.update(b"\x00")
        digest.update(text.encode("ascii"))
        digest.update(b"\x01")
        num_pairs += 1
        total_bases += len(pattern) + len(text)
    return digest.hexdigest(), num_pairs, total_bases


def git_revision(repo_root: str | Path | None = None) -> dict | None:
    """The current git revision and dirty flag, or ``None`` outside git.

    Never raises: a missing ``git`` binary or a non-repository directory
    degrades to ``None`` so manifests can be written anywhere.
    """
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if rev.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return {
            "revision": rev.stdout.strip(),
            "dirty": bool(status.stdout.strip()),
        }
    except (OSError, subprocess.SubprocessError):
        return None


@dataclass
class RunManifest:
    """One run's identity, inputs and measurements (see module docs)."""

    command: list[str]
    config: dict
    dataset: dict
    seed: int | None = None
    git: dict | None = None
    report: dict | None = None
    metrics: dict = field(default_factory=dict)
    created_unix: float = field(default_factory=time.time)
    tool_version: str = "1.0.0"

    @classmethod
    def for_run(
        cls,
        *,
        command: Sequence[object],
        config: dict,
        pairs: Iterable[Any],
        dataset_source: str,
        seed: int | None = None,
        report: dict | None = None,
        metrics: dict | None = None,
        repo_root: str | Path | None = None,
    ) -> "RunManifest":
        """Build a manifest for a batch/benchmark run.

        ``pairs`` is fingerprinted; ``dataset_source`` names where they
        came from (a ``.seq`` path or a ``generated:`` spec); ``report``
        is the JSON view of the run's summary (e.g.
        :meth:`BatchReport.as_dict`); ``metrics`` defaults to the
        process-default registry's snapshot.
        """
        fingerprint, num_pairs, total_bases = dataset_fingerprint(pairs)
        if metrics is None:
            from .metrics import get_registry

            metrics = get_registry().snapshot()
        return cls(
            command=[str(part) for part in command],
            config=config,
            dataset={
                "source": dataset_source,
                "num_pairs": num_pairs,
                "fingerprint": fingerprint,
                "total_bases": total_bases,
            },
            seed=seed,
            git=git_revision(repo_root),
            report=report,
            metrics=metrics,
        )

    def as_dict(self) -> dict:
        """The schema-valid JSON document."""
        doc = {
            "schema_version": SCHEMA_VERSION,
            "kind": "run_manifest",
            "created_unix": self.created_unix,
            "tool": {"name": "repro-wfasic", "version": self.tool_version},
            "run": {
                "command": self.command,
                "config": self.config,
                "seed": self.seed,
                "git": self.git,
                "dataset": self.dataset,
            },
            "report": self.report,
            "metrics": self.metrics,
        }
        validate_manifest(doc)
        return doc

    def write(self, path: str | Path) -> dict:
        """Validate and serialise the manifest; returns the document."""
        doc = self.as_dict()
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return doc


def load_manifest(path: str | Path) -> dict:
    """Read and validate a manifest written by :meth:`RunManifest.write`."""
    doc = json.loads(Path(path).read_text())
    validate_manifest(doc)
    return doc
