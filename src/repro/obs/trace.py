"""Chrome-trace-event export: one timeline for engine and simulator.

:class:`Tracer` records spans in the `Chrome trace event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
(the ``traceEvents`` JSON array), which Perfetto (https://ui.perfetto.dev)
and ``chrome://tracing`` load directly.  Two kinds of time coexist on the
one timeline:

* **wall-clock spans** — engine work measured with ``time.perf_counter``
  (batch, resolve, dispatch, gather, per-chunk worker execution).  On
  Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is system-wide,
  so worker processes can stamp spans that line up with the parent's.
* **simulated-cycle spans** — the accelerator's per-batch schedule
  (Extractor reads, per-Aligner alignments with their Compute/Extend
  split, the Collector output drain), mapped onto microseconds at a
  stated clock (the §5.2 1.1 GHz by default) via
  :meth:`Tracer.cycle_span`.  They land in a separate trace *process*
  ("WFAsic (simulated cycles)") so the two time domains are visually
  distinct but zoomable side by side.

Track layout (``pid``/``tid`` in trace-event terms):

* pid ``1`` — the engine: tid ``0`` is the orchestrating batch loop,
  tids ``>= 1`` are one lane per worker OS pid.
* pid ``2`` — the simulated accelerator: tid ``0`` the Extractor/input
  path, tids ``1 + i`` Aligner ``i``, tid ``999`` the Collector/output
  path.

Every event the tracer emits validates against
``repro.obs.schema.TRACE_EVENT_SCHEMA`` (pinned by
``tests/obs/test_trace.py``).  A process-wide tracer is installed with
:func:`install_tracer` (the CLI ``--trace`` flag does this);
instrumentation sites fetch it with :func:`get_tracer` and no-op when
none is installed.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Tracer",
    "get_tracer",
    "install_tracer",
    "ENGINE_PID",
    "WFASIC_PID",
    "COLLECTOR_TID",
]

#: Trace-process id of wall-clock engine spans.
ENGINE_PID = 1
#: Trace-process id of simulated accelerator cycle spans.
WFASIC_PID = 2
#: Thread id of the Collector/output-path track inside ``WFASIC_PID``.
COLLECTOR_TID = 999

#: §5.2 post-PnR frequency: the default cycle -> wall time mapping.
DEFAULT_CLOCK_HZ = 1.1e9


class Tracer:
    """Collects trace events; writes a Perfetto-loadable JSON document."""

    def __init__(self, *, clock_hz: float = DEFAULT_CLOCK_HZ) -> None:
        if clock_hz <= 0:
            raise ValueError("clock_hz must be > 0")
        self.clock_hz = clock_hz
        self.events: list[dict] = []
        #: Wall-clock origin: event timestamps are relative to creation.
        self._epoch = time.perf_counter()
        self._named_tracks: set[tuple[int, int | None]] = set()
        self.name_process(ENGINE_PID, "engine (wall clock)")
        self.name_process(
            WFASIC_PID, f"WFAsic (simulated cycles @ {clock_hz / 1e9:g} GHz)"
        )

    # -- clock ----------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since this tracer's epoch (event timebase)."""
        return (time.perf_counter() - self._epoch) * 1e6

    def perf_to_us(self, perf_seconds: float) -> float:
        """Map a raw ``time.perf_counter`` stamp onto the event timebase.

        Worker processes stamp chunk starts with their own
        ``perf_counter``; on Linux that clock is system-wide, so the
        parent can place worker spans on its own timeline.
        """
        return (perf_seconds - self._epoch) * 1e6

    def cycles_to_us(self, cycles: float) -> float:
        """Map simulated cycles to microseconds at ``clock_hz``."""
        return cycles / self.clock_hz * 1e6

    # -- metadata -------------------------------------------------------

    def name_process(self, pid: int, name: str) -> None:
        """Label a trace process (a Perfetto track group)."""
        if (pid, None) in self._named_tracks:
            return
        self._named_tracks.add((pid, None))
        self.events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0.0,
                "args": {"name": name},
            }
        )

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        """Label one track inside a trace process (idempotent)."""
        if (pid, tid) in self._named_tracks:
            return
        self._named_tracks.add((pid, tid))
        self.events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "ts": 0.0,
                "args": {"name": name},
            }
        )

    # -- events ---------------------------------------------------------

    def complete(
        self,
        name: str,
        cat: str,
        ts_us: float,
        dur_us: float,
        *,
        pid: int = ENGINE_PID,
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """Record one complete ("X") span at explicit timestamps."""
        self.events.append(
            {
                "ph": "X",
                "name": name,
                "cat": cat,
                "pid": pid,
                "tid": tid,
                "ts": ts_us,
                "dur": max(dur_us, 0.0),
                "args": args or {},
            }
        )

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "engine",
        *,
        tid: int = 0,
        args: dict | None = None,
    ) -> Iterator[None]:
        """Time a wall-clock block: ``with tracer.span("resolve"): ...``."""
        start = self.now_us()
        try:
            yield
        finally:
            self.complete(
                name, cat, start, self.now_us() - start, tid=tid, args=args
            )

    def instant(
        self,
        name: str,
        cat: str = "engine",
        *,
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """Record an instant ("i") marker at the current wall time."""
        self.events.append(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "pid": ENGINE_PID,
                "tid": tid,
                "ts": self.now_us(),
                "s": "t",
                "args": args or {},
            }
        )

    def counter(
        self, name: str, values: dict, *, tid: int = 0, cat: str = "engine"
    ) -> None:
        """Record a counter ("C") sample (Perfetto renders a stacked area)."""
        self.events.append(
            {
                "ph": "C",
                "name": name,
                "cat": cat,
                "pid": ENGINE_PID,
                "tid": tid,
                "ts": self.now_us(),
                "args": dict(values),
            }
        )

    def cycle_span(
        self,
        name: str,
        cat: str,
        base_us: float,
        start_cycle: float,
        end_cycle: float,
        *,
        tid: int,
        args: dict | None = None,
    ) -> None:
        """Record a simulated-cycle span on the accelerator timeline.

        ``base_us`` anchors cycle 0 of this batch on the wall-clock
        timeline (callers pass :meth:`now_us` captured when the
        simulated batch started); the span covers ``[start_cycle,
        end_cycle]`` at ``clock_hz``.
        """
        self.complete(
            name,
            cat,
            base_us + self.cycles_to_us(start_cycle),
            self.cycles_to_us(end_cycle - start_cycle),
            pid=WFASIC_PID,
            tid=tid,
            args=args,
        )

    # -- output ---------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON document Perfetto loads."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "repro-wfasic",
                "clock_hz": self.clock_hz,
            },
        }

    def write(self, path: str | object) -> None:
        """Serialise the trace to ``path``."""
        with open(path, "w", encoding="ascii") as fh:
            json.dump(self.to_dict(), fh, indent=1)
            fh.write("\n")


#: The installed process-wide tracer (None when tracing is off).
_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def install_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or, with ``None``, remove) the process-wide tracer.

    Returns the previously installed tracer so tests can restore it.
    Worker processes never inherit an installed tracer (the engine
    ships only profile dicts across the boundary), so spans recorded
    inside workers surface through the parent's per-chunk spans instead.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous
