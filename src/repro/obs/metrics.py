"""Process-wide metrics registry: counters, gauges, histograms.

The paper's whole evaluation is an exercise in *accounting* — cycles per
stage (Table 1), occupancy per aligner (Fig. 10), backtrace bandwidth
(§4.1) — and before this module that accounting was scattered across
``StageProfiler`` dicts, ``BatchReport`` fields and ad-hoc attributes.
:class:`MetricsRegistry` is the single place every subsystem publishes
to: the engine (``engine_*``), the accelerator simulator (``wfasic_*``)
and the Sargantana CPU model (``soc_cpu_*``).  The full metric
vocabulary is documented in ``docs/observability.md``.

Three metric types, all label-aware:

* **counter** — a monotonically increasing total (``inc``),
* **gauge** — a point-in-time value (``set``),
* **histogram** — a distribution (``observe``) with fixed buckets plus
  count/sum/min/max.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-friendly
dicts, and :func:`merge_snapshots` folds any number of them together —
counters and histograms add, gauges keep the last-written value.  The
merge is **associative and commutative** for counters/histograms, which
is what lets multiprocessing workers snapshot their private registries
and ship them to the parent in any order (the property
``tests/obs/test_metrics.py`` pins).

A process-wide default registry is reachable through
:func:`get_registry`; instrumentation throughout the repository
publishes there unconditionally (the cost is a dict update), and the
CLI decides whether to serialise it (``repro-wfasic batch --metrics``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "merge_snapshots",
    "format_metrics",
]

#: Histogram bucket upper bounds used when none are given: wall-time
#: seconds from 100 us to ~2 minutes, a decade-and-a-half per step.
DEFAULT_BUCKETS = (
    1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2,
    0.1, 0.316, 1.0, 3.16, 10.0, 31.6, 100.0,
)

#: Canonical series key for a label mapping: sorted ``(key, value)``s.
LabelKey = tuple


def _label_key(labels: dict | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _key_labels(key: LabelKey) -> dict:
    return {k: v for k, v in key}


class _Metric:
    """Shared bookkeeping of one named metric across its label series."""

    kind = "?"

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self.series: dict[LabelKey, object] = {}

    def _series_value(self, value: float) -> object:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing total, e.g. ``engine_pairs_total``."""

    kind = "counter"

    def inc(self, amount: float = 1, labels: dict | None = None) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0) + amount

    def value(self, labels: dict | None = None) -> float:
        """Current total of the labelled series (0 if never incremented)."""
        return self.series.get(_label_key(labels), 0)


class Gauge(_Metric):
    """A point-in-time value, e.g. ``wfasic_asic_area_mm2``."""

    kind = "gauge"

    def set(self, value: float, labels: dict | None = None) -> None:
        """Overwrite the labelled series with ``value``."""
        self.series[_label_key(labels)] = value

    def value(self, labels: dict | None = None) -> float:
        """Current value of the labelled series (0 if never set)."""
        return self.series.get(_label_key(labels), 0)


@dataclass
class HistogramState:
    """Accumulated distribution of one histogram series."""

    buckets: tuple
    counts: list = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.counts:
            # One slot per finite bucket plus the +Inf overflow slot.
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class Histogram(_Metric):
    """A bucketed distribution, e.g. ``engine_batch_seconds``."""

    kind = "histogram"

    def __init__(self, name: str, help: str, buckets: tuple = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help)
        self.buckets = tuple(buckets)

    def observe(self, value: float, labels: dict | None = None) -> None:
        """Record one sample into the labelled series."""
        key = _label_key(labels)
        state = self.series.get(key)
        if state is None:
            state = self.series[key] = HistogramState(self.buckets)
        state.observe(value)


class MetricsRegistry:
    """A named collection of metrics with snapshot/merge semantics.

    Metric handles are created on first use (``counter``/``gauge``/
    ``histogram``) and re-returned on every later call with the same
    name; re-registering a name as a different type raises.  All
    mutation goes through a lock so worker threads can share one
    registry; worker *processes* keep their own and ship snapshots.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- handle creation ------------------------------------------------

    def _get(self, name: str, cls, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, Histogram, help, buckets=buckets)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly view of every metric and series.

        Shape (documented in ``docs/observability.md`` and validated by
        ``repro.obs.schema.validate_metrics_snapshot``)::

            {metric_name: {"type": ..., "help": ...,
                           "series": [{"labels": {...}, "value": ...}]}}

        Histogram series values are
        ``{"count", "sum", "min", "max", "buckets", "counts"}`` where
        ``counts[i]`` is the number of samples in ``(buckets[i-1],
        buckets[i]]`` and the final slot is the +Inf overflow.
        """
        out: dict = {}
        with self._lock:
            for name, metric in sorted(self._metrics.items()):
                series = []
                for key, value in sorted(metric.series.items()):
                    if isinstance(value, HistogramState):
                        payload = {
                            "count": value.count,
                            "sum": value.sum,
                            "min": value.min,
                            "max": value.max,
                            "buckets": list(value.buckets),
                            "counts": list(value.counts),
                        }
                    else:
                        payload = value
                    series.append({"labels": _key_labels(key), "value": payload})
                out[name] = {
                    "type": metric.kind,
                    "help": metric.help,
                    "series": series,
                }
        return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold one :meth:`snapshot` payload into this registry.

        Counters and histogram series add; gauges take the incoming
        value (last write wins).  Unknown metric names are created with
        the snapshot's type and help text.
        """
        for name, doc in snapshot.items():
            kind = doc.get("type")
            for entry in doc.get("series", []):
                labels = entry.get("labels") or None
                value = entry["value"]
                if kind == "counter":
                    self.counter(name, doc.get("help", "")).inc(value, labels)
                elif kind == "gauge":
                    self.gauge(name, doc.get("help", "")).set(value, labels)
                elif kind == "histogram":
                    self._merge_histogram_series(name, doc, labels, value)
                else:
                    raise ValueError(f"metric {name!r} has unknown type {kind!r}")

    def _merge_histogram_series(
        self, name: str, doc: dict, labels: dict | None, value: dict
    ) -> None:
        hist = self.histogram(
            name, doc.get("help", ""), buckets=tuple(value["buckets"])
        )
        if hist.buckets != tuple(value["buckets"]):
            raise ValueError(f"histogram {name!r} bucket layouts differ")
        key = _label_key(labels)
        state = hist.series.get(key)
        if state is None:
            state = hist.series[key] = HistogramState(hist.buckets)
        state.count += value["count"]
        state.sum += value["sum"]
        for i, c in enumerate(value["counts"]):
            state.counts[i] += c
        for bound, pick in (("min", min), ("max", max)):
            incoming = value[bound]
            if incoming is not None:
                current = getattr(state, bound)
                setattr(
                    state,
                    bound,
                    incoming if current is None else pick(current, incoming),
                )

    def clear(self) -> None:
        """Drop every metric (tests and long-lived processes)."""
        with self._lock:
            self._metrics.clear()


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge snapshot dicts into one (associative, see module docs)."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge_snapshot(snap)
    return registry.snapshot()


#: The process-wide default registry all instrumentation publishes to.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


def format_metrics(snapshot: dict) -> str:
    """Human-readable table of a metrics snapshot (the CLI footer).

    One line per series: name, labels, and either the scalar value or a
    ``count/sum/mean`` summary for histograms.
    """
    if not snapshot:
        return "metrics: (none recorded)"
    rows: list[str] = []
    width = max(
        (
            len(_series_label(name, entry))
            for name, doc in snapshot.items()
            for entry in doc["series"]
        ),
        default=0,
    )
    for name, doc in sorted(snapshot.items()):
        for entry in doc["series"]:
            label = _series_label(name, entry)
            value = entry["value"]
            if doc["type"] == "histogram":
                mean = value["sum"] / value["count"] if value["count"] else 0.0
                text = (
                    f"count={value['count']} sum={value['sum']:.4f} "
                    f"mean={mean:.4f}"
                )
            elif isinstance(value, float):
                text = f"{value:.4f}".rstrip("0").rstrip(".")
            else:
                text = str(value)
            rows.append(f"{label:<{width}}  {text}")
    return "\n".join(rows)


def _series_label(name: str, entry: dict) -> str:
    labels = entry.get("labels") or {}
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"
