"""Unified observability: metrics, traces and run manifests.

The paper's evaluation currency is cycle counts and per-stage occupancy
(§5, §6); this package is the software analogue — a single layer every
subsystem reports through, so "where do the cycles/seconds go" has one
answer instead of a per-module dict.  Three artefact families:

* :mod:`repro.obs.metrics` — a process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  histograms, labels) with associative snapshot/merge for
  multiprocessing workers;
* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.Tracer` emitting
  Chrome-trace-event JSON (Perfetto-loadable) that carries both
  wall-clock engine spans and the accelerator's simulated-cycle
  schedule on one timeline;
* :mod:`repro.obs.manifest` — a :class:`~repro.obs.manifest.RunManifest`
  (command, config, git revision, seed, dataset fingerprint, metrics
  snapshot) written alongside batch and benchmark runs.

Emission sites call the helpers in :mod:`repro.obs.publish`; the JSON
contracts live in :mod:`repro.obs.schema`; the full metric/trace/
manifest vocabulary is documented in ``docs/observability.md``.  The
CLI surface is ``repro-wfasic batch --trace out.json --metrics
metrics.json`` and ``repro-wfasic metrics`` (the pretty-printer).
"""

from .manifest import RunManifest, dataset_fingerprint, git_revision, load_manifest
from .metrics import (
    MetricsRegistry,
    format_metrics,
    get_registry,
    merge_snapshots,
    set_registry,
)
from .publish import (
    publish_accelerator_batch,
    publish_asic_report,
    publish_batch_report,
    publish_cpu_cycles,
)
from .schema import (
    MANIFEST_SCHEMA,
    TRACE_EVENT_SCHEMA,
    SchemaError,
    validate,
    validate_manifest,
    validate_metrics_snapshot,
    validate_trace_document,
    validate_trace_event,
)
from .trace import (
    COLLECTOR_TID,
    ENGINE_PID,
    WFASIC_PID,
    Tracer,
    get_tracer,
    install_tracer,
)
from .vocabulary import LABEL_KEYS, METRIC_NAMES

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "merge_snapshots",
    "format_metrics",
    "Tracer",
    "get_tracer",
    "install_tracer",
    "ENGINE_PID",
    "WFASIC_PID",
    "COLLECTOR_TID",
    "RunManifest",
    "dataset_fingerprint",
    "git_revision",
    "load_manifest",
    "publish_batch_report",
    "publish_accelerator_batch",
    "publish_cpu_cycles",
    "publish_asic_report",
    "SchemaError",
    "validate",
    "validate_trace_event",
    "validate_trace_document",
    "validate_metrics_snapshot",
    "validate_manifest",
    "TRACE_EVENT_SCHEMA",
    "MANIFEST_SCHEMA",
    "METRIC_NAMES",
    "LABEL_KEYS",
]
