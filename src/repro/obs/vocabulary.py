"""The declared metric vocabulary: every metric name and label key.

``docs/observability.md`` promises operators a *closed* vocabulary —
snapshots from any process merge by ``(name, labels)`` identity
(:func:`repro.obs.metrics.merge_snapshots`), so a typo'd name or an
ad-hoc label key forks a series silently instead of failing.  This
module is the machine-readable half of that promise: ``wfalint``'s
W006 rule holds every ``registry.counter/gauge/histogram`` call site in
``src/`` to these sets (parsing this file, not importing it), and the
docs table and this module must move together.

Adding a metric is a three-line change: the call site, an entry here,
and a row in ``docs/observability.md``.
"""

from __future__ import annotations

__all__ = ["METRIC_NAMES", "LABEL_KEYS"]

#: Every metric name any subsystem may publish.  Grouped as in
#: ``docs/observability.md``: engine, per-stage profiler, accelerator
#: simulator, CPU model, ASIC physical model.
METRIC_NAMES = frozenset({
    # engine (publish_batch_report)
    "engine_batches_total",
    "engine_pairs_total",
    "engine_pairs_aligned_total",
    "engine_cache_hits_total",
    "engine_coalesced_total",
    "engine_errors_total",
    "engine_rejected_total",
    "engine_retries_total",
    "engine_band_fallbacks_total",
    "engine_peak_wavefront_bytes_total",
    "engine_swg_cells_total",
    "engine_batch_seconds",
    "engine_workers",
    # per-stage wall-time (StageProfiler.publish, prefix "engine")
    "engine_stage_seconds_total",
    "engine_stage_calls_total",
    # zero-copy dispatch (engine, shared-memory arena)
    "engine_shm_sequences_total",
    "engine_shm_arena_bytes",
    # alignment service (repro.serve: micro-batching admission control)
    "serve_requests_total",
    "serve_rejected_total",
    "serve_batches_total",
    "serve_request_latency_seconds",
    "serve_batch_size",
    "serve_queue_depth",
    # fleet scheduler (publish_fleet_result)
    "fleet_chips",
    "fleet_pairs_total",
    "fleet_unroutable_total",
    "fleet_batches_total",
    "fleet_makespan_cycles_total",
    "fleet_busy_cycles_total",
    # accelerator simulator (publish_accelerator_batch)
    "wfasic_cycles_total",
    "wfasic_makespan_cycles_total",
    "wfasic_batches_total",
    "wfasic_alignments_total",
    # Sargantana CPU model (publish_cpu_cycles)
    "soc_cpu_cycles_total",
    # ASIC physical model (publish_asic_report)
    "wfasic_asic_area_mm2",
    "wfasic_asic_memory_mb",
    "wfasic_asic_power_w",
    "wfasic_asic_frequency_hz",
    "wfasic_asic_memory_macros",
})

#: Every label key any series may carry.  Label *values* are dynamic
#: (backend names, stage names, pair outcomes); the key set is closed.
LABEL_KEYS = frozenset({
    "backend",  # engine_* — which alignment backend served the batch
    "stage",    # *_stage_* and wfasic_cycles_total — pipeline stage
    "success",  # wfasic_alignments_total — hardware Success flag
    "kind",     # soc_cpu_cycles_total / serve_* — activity or request kind
    "chip",     # fleet_busy_cycles_total — chip index inside a fleet
})
