"""ASCII Gantt rendering of accelerator batch schedules.

Turns a :class:`~repro.wfasic.accelerator.BatchResult` schedule into a
text timeline — one row per Aligner plus the input path — so examples
and debugging sessions can *see* the Fig. 10 behaviour: reads
serialising, alignments overlapping, Aligners idling past Eq. 7's knee.
"""

from __future__ import annotations

from ..wfasic.accelerator import BatchResult

__all__ = ["render_schedule"]


def render_schedule(result: BatchResult, *, width: int = 72) -> str:
    """Render the batch schedule as an ASCII Gantt chart.

    Reads are drawn as ``r`` on the shared input row; each Aligner row
    shows its alignments as digit blocks (the pair's ID modulo 10).
    """
    if width < 16:
        raise ValueError("width must be >= 16")
    if not result.schedule:
        return "(empty batch)"
    span = max(s.align_end for s in result.schedule)
    if span == 0:
        return "(zero-length batch)"
    scale = width / span

    def col(t: int) -> int:
        return min(width - 1, int(t * scale))

    reader_row = [" "] * width
    aligner_rows = {
        idx: [" "] * width
        for idx in sorted({s.aligner_index for s in result.schedule})
    }
    for sched in result.schedule:
        for c in range(col(sched.read_start), col(sched.read_end) + 1):
            reader_row[c] = "r"
        digit = str(sched.alignment_id % 10)
        for c in range(col(sched.read_end), col(sched.align_end) + 1):
            aligner_rows[sched.aligner_index][c] = digit

    lines = [f"cycles 0..{span} ({span / width:.0f} cycles/char)"]
    lines.append(f"{'input':>9} |" + "".join(reader_row))
    for idx, row in aligner_rows.items():
        lines.append(f"aligner {idx:>1} |" + "".join(row))
    return "\n".join(lines)
