"""CSV series export for the paper figures.

The benches print paper-style tables; for downstream plotting, this
module writes the same series as plain CSV files (one per figure), with
a header row naming the series.  No plotting library is used — the CSVs
load directly into matplotlib/gnuplot/a spreadsheet.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["write_csv", "read_csv"]


def write_csv(
    path: str | Path, headers: Sequence[str], rows: Iterable[Sequence]
) -> int:
    """Write a figure's series; returns the number of data rows."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row has {len(row)} cells, header names {len(headers)}"
                )
            writer.writerow(row)
            count += 1
    return count


def read_csv(path: str | Path) -> tuple[list[str], list[list[str]]]:
    """Read back a figure CSV: (headers, rows)."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} is empty")
    return rows[0], rows[1:]
