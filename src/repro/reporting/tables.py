"""Paper-style ASCII tables for benches and EXPERIMENTS.md.

Every benchmark prints the rows/series its table or figure reports, in a
format that can be pasted into EXPERIMENTS.md next to the paper's
numbers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_comparison"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], *, title: str | None = None
) -> str:
    """Render rows as a boxed, right-aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_comparison(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str,
    note: str | None = None,
) -> str:
    """A table with an explanatory footer (paper-vs-measured captions)."""
    out = format_table(headers, rows, title=title)
    if note:
        out += f"\n  note: {note}"
    return out
