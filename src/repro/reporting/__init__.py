"""Paper-style table rendering for benches and EXPERIMENTS.md."""

from .figures import read_csv, write_csv
from .schedule import render_schedule
from .tables import format_comparison, format_table

__all__ = ["format_comparison", "format_table", "read_csv", "render_schedule", "write_csv"]
