"""Command-line interface to the WFAsic reproduction.

Eleven subcommands cover the common flows:

* ``generate`` — write a synthetic ``.seq`` input set (a paper-named set
  or custom length/error parameters);
* ``align`` — run a ``.seq`` file through the accelerated SoC flow or a
  CPU baseline, printing scores/CIGARs and the cycle accounting;
* ``batch`` — the parallel batch alignment engine: shard a ``.seq`` file
  (or a generated workload) across worker processes with result caching,
  emitting JSON/TSV results plus throughput counters.  ``--trace``
  writes a Perfetto-loadable Chrome trace of the run and ``--metrics``
  a run manifest (config, git revision, dataset fingerprint, metrics
  snapshot) — see ``docs/observability.md``;
* ``serve`` — the always-on alignment service: a long-running NDJSON
  socket server feeding every client's requests through a shared
  micro-batching scheduler into one long-lived engine (protocol and
  admission-control contract in ``docs/serving.md``);
* ``submit`` — the scripting client for a running ``serve`` instance:
  submit a pairs file (or one inline pair) and print the responses;
* ``fleet`` — multi-chip capacity planning and design-space exploration:
  ``fleet plan`` inverts the model ("X pairs/s within Y mm² and Z watts
  → chip count + configuration", simulation-verified) and ``fleet
  sweep`` walks the sections × k_max × chip-count grid into a
  Pareto-frontier artifact (the source of every number in
  ``docs/fleet.md``);
* ``metrics`` — pretty-print the metrics snapshot inside a manifest (or
  a bare snapshot file) written by ``batch --metrics``;
* ``report`` — the ASIC (§5.2) or FPGA (§5.3) physical summary of a
  configuration;
* ``stats`` — summarise a ``.seq`` file (realised error profile) and
  run the Eq. 5 preflight against a configuration;
* ``verify`` — a §5.1-style differential campaign;
* ``lint`` — the wfalint domain static-analysis pass (delegates to
  ``python -m tools.wfalint``; needs a repository checkout — see
  ``docs/static-analysis.md``).

The README's command-reference section is generated from the parser by
:func:`format_cli_reference` (``tests/test_cli.py`` pins the sync).

Installed as ``repro-wfasic`` (see ``pyproject.toml``); also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import signal
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Iterator, Sequence

from .align import DEFAULT_PENALTIES, AffinePenalties
from .engine import (
    BatchAlignmentEngine,
    BatchReport,
    EngineConfig,
    backend_names,
    merge_batch_reports,
)
from .fleet import (
    FLEET_POLICIES,
    FleetBudget,
    FleetConfig,
    FleetScheduler,
    SweepGrid,
    plan_capacity,
    run_sweep,
    validate_fleet_sweep,
)
from .obs import (
    MetricsRegistry,
    RunManifest,
    SchemaError,
    Tracer,
    format_metrics,
    install_tracer,
    set_registry,
    validate_manifest,
    validate_metrics_snapshot,
)
from .reporting import format_table
from .serve import AlignmentServer, ServeClient, ServeConfig
from .soc import Soc
from .verify import EquivalenceChecker
from .wfasic import WfasicConfig, asic_report, configs_within_budget
from .wfasic.fpga_model import U280, fpga_report
from .workloads import (
    PairGenerator,
    input_set_names,
    iter_pair_chunks,
    make_input_set,
    read_pairs_file,
    read_seq_file,
    stream_pairs,
    write_seq_file,
)

__all__ = ["main", "build_parser", "format_cli_reference"]


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """The engine-configuration flags shared by ``batch`` and ``serve``."""
    parser.add_argument(
        "--backend", choices=backend_names(), default="vectorized"
    )
    parser.add_argument("-j", "--workers", type=int, default=1)
    parser.add_argument("--chunk-size", type=int, default=16)
    parser.add_argument("--cache-size", type=int, default=4096)
    parser.add_argument(
        "--backtrace", action="store_true", help="recover CIGARs"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="raise on the first per-pair error instead of isolating it",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-chunk timeout on the parallel path (0 disables)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="chunk resubmissions after a timeout or lost worker",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="disable zero-copy shared-memory dispatch (parallel path)",
    )
    parser.add_argument(
        "--penalties",
        metavar="X,O,E",
        default=None,
        help="gap-affine penalties as mismatch,gap_open,gap_extend",
    )
    parser.add_argument(
        "--band",
        type=int,
        default=None,
        metavar="DIAGONALS",
        help="adaptive wavefront band width (band-capable backends "
        "only; a dead band falls back to exact alignment)",
    )


def _engine_config_from_args(args: argparse.Namespace) -> EngineConfig:
    """An :class:`EngineConfig` from the shared engine flags."""
    return EngineConfig(
        backend=args.backend,
        workers=args.workers,
        chunk_size=args.chunk_size,
        penalties=_parse_penalties(args.penalties),
        backtrace=args.backtrace,
        cache_size=args.cache_size,
        strict=args.strict,
        chunk_timeout=args.timeout if args.timeout > 0 else None,
        max_chunk_retries=args.retries,
        shared_memory=not args.no_shm,
        band_width=args.band,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wfasic",
        description="WFAsic (ICPP 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic .seq input set")
    gen.add_argument("output", help="output .seq path")
    gen.add_argument("-n", "--num-pairs", type=int, default=10)
    group = gen.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--set", dest="named_set", choices=input_set_names(), help="paper input set"
    )
    group.add_argument("--length", type=int, help="custom nominal read length")
    gen.add_argument("--error-rate", type=float, default=0.05)
    gen.add_argument("--seed", type=int, default=0)

    aln = sub.add_parser("align", help="align a .seq file")
    aln.add_argument("input", help="input .seq path")
    aln.add_argument(
        "--engine",
        choices=("accel", "cpu-scalar", "cpu-vector"),
        default="accel",
    )
    aln.add_argument("--backtrace", action="store_true", help="recover CIGARs")
    aln.add_argument("--aligners", type=int, default=1)
    aln.add_argument("--parallel-sections", type=int, default=64)
    aln.add_argument("--quiet", action="store_true", help="summary only")

    bat = sub.add_parser("batch", help="parallel batch alignment engine")
    bat.add_argument(
        "input",
        nargs="?",
        help="input path — .seq, FASTA or FASTQ, autodetected "
        "(omit with --generate)",
    )
    bat.add_argument(
        "--generate",
        type=int,
        metavar="LENGTH",
        help="generate a synthetic workload of this read length instead",
    )
    bat.add_argument("-n", "--num-pairs", type=int, default=200)
    bat.add_argument("--error-rate", type=float, default=0.05)
    bat.add_argument("--seed", type=int, default=0)
    bat.add_argument(
        "--long-read",
        action="store_true",
        help="with --generate: the ONT-like indel-heavy long-read "
        "profile (10-100 kbp)",
    )
    bat.add_argument(
        "--stream-chunk",
        type=int,
        default=None,
        metavar="PAIRS",
        help="stream the input file through the engine this many pairs "
        "at a time (bounded memory; incompatible with --metrics)",
    )
    _add_engine_args(bat)
    bat.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage wall-time breakdown after the summary",
    )
    bat.add_argument("--format", choices=("tsv", "json"), default="tsv")
    bat.add_argument(
        "-o", "--output", help="write results to this file (default stdout)"
    )
    bat.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Perfetto-loadable Chrome trace of the run",
    )
    bat.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a run manifest (config, git, dataset fingerprint, metrics)",
    )

    srv = sub.add_parser(
        "serve", help="always-on alignment service (micro-batching)"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=7878, help="TCP port (0 = ephemeral)"
    )
    _add_engine_args(srv)
    srv.add_argument(
        "--batch-window",
        type=float,
        default=2.0,
        metavar="MS",
        help="micro-batch accumulation window in milliseconds "
        "(0 dispatches every request alone)",
    )
    srv.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="requests per dispatched batch (a full batch closes its "
        "window early)",
    )
    srv.add_argument(
        "--queue-depth",
        type=int,
        default=1024,
        help="bounded admission queue; beyond it requests are rejected "
        "queue_full with a retry_after_ms hint",
    )
    srv.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="MS",
        help="default per-request deadline for requests that carry none",
    )
    srv.add_argument(
        "--instances",
        type=int,
        default=1,
        help="engine instances behind the shared queue (up to this many "
        "batches in flight at once)",
    )
    srv.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write 'host port' here once the socket is bound (scripting)",
    )
    srv.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Perfetto-loadable Chrome trace of the session",
    )
    srv.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the session's metrics snapshot (JSON) on shutdown",
    )

    sbm = sub.add_parser(
        "submit", help="submit pairs to a running serve instance"
    )
    sbm.add_argument(
        "input",
        nargs="?",
        help=".seq/FASTA/FASTQ pairs file (omit with --pair or --stats)",
    )
    sbm.add_argument(
        "--pair",
        nargs=2,
        metavar=("PATTERN", "TEXT"),
        help="one inline pair instead of a file",
    )
    sbm.add_argument("--host", default="127.0.0.1")
    sbm.add_argument("--port", type=int, default=7878)
    sbm.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="MS",
        help="per-request deadline in milliseconds",
    )
    sbm.add_argument(
        "--stats",
        action="store_true",
        help="print the server's stats document (JSON) instead of aligning",
    )
    sbm.add_argument("--format", choices=("tsv", "json"), default="tsv")
    sbm.add_argument(
        "-o", "--output", help="write results to this file (default stdout)"
    )

    flt = sub.add_parser(
        "fleet", help="multi-chip capacity planning and design-space sweep"
    )
    flt.add_argument(
        "mode",
        choices=("plan", "sweep"),
        help="plan: minimal fleet meeting a rate within budgets; "
        "sweep: Pareto sweep over sections x k_max x chip count",
    )
    flt.add_argument(
        "--pairs-per-sec",
        type=float,
        default=None,
        metavar="RATE",
        help="plan: required throughput on the workload (required)",
    )
    flt.add_argument(
        "--area",
        type=float,
        default=None,
        metavar="MM2",
        help="plan: total silicon budget in mm2 (default unconstrained)",
    )
    flt.add_argument(
        "--power",
        type=float,
        default=None,
        metavar="WATTS",
        help="plan: total power budget in W (default unconstrained)",
    )
    flt.add_argument(
        "--no-host",
        action="store_true",
        help="plan: area budget covers bare accelerators, not full SoCs "
        "(one Sargantana per chip)",
    )
    flt.add_argument(
        "--set",
        dest="named_set",
        choices=input_set_names(),
        default="100-10%",
        help="workload input set",
    )
    flt.add_argument("-n", "--num-pairs", type=int, default=32)
    flt.add_argument(
        "--batch-pairs",
        type=int,
        default=4,
        help="pairs per routed micro-batch (batches are the unit of "
        "cross-chip overlap)",
    )
    flt.add_argument(
        "--policy",
        choices=FLEET_POLICIES,
        default="least-loaded",
        help="fleet routing policy",
    )
    flt.add_argument(
        "--max-chips",
        type=int,
        default=16,
        help="plan: chip-count search ceiling",
    )
    flt.add_argument(
        "--sections",
        type=int,
        nargs="+",
        default=None,
        metavar="PS",
        help="parallel-section grid values (default 16 32 64 128)",
    )
    flt.add_argument(
        "--k-max",
        type=int,
        nargs="+",
        default=None,
        metavar="K",
        help="k_max grid values (default 512 3998)",
    )
    flt.add_argument(
        "--chips",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="sweep: chip-count grid values (default 1 2 4)",
    )
    flt.add_argument(
        "-o",
        "--output",
        help="write the JSON artifact (plan or sweep document) here",
    )
    flt.add_argument(
        "--trace",
        metavar="PATH",
        help="plan: write a Chrome trace of the verification run with "
        "per-chip lanes",
    )

    met = sub.add_parser(
        "metrics", help="pretty-print a manifest's metrics snapshot"
    )
    met.add_argument("input", help="manifest (or bare snapshot) JSON path")
    met.add_argument(
        "--filter",
        metavar="SUBSTRING",
        default=None,
        help="only show metrics whose name contains this substring",
    )

    rep = sub.add_parser("report", help="physical summary of a configuration")
    rep.add_argument("--what", choices=("asic", "fpga"), default="asic")
    rep.add_argument("--aligners", type=int, default=1)
    rep.add_argument("--parallel-sections", type=int, default=64)
    rep.add_argument("--k-max", type=int, default=3998)

    st = sub.add_parser("stats", help="summarise a .seq input set")
    st.add_argument("input", help="input .seq path")
    st.add_argument("--k-max", type=int, default=3998)
    st.add_argument("--margin", type=float, default=1.1)

    ver = sub.add_parser("verify", help="differential verification campaign")
    ver.add_argument("-n", "--num-pairs", type=int, default=30)
    ver.add_argument("--max-len", type=int, default=100)
    ver.add_argument("--seed", type=int, default=0)

    lnt = sub.add_parser(
        "lint", help="run the wfalint static-analysis pass (checkout only)"
    )
    lnt.add_argument(
        "wfalint_args",
        nargs=argparse.REMAINDER,
        metavar="ARGS",
        help="forwarded to `python -m tools.wfalint` (try `-- --list-rules`)",
    )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.named_set:
        pairs = make_input_set(args.named_set, args.num_pairs, seed_offset=args.seed)
        label = args.named_set
    else:
        gen = PairGenerator(
            length=args.length,
            error_rate=args.error_rate,
            seed=args.seed,
            max_text_length=args.length,
        )
        pairs = gen.batch(args.num_pairs)
        label = f"{args.length}bp-{args.error_rate:.0%}"
    count = write_seq_file(args.output, pairs)
    print(f"wrote {count} pairs ({label}) to {args.output}")
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    pairs = read_seq_file(args.input)
    if not pairs:
        print("input file holds no pairs", file=sys.stderr)
        return 1
    config = WfasicConfig(
        num_aligners=args.aligners,
        parallel_sections=args.parallel_sections,
        backtrace=args.backtrace,
    )
    soc = Soc(config)
    if args.engine == "accel":
        out = soc.run_accelerated(pairs, backtrace=args.backtrace)
        scores, cycles = out.scores, out.total_cycles
        failures = sum(1 for ok in out.success.values() if not ok)
        if not args.quiet:
            for p in pairs:
                line = f"pair {p.pair_id}: score={scores[p.pair_id]}"
                if not out.success[p.pair_id]:
                    line += "  [UNSUPPORTED/FAILED]"
                elif args.backtrace and out.cigars[p.pair_id] is not None:
                    line += f"  cigar={out.cigars[p.pair_id].compact()}"
                print(line)
        print(
            f"{len(pairs)} pairs, {failures} failures, "
            f"{cycles} cycles total ({args.engine}, "
            f"{args.aligners}x{args.parallel_sections}PS, "
            f"backtrace={'on' if args.backtrace else 'off'})"
        )
    else:
        out = soc.run_cpu(pairs, vector=args.engine == "cpu-vector")
        if not args.quiet:
            for p in pairs:
                print(f"pair {p.pair_id}: score={out.scores[p.pair_id]}")
        print(f"{len(pairs)} pairs, {out.cycles} CPU cycles ({args.engine})")
    return 0


def _parse_penalties(spec: str | None) -> AffinePenalties:
    if spec is None:
        return DEFAULT_PENALTIES
    try:
        x, o, e = (int(part) for part in spec.split(","))
        return AffinePenalties(mismatch=x, gap_open=o, gap_extend=e)
    except ValueError as exc:
        raise SystemExit(f"invalid --penalties {spec!r}: {exc}")


def _outcome_rows(pairs, outcomes) -> list[dict]:
    """Result rows for the ``batch`` output document, in input order."""
    return [
        {
            "pair_id": pair.pair_id,
            "score": outcome.score,
            "success": outcome.success,
            "cigar": outcome.cigar,
            "ok": outcome.ok,
            "error_kind": outcome.error_kind,
            "error_msg": outcome.error_msg,
        }
        for pair, outcome in zip(pairs, outcomes)
    ]


@contextmanager
def _interruptible() -> Iterator[None]:
    """Route SIGTERM to :class:`KeyboardInterrupt` while the block runs.

    Streamed runs are long-lived; a supervisor's SIGTERM must take the
    same orderly exit as Ctrl-C — through the engine's context-manager
    teardown (pool join, ``/dev/shm`` arena unlink) and the partial
    report — instead of killing the process mid-dispatch.  Signal
    handlers only install on the main thread; elsewhere (tests calling
    ``main()`` from a worker thread) this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _cmd_batch(args: argparse.Namespace) -> int:
    if (args.input is None) == (args.generate is None):
        print(
            "batch needs an input file or --generate (not both)",
            file=sys.stderr,
        )
        return 2
    if args.long_read and args.generate is None:
        print("--long-read needs --generate LENGTH", file=sys.stderr)
        return 2
    if args.stream_chunk is not None:
        if args.input is None:
            print(
                "--stream-chunk streams a file input, not --generate",
                file=sys.stderr,
            )
            return 2
        if args.metrics:
            print(
                "--stream-chunk is incompatible with --metrics: the run "
                "manifest fingerprints the whole dataset, which streaming "
                "never holds",
                file=sys.stderr,
            )
            return 2
        if args.stream_chunk < 1:
            print("--stream-chunk must be >= 1", file=sys.stderr)
            return 2

    pairs: list = []
    if args.stream_chunk is None:
        if args.input is not None:
            try:
                pairs = read_pairs_file(args.input)
            except ValueError as exc:
                print(f"cannot read input: {exc}", file=sys.stderr)
                return 1
        else:
            try:
                if args.long_read:
                    gen = PairGenerator.long_read(
                        length=args.generate,
                        error_rate=args.error_rate,
                        seed=args.seed,
                        max_text_length=args.generate,
                    )
                else:
                    gen = PairGenerator(
                        length=args.generate,
                        error_rate=args.error_rate,
                        seed=args.seed,
                        max_text_length=args.generate,
                    )
            except ValueError as exc:
                print(f"invalid workload: {exc}", file=sys.stderr)
                return 2
            pairs = gen.batch(args.num_pairs)
        if not pairs:
            print("input file holds no pairs", file=sys.stderr)
            return 1

    try:
        config = _engine_config_from_args(args)
    except ValueError as exc:
        print(f"invalid engine configuration: {exc}", file=sys.stderr)
        return 2

    # Observability: a fresh registry scopes the snapshot to this run
    # (the manifest's counters then reconcile exactly with the report);
    # the tracer is process-wide while the batch runs, restored after.
    if args.metrics or args.trace:
        set_registry(MetricsRegistry())
    tracer = previous_tracer = None
    if args.trace:
        tracer = Tracer()
        previous_tracer = install_tracer(tracer)
    interrupted = False
    try:
        with BatchAlignmentEngine(config) as engine:
            if args.stream_chunk is not None:
                # Bounded-memory ingestion: one long-lived engine (its
                # cache and pool persist), one batch per streamed chunk,
                # the reports folded into a single summary at the end.
                # Ctrl-C / SIGTERM mid-stream must neither leak the
                # engine's /dev/shm arena nor drop the chunks already
                # aligned: the interrupt is caught *inside* the engine's
                # context manager (teardown still runs) and the partial
                # merged report is printed below.
                rows: list[dict] = []
                reports = []
                stream_start = time.perf_counter()
                with _interruptible():
                    try:
                        for chunk in iter_pair_chunks(
                            stream_pairs(args.input), args.stream_chunk
                        ):
                            result = engine.align_batch(chunk)
                            reports.append(result.report)
                            rows += _outcome_rows(chunk, result.outcomes)
                    except KeyboardInterrupt:
                        interrupted = True
                if not reports:
                    if interrupted:
                        print("interrupted before any chunk completed",
                              file=sys.stderr)
                        return 130
                    print("input file holds no pairs", file=sys.stderr)
                    return 1
                # The session's true wall span, not the per-batch sum —
                # the sum would drop the streaming/reading gaps between
                # batches and overstate pairs/s.
                report = merge_batch_reports(
                    reports,
                    wall_seconds=time.perf_counter() - stream_start,
                )
            else:
                result = engine.align_batch(pairs)
                report = result.report
                rows = _outcome_rows(pairs, result.outcomes)
    except (TypeError, ValueError) as exc:
        # Strict mode, a malformed streamed file, or a type error fails
        # the whole batch up front.
        print(f"batch failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if tracer is not None:
            install_tracer(previous_tracer)

    if tracer is not None:
        tracer.write(args.trace)
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if args.metrics:
        source = (
            args.input
            if args.input is not None
            else (
                f"generated:length={args.generate},n={args.num_pairs},"
                f"error={args.error_rate},seed={args.seed}"
            )
        )
        manifest = RunManifest.for_run(
            command=["repro-wfasic"] + list(getattr(args, "argv_", [])),
            config=asdict(config),
            pairs=pairs,
            dataset_source=source,
            seed=args.seed if args.input is None else None,
            report=report.as_dict(),
        )
        manifest.write(args.metrics)
        print(f"wrote run manifest to {args.metrics}", file=sys.stderr)

    if args.format == "json":
        doc = json.dumps(
            {"summary": report.as_dict(), "results": rows}, indent=2
        )
    else:
        lines = ["pair_id\tscore\tsuccess\tcigar"]
        lines += [
            f"{r['pair_id']}\t{r['score']}\t{int(r['success'])}\t"
            f"{r['cigar'] or '.'}"
            for r in rows
        ]
        doc = "\n".join(lines)

    if args.output:
        with open(args.output, "w", encoding="ascii") as fh:
            fh.write(doc + "\n")
    else:
        print(doc)
    # The human-readable counters always go to stdout so the engine's
    # throughput is visible whatever the results format.
    print(report.describe())
    if args.profile:
        print(report.describe_profile())
    if interrupted:
        # The partial results above are real; the exit code still says
        # the stream never reached its end.
        print(
            f"interrupted: results cover the {report.num_pairs} pairs "
            "whose chunks completed",
            file=sys.stderr,
        )
        return 130
    # Per-pair fault isolation keeps the batch alive, but the exit code
    # still tells automation that some pairs errored.
    return 1 if report.errors else 0


async def _serve_session(
    config: EngineConfig,
    serve_config: ServeConfig,
    args: argparse.Namespace,
) -> BatchReport | None:
    """Run one serve session until SIGINT/SIGTERM; the merged report."""
    server = AlignmentServer(
        config, serve_config, host=args.host, port=args.port
    )
    await server.start()
    host, port = server.address
    loop = asyncio.get_running_loop()
    if args.ready_file:
        # File I/O off the loop: the ready-file may live on slow/remote
        # storage, and a stalled write here would freeze every
        # connection the freshly started server is accepting.
        await loop.run_in_executor(
            None,
            functools.partial(
                Path(args.ready_file).write_text,
                f"{host} {port}\n",
                encoding="ascii",
            ),
        )
    print(f"serving on {host}:{port}", file=sys.stderr, flush=True)
    # The loop holds only weak references to tasks: a fire-and-forget
    # shutdown task could be collected mid-flight and never run, so the
    # handler parks it in a set pruned by its done callback.
    shutdown_tasks: set[asyncio.Task[None]] = set()

    def _request_shutdown() -> None:
        task = loop.create_task(server.shutdown())
        shutdown_tasks.add(task)
        task.add_done_callback(shutdown_tasks.discard)

    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, _request_shutdown)
    try:
        await server.wait_closed()
    finally:
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.remove_signal_handler(sig)
    assert server.batcher is not None
    return server.batcher.session_report()


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        config = _engine_config_from_args(args)
        serve_config = ServeConfig(
            batch_window=args.batch_window / 1e3,
            max_batch=args.max_batch,
            max_queue_depth=args.queue_depth,
            default_deadline_ms=args.deadline,
            instances=args.instances,
        )
    except ValueError as exc:
        print(f"invalid serve configuration: {exc}", file=sys.stderr)
        return 2
    # A fresh registry scopes the session's metrics to this serve run;
    # the scheduler publishes to the process registry by default.
    registry = MetricsRegistry()
    set_registry(registry)
    tracer = previous_tracer = None
    if args.trace:
        tracer = Tracer()
        previous_tracer = install_tracer(tracer)
    try:
        report = asyncio.run(_serve_session(config, serve_config, args))
    finally:
        if tracer is not None:
            install_tracer(previous_tracer)
    if tracer is not None:
        tracer.write(args.trace)
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if args.metrics:
        with open(args.metrics, "w", encoding="ascii") as fh:
            json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote metrics snapshot to {args.metrics}", file=sys.stderr)
    if report is not None:
        print(report.describe())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    if not args.stats and (args.input is None) == (args.pair is None):
        print(
            "submit needs a pairs file or --pair (not both), or --stats",
            file=sys.stderr,
        )
        return 2
    try:
        client = ServeClient(args.host, args.port)
    except (ConnectionError, OSError) as exc:
        print(
            f"cannot connect to {args.host}:{args.port}: {exc} "
            "(is `repro-wfasic serve` running?)",
            file=sys.stderr,
        )
        return 1
    with client:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.pair is not None:
            pairs = [(args.pair[0], args.pair[1])]
        else:
            try:
                pairs = [
                    (p.pattern, p.text) for p in read_pairs_file(args.input)
                ]
            except ValueError as exc:
                print(f"cannot read input: {exc}", file=sys.stderr)
                return 1
            if not pairs:
                print("input file holds no pairs", file=sys.stderr)
                return 1
        responses = client.align_many(pairs, deadline_ms=args.deadline)

    if args.format == "json":
        doc = json.dumps({"results": responses}, indent=2)
    else:
        lines = ["id\tok\tscore\tsuccess\tcigar\terror"]
        for r in responses:
            lines.append(
                f"{r.get('id')}\t{int(bool(r.get('ok')))}\t"
                f"{r.get('score') if r.get('score') is not None else '.'}\t"
                f"{int(bool(r.get('success')))}\t{r.get('cigar') or '.'}\t"
                f"{r.get('error_kind') or '.'}"
            )
        doc = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="ascii") as fh:
            fh.write(doc + "\n")
    else:
        print(doc)
    return 0 if all(r.get("ok") for r in responses) else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    # A fresh registry scopes fleet_* counters to this invocation (the
    # candidate-rating runs publish too; the artifact is the product).
    set_registry(MetricsRegistry())
    if args.mode == "plan":
        return _cmd_fleet_plan(args)
    return _cmd_fleet_sweep(args)


def _cmd_fleet_plan(args: argparse.Namespace) -> int:
    if args.pairs_per_sec is None:
        print("fleet plan needs --pairs-per-sec", file=sys.stderr)
        return 2
    try:
        budget = FleetBudget(
            pairs_per_sec=args.pairs_per_sec,
            area_mm2=args.area,
            power_w=args.power,
            include_host=not args.no_host,
        )
        configs = None
        if args.sections or args.k_max:
            configs = configs_within_budget(
                area_budget_mm2=args.area,
                power_budget_w=args.power,
                parallel_sections=tuple(args.sections or (16, 32, 64, 128)),
                k_max_values=tuple(args.k_max or (512, 3998)),
                include_host=not args.no_host,
            )
        plan = plan_capacity(
            budget,
            workload=args.named_set,
            num_pairs=args.num_pairs,
            configs=configs,
            batch_pairs=args.batch_pairs,
            max_chips=args.max_chips,
        )
    except ValueError as exc:
        print(f"invalid plan request: {exc}", file=sys.stderr)
        return 2
    print(plan.describe())
    if args.output:
        with open(args.output, "w", encoding="ascii") as fh:
            json.dump(plan.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote plan to {args.output}", file=sys.stderr)
    if args.trace:
        if not plan.feasible or plan.config is None:
            print("no trace written: plan infeasible", file=sys.stderr)
        else:
            # Re-run just the verification fleet under the tracer so the
            # trace holds one clean run (rating runs would overlap it).
            tracer = Tracer()
            previous = install_tracer(tracer)
            try:
                FleetScheduler(
                    FleetConfig.uniform(
                        plan.chips, plan.config, batch_pairs=args.batch_pairs
                    )
                ).run(make_input_set(args.named_set, args.num_pairs))
            finally:
                install_tracer(previous)
            tracer.write(args.trace)
            print(f"wrote trace to {args.trace}", file=sys.stderr)
    return 0 if plan.feasible else 1


def _cmd_fleet_sweep(args: argparse.Namespace) -> int:
    try:
        grid = SweepGrid(
            parallel_sections=tuple(args.sections or (16, 32, 64, 128)),
            k_max_values=tuple(args.k_max or (512, 3998)),
            chip_counts=tuple(args.chips or (1, 2, 4)),
        )
        doc = run_sweep(
            grid,
            input_set=args.named_set,
            num_pairs=args.num_pairs,
            batch_pairs=args.batch_pairs,
            policy=args.policy,
        )
    except ValueError as exc:
        print(f"invalid sweep request: {exc}", file=sys.stderr)
        return 2
    validate_fleet_sweep(doc)
    rows = [
        [
            f"{p['chips']} x 1x{p['parallel_sections']}PS",
            p["k_max"],
            round(p["soc_area_mm2"], 2),
            round(p["power_w"] * 1e3),
            f"{p['pairs_per_second']:,.0f}",
            round(p["energy_per_pair_j"] * 1e9, 1),
            "*" if p["on_frontier"] else ("FAIL" if p["failed_pairs"] else ""),
        ]
        for p in doc["points"]
    ]
    print(
        format_table(
            ["fleet", "k_max", "SoC mm2", "mW", "pairs/s", "nJ/pair", ""],
            rows,
            title=f"fleet sweep on {doc['workload']['input_set']} "
            f"({doc['workload']['num_pairs']} pairs); "
            f"* = Pareto frontier",
        )
    )
    if args.output:
        with open(args.output, "w", encoding="ascii") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote sweep artifact to {args.output}", file=sys.stderr)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    try:
        with open(args.input, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (ValueError, UnicodeDecodeError) as exc:
        print(f"cannot read metrics file: {exc}", file=sys.stderr)
        return 1
    if isinstance(doc, dict) and doc.get("kind") == "run_manifest":
        try:
            validate_manifest(doc)
        except SchemaError as exc:
            print(f"invalid manifest: {exc}", file=sys.stderr)
            return 1
        run = doc["run"]
        git = run.get("git") or {}
        revision = git.get("revision", "unknown")[:12]
        if git.get("dirty"):
            revision += "+dirty"
        dataset = run["dataset"]
        print(f"command : {' '.join(run['command'])}")
        print(
            f"run     : revision {revision}, seed {run.get('seed')}, "
            f"dataset {dataset['fingerprint'][:12]} "
            f"({dataset['num_pairs']} pairs, {dataset['total_bases']} bases)"
        )
        snapshot = doc.get("metrics") or {}
    else:
        try:
            validate_metrics_snapshot(doc)
        except SchemaError as exc:
            print(f"invalid metrics snapshot: {exc}", file=sys.stderr)
            return 1
        snapshot = doc
    if args.filter:
        snapshot = {
            name: payload
            for name, payload in snapshot.items()
            if args.filter in name
        }
    print(format_metrics(snapshot))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    config = WfasicConfig(
        num_aligners=args.aligners,
        parallel_sections=args.parallel_sections,
        k_max=args.k_max,
        backtrace=False,
    )
    if args.what == "asic":
        rep = asic_report(config)
        rows = [
            ["memory macros", rep.inventory.total_macros],
            ["on-chip memory (MB)", round(rep.memory_mb, 3)],
            ["area (mm2)", round(rep.total_area_mm2, 2)],
            ["frequency (GHz)", rep.frequency_hz / 1e9],
            ["power (mW)", round(rep.power_w * 1000)],
            ["max score (Eq. 6)", config.max_score],
        ]
        print(format_table(["quantity", "value"], rows, title="ASIC report (GF22FDX)"))
    else:
        rep = fpga_report(config, U280)
        rows = [
            ["LUTs", f"{rep.luts} ({rep.lut_utilisation:.0%})"],
            ["FFs", rep.ffs],
            ["BRAM36", f"{rep.bram36:.0f} ({rep.bram_utilisation:.0%})"],
            ["fits U280", rep.fits],
            ["frequency (MHz)", rep.frequency_hz / 1e6],
        ]
        print(format_table(["resource", "value"], rows, title="FPGA report (Alveo U280)"))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    pairs = read_seq_file(args.input)
    if not pairs:
        print("input file holds no pairs", file=sys.stderr)
        return 1
    from .workloads import summarise_pairs
    from .workloads.profile import preflight

    stats = summarise_pairs(pairs)
    print(stats.describe())
    config = WfasicConfig(k_max=args.k_max, backtrace=False)
    ok = preflight(
        config,
        int(stats.mean_pattern_length),
        stats.mean_error_rate,
        margin=args.margin,
    )
    print(
        f"Eq. 5 preflight vs Score_max={config.max_score} "
        f"(margin {args.margin}x): {'SUPPORTED' if ok else 'AT RISK'}"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    checker = EquivalenceChecker(seed=args.seed)
    report = checker.campaign(count=args.num_pairs, max_len=args.max_len)
    print(
        f"checked {report.pairs_checked} pairs against the SWG oracle, "
        f"software WFA and the accelerator backtrace path"
    )
    if report.ok:
        print("all engines agree (penalties "
              f"x={DEFAULT_PENALTIES.mismatch} o={DEFAULT_PENALTIES.gap_open} "
              f"e={DEFAULT_PENALTIES.gap_extend})")
        return 0
    for mismatch in report.mismatches[:10]:
        print(f"MISMATCH pair {mismatch.pair_id} [{mismatch.kind}]: {mismatch.detail}")
    return 1


def _find_wfalint_root() -> Path | None:
    """The checkout root holding ``tools/wfalint``, or ``None``.

    ``tools/`` is repository tooling, not part of the installed package,
    so the ``lint`` subcommand only works from (or under) a checkout:
    the search walks up from the working directory, then from this
    file's own location (covering ``pip install -e`` layouts, where
    ``src/repro`` sits two levels below the repository root).
    """
    candidates = [Path.cwd(), *Path.cwd().parents]
    candidates += list(Path(__file__).resolve().parents)
    for base in candidates:
        if (base / "tools" / "wfalint" / "__init__.py").is_file():
            return base
    return None


def _cmd_lint(args: argparse.Namespace) -> int:
    root = _find_wfalint_root()
    if root is None:
        print(
            "lint: tools/wfalint not found — run inside a repository "
            "checkout (or use `python -m tools.wfalint` from one)",
            file=sys.stderr,
        )
        return 2
    sys.path.insert(0, str(root))
    try:
        from tools.wfalint.cli import main as wfalint_main
    finally:
        sys.path.remove(str(root))
    forwarded = list(args.wfalint_args)
    if forwarded[:1] == ["--"]:
        forwarded = forwarded[1:]
    # Anchor wfalint at the checkout root unless the caller chose one;
    # its default targets (the CI scope under `<root>`) then work from
    # any directory.
    if "--root" not in forwarded:
        forwarded += ["--root", str(root)]
    return int(wfalint_main(forwarded))


def format_cli_reference() -> str:
    """Markdown reference for every subcommand, rendered from the parser.

    The README embeds this between ``CLI-REFERENCE`` markers (see
    ``tools/sync_readme.py``); ``tests/test_cli.py`` fails when the two
    drift.  Rendering walks the parser's actions directly instead of
    ``format_help()`` so the output is identical across Python versions
    (argparse's help formatter changes between releases).
    """
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    help_by_name = {a.dest: a.help for a in sub._choices_actions}
    lines = [f"Commands of `{parser.prog}` (also `python -m repro.cli`):", ""]
    for name, sub_parser in sub.choices.items():
        lines.append(f"#### `{name}` — {help_by_name.get(name, '')}")
        lines.append("")
        lines.append("| argument | default | description |")
        lines.append("| --- | --- | --- |")
        for action in sub_parser._actions:
            if action.dest == "help":
                continue
            lines.append(_format_action_row(action))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _format_action_row(action: argparse.Action) -> str:
    """One markdown table row for one argparse action."""
    if action.option_strings:
        invocation = ", ".join(action.option_strings)
        if action.nargs != 0:
            invocation += f" {_action_metavar(action)}"
    else:
        invocation = _action_metavar(action)
        if action.nargs == "?":
            invocation = f"[{invocation}]"
    if (
        action.default is None
        or action.default is False
        or action.default is argparse.SUPPRESS
    ):
        default = "—"
    else:
        default = f"`{action.default}`"
    description = action.help or ""
    if action.choices is not None:
        choices = ", ".join(f"`{c}`" for c in action.choices)
        description = f"{description} (one of {choices})" if description else (
            f"one of {choices}"
        )
    return f"| `{invocation}` | {default} | {description} |"


def _action_metavar(action: argparse.Action) -> str:
    if action.metavar is not None:
        return action.metavar
    if action.choices is not None:
        return "CHOICE"
    return (action.dest if not action.option_strings else action.dest.upper())


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    # The raw argv is recorded in run manifests (`batch --metrics`).
    args.argv_ = argv
    handlers = {
        "generate": _cmd_generate,
        "align": _cmd_align,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "fleet": _cmd_fleet,
        "metrics": _cmd_metrics,
        "report": _cmd_report,
        "stats": _cmd_stats,
        "verify": _cmd_verify,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except OSError as exc:
        print(f"cannot read input: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
