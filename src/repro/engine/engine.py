"""The parallel batch alignment engine.

This is the software serving layer the ROADMAP's scaling PRs build on:
where the paper instantiates up to 64 hardware aligner sections, the
engine shards a batch of sequence pairs across a ``multiprocessing``
worker pool.  The moving parts, in dispatch order:

1. **Cache resolve** — each pair is looked up in an LRU keyed on
   ``(backend, pattern, text, penalties, backtrace)``; hits never reach
   a worker.
2. **Coalescing** — duplicate misses *within* the batch are collapsed to
   one work item; every duplicate is answered from the first result.
3. **Chunked dispatch** — remaining unique items are grouped into chunks
   of ``chunk_size`` pairs to amortise IPC and handed to the pool; with
   ``workers=1`` the chunk runs in-process with zero IPC.  On the
   parallel path the default is **zero-copy dispatch**: unique sequences
   are interned once into a shared-memory arena
   (:class:`repro.align.SequenceArena`, owned by the engine's
   :class:`repro.align.PackCache`) and workers receive only
   ``(arena_id, offset, length)`` descriptors, writing plain results
   into a per-batch shared :class:`repro.align.ResultRing`; only
   exceptional outcomes ride the pickled reply path.
   ``EngineConfig.shared_memory=False`` restores the fully pickled
   protocol (see ``docs/shared-memory.md``).
4. **Gather + counters** — outcomes are re-ordered to input order and a
   :class:`BatchReport` is filled in: pairs/s, GCUPS (via
   :mod:`repro.metrics.cups`, SWG-equivalent cells so the numbers are
   comparable with the paper's Table 2), cache hit rate and per-worker
   utilisation.

The engine is **fault-isolating** end to end, mirroring the paper's
verification campaign ("sends data in unexpected formats and checks the
CPU does not hang", §5.1): a validation/normalization pass runs before
step 1 (see :mod:`repro.engine.validation`), workers isolate backend
exceptions per pair, and the parallel path survives chunk timeouts and
worker death through bounded resubmission with in-process degradation.
One malformed pair yields one errored :class:`PairOutcome`; it never
costs the batch.  ``EngineConfig.strict`` restores raise-on-first-error
for tests.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Sequence

from ..align.arena import (
    ResultRing,
    SequenceArena,
    SequenceDescriptor,
    cigar_capacity,
    detach_segment,
    read_sequence,
    write_ring_result,
)
from ..align.packing import PackCache
from ..align.penalties import AffinePenalties, DEFAULT_PENALTIES
from ..align.profile import StageProfiler, format_profile
from ..metrics.cups import gcups, swg_equivalent_cells
from ..obs.metrics import get_registry
from ..obs.publish import publish_batch_report
from ..obs.trace import Tracer, get_tracer
from ..workloads.generator import SequencePair
from .backends import (
    AlignmentBackend,
    PairItem,
    PairOutcome,
    backend_names,
    get_backend,
)
from .cache import AlignmentCache
from .validation import (
    ERROR_BACKEND,
    ERROR_INVALID_BASE,
    ERROR_TIMEOUT,
    ERROR_WORKER_LOST,
    classify_pair,
    normalize_pair,
)

__all__ = [
    "EngineConfig",
    "WorkerStats",
    "BatchReport",
    "EngineResult",
    "BatchAlignmentEngine",
    "align_pairs",
    "merge_batch_reports",
]


@dataclass(frozen=True)
class EngineConfig:
    """Static configuration of one engine instance.

    Attributes
    ----------
    backend:
        Name of a registered backend (``scalar``, ``vectorized``,
        ``swg``, ``wfasic``, or anything added via
        :func:`repro.engine.register_backend`).
    workers:
        Worker processes.  ``1`` (the default) runs everything
        in-process — the serial path, with no pool and no IPC.
    chunk_size:
        Pairs per dispatched chunk.  Larger chunks amortise IPC but
        reduce load-balancing granularity.
    penalties:
        Gap-affine penalties applied to every pair.
    backtrace:
        Whether CIGARs are recovered (and cached) alongside scores.
    cache_size:
        LRU capacity in outcomes; ``0`` disables result caching.
    strict:
        ``True`` restores raise-on-first-error (for tests and debugging):
        validation rejections raise :class:`ValueError` and backend or
        pool failures propagate instead of becoming per-pair errored
        outcomes.  Unsupported reads (the §4.2 hardware policy) are a
        well-formed answer and stay per-pair even in strict mode.
    max_read_len:
        Optional read-length cap applied by the shared unsupported-read
        policy at the engine boundary; ``None`` (default) leaves length
        limits to the backends (the ``wfasic`` simulator enforces its
        own ``MAX_READ_LEN`` either way).
    chunk_timeout:
        Seconds to wait for one dispatched chunk before treating it as
        lost (hung backend or dead worker); ``None`` waits forever.
        Only the parallel path uses it.
    max_chunk_retries:
        Resubmissions attempted for a lost chunk before degrading (to
        in-process execution, or per-pair timeout errors).
    shared_memory:
        ``True`` (the default) dispatches parallel chunks zero-copy:
        sequences live in a shared-memory arena, workers get
        ``(arena_id, offset, length)`` descriptors and answer through a
        shared result ring.  ``False`` restores the fully pickled chunk
        protocol.  The serial path (``workers=1``) never uses shared
        memory — there is no boundary to cross.
    band_width:
        Adaptive wavefront band for long reads (``docs/long-reads.md``):
        band-capable backends (``scalar``, ``batched``) trim every
        wavefront to this many diagonals, re-centred each step on the
        furthest-reaching cell, so peak wavefront memory is
        O(band × score) instead of O(length × score).  Results are
        bit-identical to exact WFA whenever the optimal path stays in
        the band; a pair whose band dies out before the end
        (``reached_end=False``) is transparently re-aligned exact and
        counted in :attr:`BatchReport.band_fallbacks`.  A band narrower
        than the alignment's diagonal drift can instead converge at a
        pessimistic — never optimistic — score, so size the band from
        the expected indel imbalance (cached under a band-specific
        key).  ``None`` (default) disables banding; only backends
        declaring ``supports_band`` accept it.
    """

    backend: str = "vectorized"
    workers: int = 1
    chunk_size: int = 16
    penalties: AffinePenalties = field(default_factory=lambda: DEFAULT_PENALTIES)
    backtrace: bool = False
    cache_size: int = 4096
    strict: bool = False
    max_read_len: int | None = None
    chunk_timeout: float | None = 300.0
    max_chunk_retries: int = 1
    shared_memory: bool = True
    band_width: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(backend_names())}"
            )
        if self.band_width is not None:
            if self.band_width < 1:
                raise ValueError("band_width must be >= 1 (or None)")
            if not get_backend(self.backend).supports_band:
                raise ValueError(
                    f"backend {self.backend!r} does not support band_width; "
                    "band-capable backends: "
                    + ", ".join(
                        name
                        for name in backend_names()
                        if get_backend(name).supports_band
                    )
                )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.max_read_len is not None and self.max_read_len < 1:
            raise ValueError("max_read_len must be >= 1 (or None)")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be > 0 (or None)")
        if self.max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")


@dataclass
class WorkerStats:
    """Per-worker accounting for one batch."""

    worker_id: int
    chunks: int = 0
    pairs: int = 0
    busy_seconds: float = 0.0


@dataclass
class BatchReport:
    """Throughput/latency counters for one batch."""

    backend: str
    workers: int
    num_pairs: int
    #: Pairs actually aligned by a backend (after cache hits + coalescing).
    pairs_aligned: int
    cache_hits: int
    #: Within-batch duplicates answered from another item's result.
    coalesced: int
    elapsed_seconds: float
    #: SWG-equivalent DP cells of the batch's *served* pairs (cache hits
    #: included: the engine served them, whatever the mechanism; pairs
    #: rejected or errored at the engine level are excluded, so GCUPS
    #: never counts work that was not done).
    swg_cells: int
    #: Pairs whose outcome is an engine error (``ok=False``: validation
    #: rejection, backend exception, chunk timeout, lost worker).
    errors: int = 0
    #: Pairs stopped at the validation boundary (invalid charset, plus
    #: unsupported reads under the shared §4.2 policy) — never dispatched.
    rejected: int = 0
    #: Chunk resubmissions performed after timeouts / worker death.
    retries: int = 0
    #: Pairs whose banded first pass died out before reaching the end
    #: (``reached_end=False``) and were transparently re-aligned exact
    #: (``EngineConfig.band_width``).  Always 0 when banding is off.
    band_fallbacks: int = 0
    #: Sum over aligned pairs of each pair's peak live wavefront bytes
    #: (``BYTES_PER_CELL`` per stored cell) as reported by band-capable
    #: backends — the capacity-planning number behind the banding PR.
    #: 0 when the backend does not report it.
    peak_wavefront_bytes: int = 0
    worker_stats: list[WorkerStats] = field(default_factory=list)
    #: Per-stage wall-time/call counters (:meth:`StageProfiler.as_dict`):
    #: engine stages (``resolve``/``dispatch``/``execute``/``ipc``/
    #: ``gather``) merged with whatever the backend reported per chunk
    #: (``pack``/``compute``/``extend``/``backtrace``/``retire`` for the
    #: batched backend).  ``dispatch`` is the engine-side payload cost
    #: (descriptor interning, ring setup, payload build), ``execute`` the
    #: in-process or parallel-region wall time and ``ipc`` the slice of
    #: ``execute`` no worker accounts for.
    profile: dict = field(default_factory=dict)

    @property
    def pairs_per_second(self) -> float:
        """Pairs served per wall-clock second."""
        return self.num_pairs / max(self.elapsed_seconds, 1e-9)

    @property
    def gcups(self) -> float:
        """Serving-equivalent GCUPS (Table 2 sense) of the batch."""
        return gcups(self.swg_cells, max(self.elapsed_seconds, 1e-9))

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submitted pairs served from the LRU cache."""
        return self.cache_hits / self.num_pairs if self.num_pairs else 0.0

    @property
    def worker_utilisation(self) -> float:
        """Mean fraction of the batch wall-time the workers were busy."""
        busy = sum(w.busy_seconds for w in self.worker_stats)
        return busy / max(self.elapsed_seconds * self.workers, 1e-9)

    def describe(self) -> str:
        """Multi-line human-readable summary (the CLI footer)."""
        lines = [
            f"backend={self.backend} workers={self.workers}",
            f"pairs={self.num_pairs} aligned={self.pairs_aligned} "
            f"cache_hits={self.cache_hits} coalesced={self.coalesced}",
            f"errors={self.errors} rejected={self.rejected} "
            f"retries={self.retries}",
            f"elapsed={self.elapsed_seconds:.3f}s "
            f"throughput={self.pairs_per_second:.1f} pairs/s "
            f"gcups={self.gcups:.4f}",
            f"cache_hit_rate={self.cache_hit_rate:.1%} "
            f"worker_utilisation={self.worker_utilisation:.1%}",
        ]
        return "\n".join(lines)

    def describe_profile(self) -> str:
        """The per-stage breakdown (the CLI ``--profile`` footer)."""
        return format_profile(self.profile)

    def as_dict(self) -> dict:
        """JSON-friendly view (the CLI ``--format json`` summary)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "num_pairs": self.num_pairs,
            "pairs_aligned": self.pairs_aligned,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "rejected": self.rejected,
            "retries": self.retries,
            "band_fallbacks": self.band_fallbacks,
            "peak_wavefront_bytes": self.peak_wavefront_bytes,
            "swg_cells": self.swg_cells,
            "elapsed_seconds": self.elapsed_seconds,
            "pairs_per_second": self.pairs_per_second,
            "gcups": self.gcups,
            "cache_hit_rate": self.cache_hit_rate,
            "worker_utilisation": self.worker_utilisation,
            "workers_busy_seconds": {
                str(w.worker_id): w.busy_seconds for w in self.worker_stats
            },
            "profile": self.profile,
        }


@dataclass
class EngineResult:
    """Outcome of one :meth:`BatchAlignmentEngine.align_batch` call."""

    #: One outcome per input pair, in input order (``slot`` = input index).
    outcomes: list[PairOutcome]
    report: BatchReport

    @property
    def scores(self) -> list[int]:
        """Alignment scores in input order."""
        return [o.score for o in self.outcomes]


#: What crosses the process boundary for one chunk.  The band width sits
#: *before* the items so degradation helpers can keep addressing the
#: item list as ``payload[-1]`` on both protocols.
ChunkPayload = tuple[str, AffinePenalties, bool, bool, "int | None", list[PairItem]]


def _run_items_isolated(
    backend: AlignmentBackend,
    items: list[PairItem],
    penalties: AffinePenalties,
    backtrace: bool,
) -> list[PairOutcome]:
    """Re-run a poisoned chunk pair-at-a-time, trapping each failure.

    One bad pair yields one errored outcome; every other pair of the
    chunk still gets its real result (the fault-isolation invariant).
    """
    outcomes: list[PairOutcome] = []
    for item in items:
        try:
            outcomes.extend(backend.align_chunk([item], penalties, backtrace))
        except Exception as exc:  # noqa: BLE001 — the isolation boundary
            outcomes.append(
                PairOutcome.error(
                    item[0], ERROR_BACKEND, f"{type(exc).__name__}: {exc}"
                )
            )
    return outcomes


#: What comes back per chunk: worker OS pid, the ``perf_counter`` stamp
#: when the chunk started (comparable across processes on Linux, where
#: ``perf_counter`` is the system-wide ``CLOCK_MONOTONIC``), the busy
#: seconds, the outcomes and the backend's optional stage profile.
ChunkResult = tuple[int, float, float, list[PairOutcome], "dict | None"]


def _run_chunk(payload: ChunkPayload) -> ChunkResult:
    """Worker-side chunk execution (must stay module-level: picklable).

    The whole chunk is tried first (one kernel dispatch, the fast path);
    if the backend throws, the chunk is replayed pair-at-a-time so only
    the offending pair errors.  With ``strict`` the exception propagates
    to the caller instead.
    """
    backend_name, penalties, backtrace, strict, band_width, items = payload
    start = time.perf_counter()
    backend = get_backend(backend_name)
    # The kwarg is only passed when banding is on, so backends with the
    # plain three-argument signature keep working unbanded.
    band_kwargs = {} if band_width is None else {"band_width": band_width}
    try:
        outcomes, profile = backend.align_chunk_profiled(
            items, penalties, backtrace, **band_kwargs
        )
    except Exception:
        if strict:
            raise
        outcomes = _run_items_isolated(backend, items, penalties, backtrace)
        profile = None
    return os.getpid(), start, time.perf_counter() - start, outcomes, profile


#: Zero-copy work item: slot, the pattern/text arena descriptors, and
#: the item's reserved CIGAR window (heap offset, capacity) in the
#: result ring.  Descriptor-sized by design — wfalint's W005
#: descriptor-only contract check keeps buffers out of this alias.
ShmItem = tuple[int, SequenceDescriptor, SequenceDescriptor, int, int]

#: The zero-copy chunk payload: backend, penalties, backtrace, strict,
#: band width, the result-ring segment name, and the descriptor items.
ShmChunkPayload = tuple[
    str, AffinePenalties, bool, bool, "int | None", str, list[ShmItem]
]


def _run_chunk_shm(payload: ShmChunkPayload) -> ChunkResult:
    """Worker-side zero-copy chunk execution (module-level: picklable).

    Sequences are decoded in place from the shared arena, the chunk runs
    through the same backend entry point as the pickled path — so every
    registered backend, test doubles included, works unchanged — and
    plain outcomes are written into the result ring.  Only *exceptional*
    outcomes (engine errors, unsupported reads, a CIGAR that outgrew its
    reserved window, a ring unlinked after a timeout-degrade) ride back
    on the pickled chunk result.
    """
    backend_name, penalties, backtrace, strict, band_width, ring_name, shm_items = (
        payload
    )
    start = time.perf_counter()
    items: list[PairItem] = [
        (slot, read_sequence(a_desc), read_sequence(b_desc))
        for slot, a_desc, b_desc, _, _ in shm_items
    ]
    backend = get_backend(backend_name)
    band_kwargs = {} if band_width is None else {"band_width": band_width}
    try:
        outcomes, profile = backend.align_chunk_profiled(
            items, penalties, backtrace, **band_kwargs
        )
    except Exception:
        if strict:
            raise
        outcomes = _run_items_isolated(backend, items, penalties, backtrace)
        profile = None
    windows = {
        slot: (offset, capacity)
        for slot, _, _, offset, capacity in shm_items
    }
    returned: list[PairOutcome] = []
    try:
        for outcome in outcomes:
            plain = (
                outcome.ok
                and outcome.error_kind is None
                and outcome.error_msg is None
            )
            offset, capacity = windows[outcome.slot]
            if not plain or not write_ring_result(
                ring_name,
                outcome.slot,
                score=outcome.score,
                success=outcome.success,
                cigar=outcome.cigar,
                cigar_offset=offset,
                cigar_capacity=capacity,
            ):
                returned.append(outcome)
    finally:
        # The ring is batch-scoped: the parent unlinks it right after
        # the gather, and a cached worker mapping would pin its memory
        # until the pool dies.  Arena segments stay attached — they are
        # engine-lifetime and reused across batches.
        detach_segment(ring_name)
    return os.getpid(), start, time.perf_counter() - start, returned, profile


def _quarantine_entry(
    payload: ChunkPayload, queue: "multiprocessing.queues.Queue[list[PairOutcome]]"
) -> None:
    """Entry point of a quarantine process: one pair, result via queue."""
    _, _, _, outcomes, _ = _run_chunk(payload)
    queue.put(outcomes)


def _run_item_quarantined(
    payload: ChunkPayload, timeout: float | None
) -> PairOutcome:
    """Run a single-pair chunk in a disposable process.

    Survives anything the pair can do: a Python exception becomes a
    ``backend_error`` outcome (inside :func:`_run_chunk`), a hang is
    terminated after ``timeout`` and a process death is reported as
    ``worker_lost`` — the engine process is never at risk.
    """
    (slot, _, _), = payload[-1]
    ctx = multiprocessing.get_context()
    result_queue = ctx.Queue()
    proc = ctx.Process(
        target=_quarantine_entry, args=(payload, result_queue), daemon=True
    )
    proc.start()
    try:
        proc.join(timeout)
        if proc.is_alive():
            return PairOutcome.error(
                slot, ERROR_TIMEOUT, f"pair exceeded the {timeout}s chunk timeout"
            )
        try:
            # The queue feeder thread may still be flushing right after
            # exit; a short grace get covers that race.
            outcomes = result_queue.get(timeout=5.0)
        except Exception:  # noqa: BLE001 — queue.Empty
            return PairOutcome.error(
                slot,
                ERROR_WORKER_LOST,
                f"worker process died (exit code {proc.exitcode})",
            )
        return outcomes[0]
    finally:
        if proc.is_alive():
            proc.terminate()
            proc.join()
        result_queue.close()


def _merge_ring_outcomes(
    ring: ResultRing,
    chunk_items: list[PairItem],
    returned: list[PairOutcome],
) -> list[PairOutcome]:
    """Combine a zero-copy chunk's pickled outcomes with its ring slots.

    Outcomes that came back on the pickled reply path (errors,
    unsupported reads, overflowed CIGARs, degraded replays) take
    precedence; every other item is reconstructed from its ring record.
    A slot present in neither channel cannot happen under the current
    protocol (a chunk result implies every slot was written or returned,
    and degraded chunks return all their slots), but is answered as
    ``worker_lost`` rather than crashing the gather.
    """
    have = {outcome.slot for outcome in returned}
    merged = list(returned)
    for slot, _, _ in chunk_items:
        if slot in have:
            continue
        record = ring.read(slot)
        if record is None:
            merged.append(
                PairOutcome.error(
                    slot,
                    ERROR_WORKER_LOST,
                    "zero-copy result ring slot was never written",
                )
            )
        else:
            score, success, cigar = record
            merged.append(
                PairOutcome(slot=slot, score=score, success=success, cigar=cigar)
            )
    return merged


@contextmanager
def _timed(
    prof: StageProfiler, tracer: Tracer | None, name: str
) -> Iterator[None]:
    """Time a block into the profiler and, when tracing, as a span."""
    span = tracer.span(name, "engine") if tracer is not None else nullcontext()
    with span, prof.stage(name):
        yield


def _as_sequences(pair: SequencePair | tuple[str, str]) -> tuple[str, str]:
    if isinstance(pair, SequencePair):
        return pair.pattern, pair.text
    pattern, text = pair
    return pattern, text


class BatchAlignmentEngine:
    """Shard a stream of sequence pairs across a worker pool.

    The pool is created lazily on the first parallel batch and reused
    across batches (fork cost is paid once); :meth:`close` — or use as a
    context manager — tears it down.  The result cache likewise persists
    across batches, which is exactly what a long-lived serving process
    wants.
    """

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self.cache = AlignmentCache(self.config.cache_size)
        self._pool: multiprocessing.pool.Pool | None = None
        #: Owner of the zero-copy sequence arena (created lazily on the
        #: first shared-memory dispatch, reused across batches).
        self._arena_pack: PackCache | None = None
        self._shm_seqs_published = 0

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down and unlink the arena (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._arena_pack is not None:
            self._arena_pack.close()
            self._arena_pack = None
            self._shm_seqs_published = 0

    def __enter__(self) -> "BatchAlignmentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(self.config.workers)
        return self._pool

    def _reset_pool(self) -> None:
        """Tear the pool down hard (hung workers included)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _ensure_arena(self) -> PackCache:
        """The arena-owning pack cache, created on first zero-copy use."""
        if self._arena_pack is None:
            # Row caching off: this cache exists to own the arena; the
            # per-worker row caches keep serving the batched kernels.
            self._arena_pack = PackCache(capacity=0, arena=SequenceArena())
        return self._arena_pack

    # -- execution -----------------------------------------------------

    def align_batch(
        self, pairs: Sequence[SequencePair | tuple[str, str]]
    ) -> EngineResult:
        """Align a batch (``SequencePair`` objects or ``(a, b)`` tuples).

        Returns outcomes in input order plus the batch counters.  Never
        raises for per-pair *data* errors unless ``strict``; non-``str``
        sequences are programming errors and raise :class:`TypeError`
        regardless.
        """
        cfg = self.config
        start = time.perf_counter()
        prof = StageProfiler()
        tracer = get_tracer()
        batch_start_us = tracer.now_us() if tracer is not None else 0.0

        outcomes: list[PairOutcome | None] = [None] * len(pairs)
        cache_hits = 0
        rejected = 0
        pending: dict[tuple, list[int]] = {}
        work_items: list[PairItem] = []
        sequences: list[tuple[str, str]] = []

        # 0/1/2 -- validate + normalize, cache resolve, coalescing.
        with _timed(prof, tracer, "resolve"):
            for idx, pair in enumerate(pairs):
                pattern, text = normalize_pair(idx, *_as_sequences(pair))
                sequences.append((pattern, text))
                verdict = classify_pair(pattern, text, cfg.max_read_len)
                if verdict is not None:
                    kind, msg = verdict
                    if kind == ERROR_INVALID_BASE:
                        if cfg.strict:
                            raise ValueError(f"pair {idx}: {msg}")
                        outcomes[idx] = PairOutcome.error(idx, kind, msg)
                    else:
                        outcomes[idx] = PairOutcome.unsupported(idx, kind, msg)
                    rejected += 1
                    continue
                key = AlignmentCache.make_key(
                    cfg.backend,
                    pattern,
                    text,
                    cfg.penalties,
                    cfg.backtrace,
                    cfg.band_width,
                )
                cached = self.cache.get(key)
                if cached is not None:
                    score, success, cigar = cached
                    outcomes[idx] = PairOutcome(idx, score, success, cigar)
                    cache_hits += 1
                    continue
                waiters = pending.get(key)
                if waiters is not None:
                    waiters.append(idx)
                    continue
                pending[key] = [idx]
                # The slot of a work item is its position in work_items, so
                # unordered gathers index straight back into the key list.
                work_items.append((len(work_items), pattern, text))
        keys_in_order = list(pending)
        coalesced = sum(len(w) - 1 for w in pending.values())

        # 3 -- chunked dispatch (fault-tolerant on the parallel path).
        worker_stats: dict[int, WorkerStats] = {}
        chunk_results: list[ChunkResult] = []
        chunks: list[list[PairItem]] = []
        retries = 0
        ring: ResultRing | None = None
        try:
            if work_items:
                with _timed(prof, tracer, "dispatch"):
                    chunks = [
                        work_items[off : off + cfg.chunk_size]
                        for off in range(0, len(work_items), cfg.chunk_size)
                    ]
                    payloads: list[ChunkPayload] = [
                        (
                            cfg.backend,
                            cfg.penalties,
                            cfg.backtrace,
                            cfg.strict,
                            cfg.band_width,
                            chunk,
                        )
                        for chunk in chunks
                    ]
                    shm_payloads: list[ShmChunkPayload] | None = None
                    if cfg.workers > 1 and cfg.shared_memory:
                        ring, shm_payloads = self._build_shm_payloads(chunks)
                exec_start = time.perf_counter()
                if cfg.workers == 1:
                    chunk_results = [_run_chunk(p) for p in payloads]
                elif shm_payloads is not None:
                    chunk_results, retries = self._dispatch_parallel(
                        shm_payloads, _run_chunk_shm, payloads
                    )
                else:
                    chunk_results, retries = self._dispatch_parallel(
                        payloads, _run_chunk, payloads
                    )
                execute_wall = time.perf_counter() - exec_start
                busy_total = sum(busy for _, _, busy, _, _ in chunk_results)
                prof.add("execute", execute_wall, calls=len(payloads))
                # IPC/queueing: parallel-region wall-time not accounted
                # to any worker.  With workers=1 the chunks run
                # in-process, so this is ~0.
                prof.add(
                    "ipc",
                    max(0.0, execute_wall - busy_total),
                    calls=len(payloads),
                )
                if tracer is not None:
                    tracer.complete(
                        "execute",
                        "engine",
                        tracer.perf_to_us(exec_start),
                        execute_wall * 1e6,
                        args={
                            "chunks": len(payloads),
                            "backend": cfg.backend,
                            "zero_copy": shm_payloads is not None,
                        },
                    )

            # 4 -- gather, fill the cache, fan results out to duplicates.
            worker_lanes: dict[int, int] = {}
            with _timed(prof, tracer, "gather"):
                for chunk_items, (
                    worker_id,
                    chunk_start,
                    busy,
                    chunk_outcomes,
                    chunk_profile,
                ) in zip(chunks, chunk_results):
                    if ring is not None:
                        chunk_outcomes = _merge_ring_outcomes(
                            ring, chunk_items, chunk_outcomes
                        )
                    stats = worker_stats.setdefault(
                        worker_id, WorkerStats(worker_id)
                    )
                    stats.chunks += 1
                    stats.pairs += len(chunk_outcomes)
                    stats.busy_seconds += busy
                    prof.merge(chunk_profile)
                    if tracer is not None:
                        lane = worker_lanes.setdefault(
                            worker_id, len(worker_lanes) + 1
                        )
                        tracer.name_thread(1, lane, f"worker {worker_id}")
                        tracer.complete(
                            f"chunk ({len(chunk_outcomes)} pairs)",
                            "engine:chunk",
                            tracer.perf_to_us(chunk_start),
                            busy * 1e6,
                            tid=lane,
                            args={
                                "pairs": len(chunk_outcomes),
                                "backend": cfg.backend,
                                "worker_pid": worker_id,
                            },
                        )
                    for outcome in chunk_outcomes:
                        key = keys_in_order[outcome.slot]
                        self.cache.put_outcome(key, outcome)
                        for idx in pending[key]:
                            outcomes[idx] = replace(outcome, slot=idx)
        finally:
            # The ring is batch-scoped; unlink it even when strict mode
            # raises out of the dispatch, or /dev/shm accrues a segment
            # per failed batch.
            if ring is not None:
                ring.close()

        elapsed = time.perf_counter() - start
        assert all(o is not None for o in outcomes), "engine lost a pair"
        errors = sum(1 for o in outcomes if not o.ok)
        profile_dict = prof.as_dict()
        # Band-capable backends report these as zero-second counter
        # stages riding the per-chunk profile (``StageProfiler.count``);
        # surface them as first-class report fields.
        report = BatchReport(
            backend=cfg.backend,
            workers=cfg.workers,
            num_pairs=len(sequences),
            pairs_aligned=len(work_items),
            cache_hits=cache_hits,
            coalesced=coalesced,
            errors=errors,
            rejected=rejected,
            retries=retries,
            elapsed_seconds=elapsed,
            swg_cells=sum(
                swg_equivalent_cells(len(a), len(b))
                for (a, b), o in zip(sequences, outcomes)
                # Served pairs only: engine-level rejects/errors did no work.
                if o.ok and o.error_kind is None
            ),
            band_fallbacks=int(
                profile_dict.get("band_fallbacks", {}).get("calls", 0)
            ),
            peak_wavefront_bytes=int(
                profile_dict.get("peak_wavefront_bytes", {}).get("calls", 0)
            ),
            worker_stats=sorted(worker_stats.values(), key=lambda w: w.worker_id),
            profile=profile_dict,
        )
        # Publish through the observability layer: counters reconcile
        # field-for-field with the report, and the batch becomes one
        # span on the trace timeline.
        registry = get_registry()
        publish_batch_report(report, registry)
        prof.publish(registry, "engine", {"backend": cfg.backend})
        if self._arena_pack is not None and self._arena_pack.arena is not None:
            arena = self._arena_pack.arena
            fresh = arena.interned - self._shm_seqs_published
            if fresh:
                registry.counter(
                    "engine_shm_sequences_total",
                    "Unique sequences interned into the shared-memory arena",
                ).inc(fresh, {"backend": cfg.backend})
                self._shm_seqs_published = arena.interned
            registry.gauge(
                "engine_shm_arena_bytes",
                "Shared-memory bytes reserved by the sequence arena",
            ).set(arena.allocated_bytes, {"backend": cfg.backend})
        if tracer is not None:
            tracer.complete(
                "batch",
                "engine",
                batch_start_us,
                elapsed * 1e6,
                args={
                    "backend": cfg.backend,
                    "pairs": report.num_pairs,
                    "cache_hits": report.cache_hits,
                    "errors": report.errors,
                },
            )
        return EngineResult(outcomes=list(outcomes), report=report)

    # -- fault-tolerant parallel dispatch ------------------------------

    def _build_shm_payloads(
        self, chunks: list[list[PairItem]]
    ) -> tuple[ResultRing | None, list[ShmChunkPayload] | None]:
        """Descriptor payloads plus the result ring for one batch.

        Interns every unique sequence into the engine-owned arena and
        reserves each item's CIGAR window in a fresh ring.  Returns
        ``(None, None)`` when shared memory is unavailable (``/dev/shm``
        exhausted or unsupported) — the caller then falls back to the
        pickled protocol for this batch, which is always correct, just
        slower.
        """
        cfg = self.config
        total = sum(len(chunk) for chunk in chunks)
        caps = [0] * total
        try:
            pack = self._ensure_arena()
            desc_chunks: list[list[ShmItem]] = []
            for chunk in chunks:
                descs: list[ShmItem] = []
                for slot, pattern, text in chunk:
                    if cfg.backtrace:
                        caps[slot] = cigar_capacity(len(pattern), len(text))
                    descs.append(
                        (
                            slot,
                            pack.descriptor(pattern),
                            pack.descriptor(text),
                            0,  # window filled in below, once the ring exists
                            0,
                        )
                    )
                desc_chunks.append(descs)
            ring = ResultRing(caps)
        except OSError:
            if cfg.strict:
                raise
            return None, None
        payloads: list[ShmChunkPayload] = []
        for descs in desc_chunks:
            items = [
                (slot, a_desc, b_desc, *ring.window(slot))
                for slot, a_desc, b_desc, _, _ in descs
            ]
            payloads.append(
                (
                    cfg.backend,
                    cfg.penalties,
                    cfg.backtrace,
                    cfg.strict,
                    cfg.band_width,
                    ring.name,
                    items,
                )
            )
        return ring, payloads

    def _dispatch_parallel(
        self,
        payloads: Sequence[ChunkPayload] | Sequence[ShmChunkPayload],
        runner: Callable[..., ChunkResult],
        plain_payloads: list[ChunkPayload],
    ) -> tuple[list[ChunkResult], int]:
        """Run chunks on the pool, surviving timeouts and worker death.

        ``payloads`` and ``runner`` are either the pickled protocol
        (``_run_chunk``) or the zero-copy one (``_run_chunk_shm``);
        ``plain_payloads`` always carries the pickled equivalents so the
        degradation paths — which replay *in this process or a
        disposable quarantine process*, where attaching shared memory
        buys nothing — stay protocol-independent.

        Every chunk is submitted up front; each is then gathered with
        ``chunk_timeout``.  A chunk whose result never arrives — hung
        backend, or a worker that died and took the task with it (the
        pool respawns the *worker*, but the task is lost) — is
        resubmitted up to ``max_chunk_retries`` times, then degraded:
        per-pair ``timeout`` errors if it kept timing out (re-running a
        possibly-hanging chunk in-process would hang the engine), or an
        in-process isolated replay for everything else.  If the pool
        cannot be created at all, the whole batch runs in-process.
        Returns the chunk results (in payload order) plus the
        resubmission count.
        """
        cfg = self.config
        retries = 0
        results: list[ChunkResult] = []
        try:
            pool = self._ensure_pool()
        except OSError:
            if cfg.strict:
                raise
            # Pool unusable: graceful degradation to in-process execution.
            return [_run_chunk(p) for p in plain_payloads], retries

        handles = [
            (payload, plain, pool.apply_async(runner, (payload,)))
            for payload, plain in zip(payloads, plain_payloads)
        ]
        saw_timeout = False
        for payload, plain, handle in handles:
            attempts = 0
            while True:
                try:
                    results.append(handle.get(cfg.chunk_timeout))
                    break
                except Exception as exc:  # noqa: BLE001 — pool boundary
                    timed_out = isinstance(exc, multiprocessing.TimeoutError)
                    saw_timeout |= timed_out
                    if cfg.strict:
                        raise
                    if attempts < cfg.max_chunk_retries:
                        attempts += 1
                        retries += 1
                        handle = pool.apply_async(runner, (payload,))
                        continue
                    results.append(self._degrade_chunk(plain, timed_out))
                    break
        if saw_timeout:
            # Hung workers may still occupy pool slots; start clean next
            # batch rather than inheriting a crippled pool.
            self._reset_pool()
        return results, retries

    def _degrade_chunk(
        self, payload: ChunkPayload, timed_out: bool
    ) -> ChunkResult:
        """Last resort for a chunk the pool kept losing.

        The chunk is replayed pair-at-a-time, each pair in its own
        disposable *quarantine* process: a pair that hangs or kills its
        process errors alone (``timeout`` / ``worker_lost``) while every
        healthy pair of the chunk still comes back with its real result.
        Running the chunk in the engine process instead would risk the
        engine itself on exactly the input that already killed a worker.
        """
        backend_name, penalties, backtrace, strict, band_width, items = payload
        start = time.perf_counter()
        outcomes = [
            _run_item_quarantined(
                (backend_name, penalties, backtrace, strict, band_width, [item]),
                self.config.chunk_timeout,
            )
            for item in items
        ]
        return os.getpid(), start, time.perf_counter() - start, outcomes, None


def align_pairs(
    pairs: Sequence[SequencePair | tuple[str, str]],
    *,
    backend: str = "vectorized",
    workers: int = 1,
    backtrace: bool = False,
    penalties: AffinePenalties = DEFAULT_PENALTIES,
    chunk_size: int = 16,
    cache_size: int = 4096,
    strict: bool = False,
    max_read_len: int | None = None,
    chunk_timeout: float | None = 300.0,
    max_chunk_retries: int = 1,
    shared_memory: bool = True,
    band_width: int | None = None,
) -> EngineResult:
    """One-shot convenience wrapper around :class:`BatchAlignmentEngine`."""
    config = EngineConfig(
        backend=backend,
        workers=workers,
        chunk_size=chunk_size,
        penalties=penalties,
        backtrace=backtrace,
        cache_size=cache_size,
        strict=strict,
        max_read_len=max_read_len,
        chunk_timeout=chunk_timeout,
        max_chunk_retries=max_chunk_retries,
        shared_memory=shared_memory,
        band_width=band_width,
    )
    with BatchAlignmentEngine(config) as engine:
        return engine.align_batch(pairs)


def merge_batch_reports(
    reports: Sequence[BatchReport], *, wall_seconds: float | None = None
) -> BatchReport:
    """Fold the per-batch reports of a long-lived session into one summary.

    The CLI's streaming ingestion path (``--stream-chunk``) and the
    serving layer (``repro-wfasic serve``) align one bounded batch at a
    time through a single long-lived engine; this combines their reports
    as if the session had been one batch: counters and profiles sum,
    worker busy-time merges per worker, and the derived rates (pairs/s,
    GCUPS, utilisation) fall out of the summed fields.

    ``wall_seconds`` is the session's *wall-clock span*, measured by the
    caller around the whole run, and is what ``elapsed_seconds`` (and so
    every derived rate) is set to when given.  The fallback — summing
    the per-batch wall-times — is only correct when batches are strictly
    serial and back-to-back: the moment two batches overlap in time
    (a concurrent server) or idle gaps sit between them, the sum deflates
    or inflates pairs/s, GCUPS and worker utilisation.  Callers that
    know their span should always pass it; the sum remains the
    documented fallback for plain serial merges with no clock of their
    own.  Raises :class:`ValueError` on an empty sequence or a negative
    ``wall_seconds``.
    """
    if not reports:
        raise ValueError("merge_batch_reports needs at least one report")
    if wall_seconds is not None and wall_seconds < 0:
        raise ValueError("wall_seconds must be >= 0 (or None)")
    first = reports[0]
    profile: dict = {}
    workers: dict[int, WorkerStats] = {}
    for rep in reports:
        for stage, entry in rep.profile.items():
            slot = profile.setdefault(stage, {"calls": 0, "seconds": 0.0})
            slot["calls"] += entry.get("calls", 0)
            slot["seconds"] += entry.get("seconds", 0.0)
        for ws in rep.worker_stats:
            merged = workers.setdefault(ws.worker_id, WorkerStats(ws.worker_id))
            merged.chunks += ws.chunks
            merged.pairs += ws.pairs
            merged.busy_seconds += ws.busy_seconds
    return BatchReport(
        backend=first.backend,
        workers=first.workers,
        num_pairs=sum(r.num_pairs for r in reports),
        pairs_aligned=sum(r.pairs_aligned for r in reports),
        cache_hits=sum(r.cache_hits for r in reports),
        coalesced=sum(r.coalesced for r in reports),
        errors=sum(r.errors for r in reports),
        rejected=sum(r.rejected for r in reports),
        retries=sum(r.retries for r in reports),
        band_fallbacks=sum(r.band_fallbacks for r in reports),
        peak_wavefront_bytes=sum(r.peak_wavefront_bytes for r in reports),
        elapsed_seconds=(
            wall_seconds
            if wall_seconds is not None
            else sum(r.elapsed_seconds for r in reports)
        ),
        swg_cells=sum(r.swg_cells for r in reports),
        worker_stats=sorted(workers.values(), key=lambda w: w.worker_id),
        profile=profile,
    )
