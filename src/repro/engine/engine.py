"""The parallel batch alignment engine.

This is the software serving layer the ROADMAP's scaling PRs build on:
where the paper instantiates up to 64 hardware aligner sections, the
engine shards a batch of sequence pairs across a ``multiprocessing``
worker pool.  The moving parts, in dispatch order:

1. **Cache resolve** — each pair is looked up in an LRU keyed on
   ``(backend, pattern, text, penalties, backtrace)``; hits never reach
   a worker.
2. **Coalescing** — duplicate misses *within* the batch are collapsed to
   one work item; every duplicate is answered from the first result.
3. **Chunked dispatch** — remaining unique items are grouped into chunks
   of ``chunk_size`` pairs to amortise IPC (one pickle round-trip per
   chunk, not per pair) and handed to the pool unordered; with
   ``workers=1`` the chunk runs in-process with zero IPC.
4. **Gather + counters** — outcomes are re-ordered to input order and a
   :class:`BatchReport` is filled in: pairs/s, GCUPS (via
   :mod:`repro.metrics.cups`, SWG-equivalent cells so the numbers are
   comparable with the paper's Table 2), cache hit rate and per-worker
   utilisation.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from ..align.penalties import AffinePenalties, DEFAULT_PENALTIES
from ..align.profile import StageProfiler, format_profile
from ..metrics.cups import gcups, swg_equivalent_cells
from ..workloads.generator import SequencePair
from .backends import PairItem, PairOutcome, backend_names, get_backend
from .cache import AlignmentCache

__all__ = [
    "EngineConfig",
    "WorkerStats",
    "BatchReport",
    "EngineResult",
    "BatchAlignmentEngine",
    "align_pairs",
]


@dataclass(frozen=True)
class EngineConfig:
    """Static configuration of one engine instance.

    Attributes
    ----------
    backend:
        Name of a registered backend (``scalar``, ``vectorized``,
        ``swg``, ``wfasic``, or anything added via
        :func:`repro.engine.register_backend`).
    workers:
        Worker processes.  ``1`` (the default) runs everything
        in-process — the serial path, with no pool and no IPC.
    chunk_size:
        Pairs per dispatched chunk.  Larger chunks amortise IPC but
        reduce load-balancing granularity.
    penalties:
        Gap-affine penalties applied to every pair.
    backtrace:
        Whether CIGARs are recovered (and cached) alongside scores.
    cache_size:
        LRU capacity in outcomes; ``0`` disables result caching.
    """

    backend: str = "vectorized"
    workers: int = 1
    chunk_size: int = 16
    penalties: AffinePenalties = field(default_factory=lambda: DEFAULT_PENALTIES)
    backtrace: bool = False
    cache_size: int = 4096

    def __post_init__(self) -> None:
        if self.backend not in backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(backend_names())}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")


@dataclass
class WorkerStats:
    """Per-worker accounting for one batch."""

    worker_id: int
    chunks: int = 0
    pairs: int = 0
    busy_seconds: float = 0.0


@dataclass
class BatchReport:
    """Throughput/latency counters for one batch."""

    backend: str
    workers: int
    num_pairs: int
    #: Pairs actually aligned by a backend (after cache hits + coalescing).
    pairs_aligned: int
    cache_hits: int
    #: Within-batch duplicates answered from another item's result.
    coalesced: int
    elapsed_seconds: float
    #: SWG-equivalent DP cells of the *whole* batch (cache hits included:
    #: the engine served them, whatever the mechanism).
    swg_cells: int
    worker_stats: list[WorkerStats] = field(default_factory=list)
    #: Per-stage wall-time/call counters (:meth:`StageProfiler.as_dict`):
    #: engine stages (``resolve``/``dispatch``/``ipc``/``gather``) merged
    #: with whatever the backend reported per chunk (``pack``/``compute``/
    #: ``extend``/``backtrace``/``retire`` for the batched backend).
    profile: dict = field(default_factory=dict)

    @property
    def pairs_per_second(self) -> float:
        return self.num_pairs / max(self.elapsed_seconds, 1e-9)

    @property
    def gcups(self) -> float:
        """Serving-equivalent GCUPS (Table 2 sense) of the batch."""
        return gcups(self.swg_cells, max(self.elapsed_seconds, 1e-9))

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.num_pairs if self.num_pairs else 0.0

    @property
    def worker_utilisation(self) -> float:
        """Mean fraction of the batch wall-time the workers were busy."""
        busy = sum(w.busy_seconds for w in self.worker_stats)
        return busy / max(self.elapsed_seconds * self.workers, 1e-9)

    def describe(self) -> str:
        """Multi-line human-readable summary (the CLI footer)."""
        lines = [
            f"backend={self.backend} workers={self.workers}",
            f"pairs={self.num_pairs} aligned={self.pairs_aligned} "
            f"cache_hits={self.cache_hits} coalesced={self.coalesced}",
            f"elapsed={self.elapsed_seconds:.3f}s "
            f"throughput={self.pairs_per_second:.1f} pairs/s "
            f"gcups={self.gcups:.4f}",
            f"cache_hit_rate={self.cache_hit_rate:.1%} "
            f"worker_utilisation={self.worker_utilisation:.1%}",
        ]
        return "\n".join(lines)

    def describe_profile(self) -> str:
        """The per-stage breakdown (the CLI ``--profile`` footer)."""
        return format_profile(self.profile)

    def as_dict(self) -> dict:
        """JSON-friendly view (the CLI ``--format json`` summary)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "num_pairs": self.num_pairs,
            "pairs_aligned": self.pairs_aligned,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "elapsed_seconds": self.elapsed_seconds,
            "pairs_per_second": self.pairs_per_second,
            "gcups": self.gcups,
            "cache_hit_rate": self.cache_hit_rate,
            "worker_utilisation": self.worker_utilisation,
            "workers_busy_seconds": {
                str(w.worker_id): w.busy_seconds for w in self.worker_stats
            },
            "profile": self.profile,
        }


@dataclass
class EngineResult:
    """Outcome of one :meth:`BatchAlignmentEngine.align_batch` call."""

    #: One outcome per input pair, in input order (``slot`` = input index).
    outcomes: list[PairOutcome]
    report: BatchReport

    @property
    def scores(self) -> list[int]:
        return [o.score for o in self.outcomes]


def _run_chunk(
    payload: tuple[str, AffinePenalties, bool, list[PairItem]]
) -> tuple[int, float, list[PairOutcome], dict | None]:
    """Worker-side chunk execution (must stay module-level: picklable)."""
    backend_name, penalties, backtrace, items = payload
    start = time.perf_counter()
    outcomes, profile = get_backend(backend_name).align_chunk_profiled(
        items, penalties, backtrace
    )
    return os.getpid(), time.perf_counter() - start, outcomes, profile


def _as_sequences(pair) -> tuple[str, str]:
    if isinstance(pair, SequencePair):
        return pair.pattern, pair.text
    pattern, text = pair
    return pattern, text


class BatchAlignmentEngine:
    """Shard a stream of sequence pairs across a worker pool.

    The pool is created lazily on the first parallel batch and reused
    across batches (fork cost is paid once); :meth:`close` — or use as a
    context manager — tears it down.  The result cache likewise persists
    across batches, which is exactly what a long-lived serving process
    wants.
    """

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self.cache = AlignmentCache(self.config.cache_size)
        self._pool: multiprocessing.pool.Pool | None = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "BatchAlignmentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(self.config.workers)
        return self._pool

    # -- execution -----------------------------------------------------

    def align_batch(self, pairs) -> EngineResult:
        """Align a batch (``SequencePair`` objects or ``(a, b)`` tuples).

        Returns outcomes in input order plus the batch counters.
        """
        cfg = self.config
        start = time.perf_counter()
        prof = StageProfiler()

        sequences = [_as_sequences(p) for p in pairs]
        outcomes: list[PairOutcome | None] = [None] * len(sequences)

        # 1/2 -- cache resolve + within-batch coalescing.
        cache_hits = 0
        coalesced = 0
        pending: dict[tuple, list[int]] = {}
        work_items: list[PairItem] = []
        with prof.stage("resolve"):
            for idx, (pattern, text) in enumerate(sequences):
                key = AlignmentCache.make_key(
                    cfg.backend, pattern, text, cfg.penalties, cfg.backtrace
                )
                cached = self.cache.get(key)
                if cached is not None:
                    score, success, cigar = cached
                    outcomes[idx] = PairOutcome(idx, score, success, cigar)
                    cache_hits += 1
                    continue
                waiters = pending.get(key)
                if waiters is not None:
                    waiters.append(idx)
                    coalesced += 1
                    continue
                pending[key] = [idx]
                # The slot of a work item is its position in work_items, so
                # unordered gathers index straight back into the key list.
                work_items.append((len(work_items), pattern, text))
        keys_in_order = list(pending)

        # 3 -- chunked dispatch.
        worker_stats: dict[int, WorkerStats] = {}
        chunk_results: list[tuple[int, float, list[PairOutcome], dict | None]] = []
        if work_items:
            chunks = [
                work_items[off : off + cfg.chunk_size]
                for off in range(0, len(work_items), cfg.chunk_size)
            ]
            payloads = [
                (cfg.backend, cfg.penalties, cfg.backtrace, chunk)
                for chunk in chunks
            ]
            dispatch_start = time.perf_counter()
            if cfg.workers == 1:
                chunk_results = [_run_chunk(p) for p in payloads]
            else:
                pool = self._ensure_pool()
                chunk_results = list(pool.imap_unordered(_run_chunk, payloads))
            dispatch_wall = time.perf_counter() - dispatch_start
            busy_total = sum(busy for _, busy, _, _ in chunk_results)
            prof.add("dispatch", dispatch_wall, calls=len(payloads))
            # IPC/queueing: dispatch wall-time not accounted to any worker.
            # With workers=1 the chunk runs in-process, so this is ~0.
            prof.add(
                "ipc", max(0.0, dispatch_wall - busy_total), calls=len(payloads)
            )

        # 4 -- gather, fill the cache, fan results out to duplicates.
        with prof.stage("gather"):
            for worker_id, busy, chunk_outcomes, chunk_profile in chunk_results:
                stats = worker_stats.setdefault(worker_id, WorkerStats(worker_id))
                stats.chunks += 1
                stats.pairs += len(chunk_outcomes)
                stats.busy_seconds += busy
                prof.merge(chunk_profile)
                for outcome in chunk_outcomes:
                    key = keys_in_order[outcome.slot]
                    self.cache.put_outcome(key, outcome)
                    for idx in pending[key]:
                        outcomes[idx] = PairOutcome(
                            idx, outcome.score, outcome.success, outcome.cigar
                        )

        elapsed = time.perf_counter() - start
        assert all(o is not None for o in outcomes), "engine lost a pair"
        report = BatchReport(
            backend=cfg.backend,
            workers=cfg.workers,
            num_pairs=len(sequences),
            pairs_aligned=len(work_items),
            cache_hits=cache_hits,
            coalesced=coalesced,
            elapsed_seconds=elapsed,
            swg_cells=sum(
                swg_equivalent_cells(len(a), len(b)) for a, b in sequences
            ),
            worker_stats=sorted(worker_stats.values(), key=lambda w: w.worker_id),
            profile=prof.as_dict(),
        )
        return EngineResult(outcomes=list(outcomes), report=report)


def align_pairs(
    pairs,
    *,
    backend: str = "vectorized",
    workers: int = 1,
    backtrace: bool = False,
    penalties: AffinePenalties = DEFAULT_PENALTIES,
    chunk_size: int = 16,
    cache_size: int = 4096,
) -> EngineResult:
    """One-shot convenience wrapper around :class:`BatchAlignmentEngine`."""
    config = EngineConfig(
        backend=backend,
        workers=workers,
        chunk_size=chunk_size,
        penalties=penalties,
        backtrace=backtrace,
        cache_size=cache_size,
    )
    with BatchAlignmentEngine(config) as engine:
        return engine.align_batch(pairs)
