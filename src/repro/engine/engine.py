"""The parallel batch alignment engine.

This is the software serving layer the ROADMAP's scaling PRs build on:
where the paper instantiates up to 64 hardware aligner sections, the
engine shards a batch of sequence pairs across a ``multiprocessing``
worker pool.  The moving parts, in dispatch order:

1. **Cache resolve** — each pair is looked up in an LRU keyed on
   ``(backend, pattern, text, penalties, backtrace)``; hits never reach
   a worker.
2. **Coalescing** — duplicate misses *within* the batch are collapsed to
   one work item; every duplicate is answered from the first result.
3. **Chunked dispatch** — remaining unique items are grouped into chunks
   of ``chunk_size`` pairs to amortise IPC (one pickle round-trip per
   chunk, not per pair) and handed to the pool unordered; with
   ``workers=1`` the chunk runs in-process with zero IPC.
4. **Gather + counters** — outcomes are re-ordered to input order and a
   :class:`BatchReport` is filled in: pairs/s, GCUPS (via
   :mod:`repro.metrics.cups`, SWG-equivalent cells so the numbers are
   comparable with the paper's Table 2), cache hit rate and per-worker
   utilisation.

The engine is **fault-isolating** end to end, mirroring the paper's
verification campaign ("sends data in unexpected formats and checks the
CPU does not hang", §5.1): a validation/normalization pass runs before
step 1 (see :mod:`repro.engine.validation`), workers isolate backend
exceptions per pair, and the parallel path survives chunk timeouts and
worker death through bounded resubmission with in-process degradation.
One malformed pair yields one errored :class:`PairOutcome`; it never
costs the batch.  ``EngineConfig.strict`` restores raise-on-first-error
for tests.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from ..align.penalties import AffinePenalties, DEFAULT_PENALTIES
from ..align.profile import StageProfiler, format_profile
from ..metrics.cups import gcups, swg_equivalent_cells
from ..obs.metrics import get_registry
from ..obs.publish import publish_batch_report
from ..obs.trace import Tracer, get_tracer
from ..workloads.generator import SequencePair
from .backends import (
    AlignmentBackend,
    PairItem,
    PairOutcome,
    backend_names,
    get_backend,
)
from .cache import AlignmentCache
from .validation import (
    ERROR_BACKEND,
    ERROR_INVALID_BASE,
    ERROR_TIMEOUT,
    ERROR_WORKER_LOST,
    classify_pair,
    normalize_pair,
)

__all__ = [
    "EngineConfig",
    "WorkerStats",
    "BatchReport",
    "EngineResult",
    "BatchAlignmentEngine",
    "align_pairs",
]


@dataclass(frozen=True)
class EngineConfig:
    """Static configuration of one engine instance.

    Attributes
    ----------
    backend:
        Name of a registered backend (``scalar``, ``vectorized``,
        ``swg``, ``wfasic``, or anything added via
        :func:`repro.engine.register_backend`).
    workers:
        Worker processes.  ``1`` (the default) runs everything
        in-process — the serial path, with no pool and no IPC.
    chunk_size:
        Pairs per dispatched chunk.  Larger chunks amortise IPC but
        reduce load-balancing granularity.
    penalties:
        Gap-affine penalties applied to every pair.
    backtrace:
        Whether CIGARs are recovered (and cached) alongside scores.
    cache_size:
        LRU capacity in outcomes; ``0`` disables result caching.
    strict:
        ``True`` restores raise-on-first-error (for tests and debugging):
        validation rejections raise :class:`ValueError` and backend or
        pool failures propagate instead of becoming per-pair errored
        outcomes.  Unsupported reads (the §4.2 hardware policy) are a
        well-formed answer and stay per-pair even in strict mode.
    max_read_len:
        Optional read-length cap applied by the shared unsupported-read
        policy at the engine boundary; ``None`` (default) leaves length
        limits to the backends (the ``wfasic`` simulator enforces its
        own ``MAX_READ_LEN`` either way).
    chunk_timeout:
        Seconds to wait for one dispatched chunk before treating it as
        lost (hung backend or dead worker); ``None`` waits forever.
        Only the parallel path uses it.
    max_chunk_retries:
        Resubmissions attempted for a lost chunk before degrading (to
        in-process execution, or per-pair timeout errors).
    """

    backend: str = "vectorized"
    workers: int = 1
    chunk_size: int = 16
    penalties: AffinePenalties = field(default_factory=lambda: DEFAULT_PENALTIES)
    backtrace: bool = False
    cache_size: int = 4096
    strict: bool = False
    max_read_len: int | None = None
    chunk_timeout: float | None = 300.0
    max_chunk_retries: int = 1

    def __post_init__(self) -> None:
        if self.backend not in backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(backend_names())}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.max_read_len is not None and self.max_read_len < 1:
            raise ValueError("max_read_len must be >= 1 (or None)")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be > 0 (or None)")
        if self.max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")


@dataclass
class WorkerStats:
    """Per-worker accounting for one batch."""

    worker_id: int
    chunks: int = 0
    pairs: int = 0
    busy_seconds: float = 0.0


@dataclass
class BatchReport:
    """Throughput/latency counters for one batch."""

    backend: str
    workers: int
    num_pairs: int
    #: Pairs actually aligned by a backend (after cache hits + coalescing).
    pairs_aligned: int
    cache_hits: int
    #: Within-batch duplicates answered from another item's result.
    coalesced: int
    elapsed_seconds: float
    #: SWG-equivalent DP cells of the batch's *served* pairs (cache hits
    #: included: the engine served them, whatever the mechanism; pairs
    #: rejected or errored at the engine level are excluded, so GCUPS
    #: never counts work that was not done).
    swg_cells: int
    #: Pairs whose outcome is an engine error (``ok=False``: validation
    #: rejection, backend exception, chunk timeout, lost worker).
    errors: int = 0
    #: Pairs stopped at the validation boundary (invalid charset, plus
    #: unsupported reads under the shared §4.2 policy) — never dispatched.
    rejected: int = 0
    #: Chunk resubmissions performed after timeouts / worker death.
    retries: int = 0
    worker_stats: list[WorkerStats] = field(default_factory=list)
    #: Per-stage wall-time/call counters (:meth:`StageProfiler.as_dict`):
    #: engine stages (``resolve``/``dispatch``/``ipc``/``gather``) merged
    #: with whatever the backend reported per chunk (``pack``/``compute``/
    #: ``extend``/``backtrace``/``retire`` for the batched backend).
    profile: dict = field(default_factory=dict)

    @property
    def pairs_per_second(self) -> float:
        """Pairs served per wall-clock second."""
        return self.num_pairs / max(self.elapsed_seconds, 1e-9)

    @property
    def gcups(self) -> float:
        """Serving-equivalent GCUPS (Table 2 sense) of the batch."""
        return gcups(self.swg_cells, max(self.elapsed_seconds, 1e-9))

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submitted pairs served from the LRU cache."""
        return self.cache_hits / self.num_pairs if self.num_pairs else 0.0

    @property
    def worker_utilisation(self) -> float:
        """Mean fraction of the batch wall-time the workers were busy."""
        busy = sum(w.busy_seconds for w in self.worker_stats)
        return busy / max(self.elapsed_seconds * self.workers, 1e-9)

    def describe(self) -> str:
        """Multi-line human-readable summary (the CLI footer)."""
        lines = [
            f"backend={self.backend} workers={self.workers}",
            f"pairs={self.num_pairs} aligned={self.pairs_aligned} "
            f"cache_hits={self.cache_hits} coalesced={self.coalesced}",
            f"errors={self.errors} rejected={self.rejected} "
            f"retries={self.retries}",
            f"elapsed={self.elapsed_seconds:.3f}s "
            f"throughput={self.pairs_per_second:.1f} pairs/s "
            f"gcups={self.gcups:.4f}",
            f"cache_hit_rate={self.cache_hit_rate:.1%} "
            f"worker_utilisation={self.worker_utilisation:.1%}",
        ]
        return "\n".join(lines)

    def describe_profile(self) -> str:
        """The per-stage breakdown (the CLI ``--profile`` footer)."""
        return format_profile(self.profile)

    def as_dict(self) -> dict:
        """JSON-friendly view (the CLI ``--format json`` summary)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "num_pairs": self.num_pairs,
            "pairs_aligned": self.pairs_aligned,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "rejected": self.rejected,
            "retries": self.retries,
            "swg_cells": self.swg_cells,
            "elapsed_seconds": self.elapsed_seconds,
            "pairs_per_second": self.pairs_per_second,
            "gcups": self.gcups,
            "cache_hit_rate": self.cache_hit_rate,
            "worker_utilisation": self.worker_utilisation,
            "workers_busy_seconds": {
                str(w.worker_id): w.busy_seconds for w in self.worker_stats
            },
            "profile": self.profile,
        }


@dataclass
class EngineResult:
    """Outcome of one :meth:`BatchAlignmentEngine.align_batch` call."""

    #: One outcome per input pair, in input order (``slot`` = input index).
    outcomes: list[PairOutcome]
    report: BatchReport

    @property
    def scores(self) -> list[int]:
        """Alignment scores in input order."""
        return [o.score for o in self.outcomes]


#: What crosses the process boundary for one chunk.
ChunkPayload = tuple[str, AffinePenalties, bool, bool, list[PairItem]]


def _run_items_isolated(
    backend: AlignmentBackend,
    items: list[PairItem],
    penalties: AffinePenalties,
    backtrace: bool,
) -> list[PairOutcome]:
    """Re-run a poisoned chunk pair-at-a-time, trapping each failure.

    One bad pair yields one errored outcome; every other pair of the
    chunk still gets its real result (the fault-isolation invariant).
    """
    outcomes: list[PairOutcome] = []
    for item in items:
        try:
            outcomes.extend(backend.align_chunk([item], penalties, backtrace))
        except Exception as exc:  # noqa: BLE001 — the isolation boundary
            outcomes.append(
                PairOutcome.error(
                    item[0], ERROR_BACKEND, f"{type(exc).__name__}: {exc}"
                )
            )
    return outcomes


#: What comes back per chunk: worker OS pid, the ``perf_counter`` stamp
#: when the chunk started (comparable across processes on Linux, where
#: ``perf_counter`` is the system-wide ``CLOCK_MONOTONIC``), the busy
#: seconds, the outcomes and the backend's optional stage profile.
ChunkResult = tuple[int, float, float, list[PairOutcome], "dict | None"]


def _run_chunk(payload: ChunkPayload) -> ChunkResult:
    """Worker-side chunk execution (must stay module-level: picklable).

    The whole chunk is tried first (one kernel dispatch, the fast path);
    if the backend throws, the chunk is replayed pair-at-a-time so only
    the offending pair errors.  With ``strict`` the exception propagates
    to the caller instead.
    """
    backend_name, penalties, backtrace, strict, items = payload
    start = time.perf_counter()
    backend = get_backend(backend_name)
    try:
        outcomes, profile = backend.align_chunk_profiled(
            items, penalties, backtrace
        )
    except Exception:
        if strict:
            raise
        outcomes = _run_items_isolated(backend, items, penalties, backtrace)
        profile = None
    return os.getpid(), start, time.perf_counter() - start, outcomes, profile


def _quarantine_entry(
    payload: ChunkPayload, queue: "multiprocessing.queues.Queue[list[PairOutcome]]"
) -> None:
    """Entry point of a quarantine process: one pair, result via queue."""
    _, _, _, outcomes, _ = _run_chunk(payload)
    queue.put(outcomes)


def _run_item_quarantined(
    payload: ChunkPayload, timeout: float | None
) -> PairOutcome:
    """Run a single-pair chunk in a disposable process.

    Survives anything the pair can do: a Python exception becomes a
    ``backend_error`` outcome (inside :func:`_run_chunk`), a hang is
    terminated after ``timeout`` and a process death is reported as
    ``worker_lost`` — the engine process is never at risk.
    """
    (slot, _, _), = payload[-1]
    ctx = multiprocessing.get_context()
    result_queue = ctx.Queue()
    proc = ctx.Process(
        target=_quarantine_entry, args=(payload, result_queue), daemon=True
    )
    proc.start()
    try:
        proc.join(timeout)
        if proc.is_alive():
            return PairOutcome.error(
                slot, ERROR_TIMEOUT, f"pair exceeded the {timeout}s chunk timeout"
            )
        try:
            # The queue feeder thread may still be flushing right after
            # exit; a short grace get covers that race.
            outcomes = result_queue.get(timeout=5.0)
        except Exception:  # noqa: BLE001 — queue.Empty
            return PairOutcome.error(
                slot,
                ERROR_WORKER_LOST,
                f"worker process died (exit code {proc.exitcode})",
            )
        return outcomes[0]
    finally:
        if proc.is_alive():
            proc.terminate()
            proc.join()
        result_queue.close()


@contextmanager
def _timed(
    prof: StageProfiler, tracer: Tracer | None, name: str
) -> Iterator[None]:
    """Time a block into the profiler and, when tracing, as a span."""
    span = tracer.span(name, "engine") if tracer is not None else nullcontext()
    with span, prof.stage(name):
        yield


def _as_sequences(pair: SequencePair | tuple[str, str]) -> tuple[str, str]:
    if isinstance(pair, SequencePair):
        return pair.pattern, pair.text
    pattern, text = pair
    return pattern, text


class BatchAlignmentEngine:
    """Shard a stream of sequence pairs across a worker pool.

    The pool is created lazily on the first parallel batch and reused
    across batches (fork cost is paid once); :meth:`close` — or use as a
    context manager — tears it down.  The result cache likewise persists
    across batches, which is exactly what a long-lived serving process
    wants.
    """

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self.cache = AlignmentCache(self.config.cache_size)
        self._pool: multiprocessing.pool.Pool | None = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "BatchAlignmentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(self.config.workers)
        return self._pool

    def _reset_pool(self) -> None:
        """Tear the pool down hard (hung workers included)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # -- execution -----------------------------------------------------

    def align_batch(
        self, pairs: Sequence[SequencePair | tuple[str, str]]
    ) -> EngineResult:
        """Align a batch (``SequencePair`` objects or ``(a, b)`` tuples).

        Returns outcomes in input order plus the batch counters.  Never
        raises for per-pair *data* errors unless ``strict``; non-``str``
        sequences are programming errors and raise :class:`TypeError`
        regardless.
        """
        cfg = self.config
        start = time.perf_counter()
        prof = StageProfiler()
        tracer = get_tracer()
        batch_start_us = tracer.now_us() if tracer is not None else 0.0

        outcomes: list[PairOutcome | None] = [None] * len(pairs)
        cache_hits = 0
        rejected = 0
        pending: dict[tuple, list[int]] = {}
        work_items: list[PairItem] = []
        sequences: list[tuple[str, str]] = []

        # 0/1/2 -- validate + normalize, cache resolve, coalescing.
        with _timed(prof, tracer, "resolve"):
            for idx, pair in enumerate(pairs):
                pattern, text = normalize_pair(idx, *_as_sequences(pair))
                sequences.append((pattern, text))
                verdict = classify_pair(pattern, text, cfg.max_read_len)
                if verdict is not None:
                    kind, msg = verdict
                    if kind == ERROR_INVALID_BASE:
                        if cfg.strict:
                            raise ValueError(f"pair {idx}: {msg}")
                        outcomes[idx] = PairOutcome.error(idx, kind, msg)
                    else:
                        outcomes[idx] = PairOutcome.unsupported(idx, kind, msg)
                    rejected += 1
                    continue
                key = AlignmentCache.make_key(
                    cfg.backend, pattern, text, cfg.penalties, cfg.backtrace
                )
                cached = self.cache.get(key)
                if cached is not None:
                    score, success, cigar = cached
                    outcomes[idx] = PairOutcome(idx, score, success, cigar)
                    cache_hits += 1
                    continue
                waiters = pending.get(key)
                if waiters is not None:
                    waiters.append(idx)
                    continue
                pending[key] = [idx]
                # The slot of a work item is its position in work_items, so
                # unordered gathers index straight back into the key list.
                work_items.append((len(work_items), pattern, text))
        keys_in_order = list(pending)
        coalesced = sum(len(w) - 1 for w in pending.values())

        # 3 -- chunked dispatch (fault-tolerant on the parallel path).
        worker_stats: dict[int, WorkerStats] = {}
        chunk_results: list[ChunkResult] = []
        retries = 0
        if work_items:
            chunks = [
                work_items[off : off + cfg.chunk_size]
                for off in range(0, len(work_items), cfg.chunk_size)
            ]
            payloads: list[ChunkPayload] = [
                (cfg.backend, cfg.penalties, cfg.backtrace, cfg.strict, chunk)
                for chunk in chunks
            ]
            dispatch_start = time.perf_counter()
            if cfg.workers == 1:
                chunk_results = [_run_chunk(p) for p in payloads]
            else:
                chunk_results, retries = self._dispatch_parallel(payloads)
            dispatch_wall = time.perf_counter() - dispatch_start
            busy_total = sum(busy for _, _, busy, _, _ in chunk_results)
            prof.add("dispatch", dispatch_wall, calls=len(payloads))
            # IPC/queueing: dispatch wall-time not accounted to any worker.
            # With workers=1 the chunk runs in-process, so this is ~0.
            prof.add(
                "ipc", max(0.0, dispatch_wall - busy_total), calls=len(payloads)
            )
            if tracer is not None:
                tracer.complete(
                    "dispatch",
                    "engine",
                    tracer.perf_to_us(dispatch_start),
                    dispatch_wall * 1e6,
                    args={"chunks": len(payloads), "backend": cfg.backend},
                )

        # 4 -- gather, fill the cache, fan results out to duplicates.
        worker_lanes: dict[int, int] = {}
        with _timed(prof, tracer, "gather"):
            for worker_id, chunk_start, busy, chunk_outcomes, chunk_profile in (
                chunk_results
            ):
                stats = worker_stats.setdefault(worker_id, WorkerStats(worker_id))
                stats.chunks += 1
                stats.pairs += len(chunk_outcomes)
                stats.busy_seconds += busy
                prof.merge(chunk_profile)
                if tracer is not None:
                    lane = worker_lanes.setdefault(worker_id, len(worker_lanes) + 1)
                    tracer.name_thread(1, lane, f"worker {worker_id}")
                    tracer.complete(
                        f"chunk ({len(chunk_outcomes)} pairs)",
                        "engine:chunk",
                        tracer.perf_to_us(chunk_start),
                        busy * 1e6,
                        tid=lane,
                        args={
                            "pairs": len(chunk_outcomes),
                            "backend": cfg.backend,
                            "worker_pid": worker_id,
                        },
                    )
                for outcome in chunk_outcomes:
                    key = keys_in_order[outcome.slot]
                    self.cache.put_outcome(key, outcome)
                    for idx in pending[key]:
                        outcomes[idx] = replace(outcome, slot=idx)

        elapsed = time.perf_counter() - start
        assert all(o is not None for o in outcomes), "engine lost a pair"
        errors = sum(1 for o in outcomes if not o.ok)
        report = BatchReport(
            backend=cfg.backend,
            workers=cfg.workers,
            num_pairs=len(sequences),
            pairs_aligned=len(work_items),
            cache_hits=cache_hits,
            coalesced=coalesced,
            errors=errors,
            rejected=rejected,
            retries=retries,
            elapsed_seconds=elapsed,
            swg_cells=sum(
                swg_equivalent_cells(len(a), len(b))
                for (a, b), o in zip(sequences, outcomes)
                # Served pairs only: engine-level rejects/errors did no work.
                if o.ok and o.error_kind is None
            ),
            worker_stats=sorted(worker_stats.values(), key=lambda w: w.worker_id),
            profile=prof.as_dict(),
        )
        # Publish through the observability layer: counters reconcile
        # field-for-field with the report, and the batch becomes one
        # span on the trace timeline.
        registry = get_registry()
        publish_batch_report(report, registry)
        prof.publish(registry, "engine", {"backend": cfg.backend})
        if tracer is not None:
            tracer.complete(
                "batch",
                "engine",
                batch_start_us,
                elapsed * 1e6,
                args={
                    "backend": cfg.backend,
                    "pairs": report.num_pairs,
                    "cache_hits": report.cache_hits,
                    "errors": report.errors,
                },
            )
        return EngineResult(outcomes=list(outcomes), report=report)

    # -- fault-tolerant parallel dispatch ------------------------------

    def _dispatch_parallel(
        self, payloads: list[ChunkPayload]
    ) -> tuple[list[ChunkResult], int]:
        """Run chunks on the pool, surviving timeouts and worker death.

        Every chunk is submitted up front; each is then gathered with
        ``chunk_timeout``.  A chunk whose result never arrives — hung
        backend, or a worker that died and took the task with it (the
        pool respawns the *worker*, but the task is lost) — is
        resubmitted up to ``max_chunk_retries`` times, then degraded:
        per-pair ``timeout`` errors if it kept timing out (re-running a
        possibly-hanging chunk in-process would hang the engine), or an
        in-process isolated replay for everything else.  If the pool
        cannot be created at all, the whole batch runs in-process.
        Returns the chunk results plus the resubmission count.
        """
        cfg = self.config
        retries = 0
        results: list[ChunkResult] = []
        try:
            pool = self._ensure_pool()
        except OSError:
            if cfg.strict:
                raise
            # Pool unusable: graceful degradation to in-process execution.
            return [_run_chunk(p) for p in payloads], retries

        handles = [
            (payload, pool.apply_async(_run_chunk, (payload,)))
            for payload in payloads
        ]
        saw_timeout = False
        for payload, handle in handles:
            attempts = 0
            while True:
                try:
                    results.append(handle.get(cfg.chunk_timeout))
                    break
                except Exception as exc:  # noqa: BLE001 — pool boundary
                    timed_out = isinstance(exc, multiprocessing.TimeoutError)
                    saw_timeout |= timed_out
                    if cfg.strict:
                        raise
                    if attempts < cfg.max_chunk_retries:
                        attempts += 1
                        retries += 1
                        handle = pool.apply_async(_run_chunk, (payload,))
                        continue
                    results.append(self._degrade_chunk(payload, timed_out))
                    break
        if saw_timeout:
            # Hung workers may still occupy pool slots; start clean next
            # batch rather than inheriting a crippled pool.
            self._reset_pool()
        return results, retries

    def _degrade_chunk(
        self, payload: ChunkPayload, timed_out: bool
    ) -> ChunkResult:
        """Last resort for a chunk the pool kept losing.

        The chunk is replayed pair-at-a-time, each pair in its own
        disposable *quarantine* process: a pair that hangs or kills its
        process errors alone (``timeout`` / ``worker_lost``) while every
        healthy pair of the chunk still comes back with its real result.
        Running the chunk in the engine process instead would risk the
        engine itself on exactly the input that already killed a worker.
        """
        backend_name, penalties, backtrace, strict, items = payload
        start = time.perf_counter()
        outcomes = [
            _run_item_quarantined(
                (backend_name, penalties, backtrace, strict, [item]),
                self.config.chunk_timeout,
            )
            for item in items
        ]
        return os.getpid(), start, time.perf_counter() - start, outcomes, None


def align_pairs(
    pairs: Sequence[SequencePair | tuple[str, str]],
    *,
    backend: str = "vectorized",
    workers: int = 1,
    backtrace: bool = False,
    penalties: AffinePenalties = DEFAULT_PENALTIES,
    chunk_size: int = 16,
    cache_size: int = 4096,
    strict: bool = False,
    max_read_len: int | None = None,
    chunk_timeout: float | None = 300.0,
    max_chunk_retries: int = 1,
) -> EngineResult:
    """One-shot convenience wrapper around :class:`BatchAlignmentEngine`."""
    config = EngineConfig(
        backend=backend,
        workers=workers,
        chunk_size=chunk_size,
        penalties=penalties,
        backtrace=backtrace,
        cache_size=cache_size,
        strict=strict,
        max_read_len=max_read_len,
        chunk_timeout=chunk_timeout,
        max_chunk_retries=max_chunk_retries,
    )
    with BatchAlignmentEngine(config) as engine:
        return engine.align_batch(pairs)
