"""LRU result cache for the batch engine.

Serving traffic repeats itself: the same read aligned against the same
reference window arrives again and again (duplicate requests, retries,
seeds hitting the same region).  Re-running WFA for an identical
``(pattern, text, penalties)`` triple is pure waste, so the engine keeps
a bounded LRU of final outcomes and answers repeats from memory.

The key includes the backend name and the backtrace flag: scores agree
across backends, but CIGAR availability and the hardware success flag do
not, and a cache must never change *what* a request would have returned.
The band width is part of the key for the same reason: a banded run can
return a pessimistic score when the band is narrower than the optimal
path's diagonal drift, so banded and exact outcomes are distinct series.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..align.penalties import AffinePenalties
from .backends import PairOutcome

__all__ = ["CacheStats", "AlignmentCache"]

#: A cached outcome: (score, success, compact CIGAR or None).
CachedValue = tuple[int, bool, "str | None"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total probes: hits plus misses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


class AlignmentCache:
    """Bounded LRU of alignment outcomes.

    ``capacity`` is the maximum number of cached outcomes; ``0`` disables
    the cache entirely (every lookup misses, nothing is stored).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self.stats = CacheStats()
        self._store: OrderedDict[tuple, CachedValue] = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    @staticmethod
    def make_key(
        backend: str,
        pattern: str,
        text: str,
        penalties: AffinePenalties,
        backtrace: bool,
        band_width: int | None = None,
    ) -> tuple:
        """Cache key: everything that determines an outcome."""
        return (
            backend,
            pattern,
            text,
            penalties.mismatch,
            penalties.gap_open,
            penalties.gap_extend,
            backtrace,
            band_width,
        )

    def get(self, key: tuple) -> CachedValue | None:
        """Look up an outcome, refreshing its LRU position on a hit."""
        value = self._store.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._store.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: tuple, value: CachedValue) -> None:
        """Insert (or refresh) an outcome, evicting the LRU tail if full."""
        if self.capacity == 0:
            return
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = value
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.stats.evictions += 1

    def put_outcome(self, key: tuple, outcome: PairOutcome) -> None:
        """Convenience: store a :class:`PairOutcome`'s cacheable fields.

        Errored outcomes (``ok=False``: backend exceptions, lost workers,
        timeouts) are transient and must never be replayed from the
        cache, so they are silently skipped.
        """
        if not outcome.ok:
            return
        self.put(key, (outcome.score, outcome.success, outcome.cigar))

    def clear(self) -> None:
        """Drop every entry (the counters are kept)."""
        self._store.clear()
