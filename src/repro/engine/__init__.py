"""Parallel batch alignment engine: the software serving layer.

Where the paper scales by instantiating hardware aligner sections, this
package scales at the system level: a batch of sequence pairs is
resolved against an LRU result cache, duplicates are coalesced, and the
remainder is sharded in chunks across a ``multiprocessing`` worker pool
running any registered backend (software WFA — scalar, vectorized, or
cross-pair ``batched`` — the SWG oracle, or the cycle-accurate
``wfasic`` simulator).  Parallel dispatch defaults to the zero-copy
shared-memory protocol: sequences are interned once into a
:class:`repro.align.SequenceArena`, workers receive ``(arena_id,
offset, length)`` descriptors and reply through a shared result ring
(``docs/shared-memory.md``).  Every batch report carries per-stage
profiling counters (pack/compute/extend/backtrace from the backend,
resolve/dispatch/execute/ipc/gather from the engine); the CLI prints
them with ``repro-wfasic batch --profile``.

Entry points:

* :class:`BatchAlignmentEngine` / :func:`align_pairs` — the engine.
* :func:`register_backend` — plug in a new backend.
* ``repro.cli`` ``batch`` subcommand — the same engine from the shell.
"""

from .backends import (
    AlignmentBackend,
    PairOutcome,
    backend_names,
    get_backend,
    register_backend,
)
from .cache import AlignmentCache, CacheStats
from .engine import (
    BatchAlignmentEngine,
    BatchReport,
    EngineConfig,
    EngineResult,
    WorkerStats,
    align_pairs,
    merge_batch_reports,
)
from .validation import (
    ERROR_BACKEND,
    ERROR_INVALID_BASE,
    ERROR_TIMEOUT,
    ERROR_UNSUPPORTED_READ,
    ERROR_WORKER_LOST,
    VALID_BASES,
    classify_pair,
    normalize_pair,
)

__all__ = [
    "AlignmentBackend",
    "AlignmentCache",
    "BatchAlignmentEngine",
    "BatchReport",
    "CacheStats",
    "EngineConfig",
    "EngineResult",
    "ERROR_BACKEND",
    "ERROR_INVALID_BASE",
    "ERROR_TIMEOUT",
    "ERROR_UNSUPPORTED_READ",
    "ERROR_WORKER_LOST",
    "PairOutcome",
    "VALID_BASES",
    "WorkerStats",
    "align_pairs",
    "backend_names",
    "classify_pair",
    "get_backend",
    "merge_batch_reports",
    "normalize_pair",
    "register_backend",
]
