"""Parallel batch alignment engine: the software serving layer.

Where the paper scales by instantiating hardware aligner sections, this
package scales at the system level: a batch of sequence pairs is
resolved against an LRU result cache, duplicates are coalesced, and the
remainder is sharded in chunks across a ``multiprocessing`` worker pool
running any registered backend (software WFA, the SWG oracle, or the
cycle-accurate ``wfasic`` simulator).

Entry points:

* :class:`BatchAlignmentEngine` / :func:`align_pairs` — the engine.
* :func:`register_backend` — plug in a new backend.
* ``repro.cli`` ``batch`` subcommand — the same engine from the shell.
"""

from .backends import (
    AlignmentBackend,
    PairOutcome,
    backend_names,
    get_backend,
    register_backend,
)
from .cache import AlignmentCache, CacheStats
from .engine import (
    BatchAlignmentEngine,
    BatchReport,
    EngineConfig,
    EngineResult,
    WorkerStats,
    align_pairs,
)

__all__ = [
    "AlignmentBackend",
    "AlignmentCache",
    "BatchAlignmentEngine",
    "BatchReport",
    "CacheStats",
    "EngineConfig",
    "EngineResult",
    "PairOutcome",
    "WorkerStats",
    "align_pairs",
    "backend_names",
    "get_backend",
    "register_backend",
]
