"""Input validation and normalization at the batch-engine boundary.

The paper's verification campaign "sends data in unexpected formats and
checks the CPU does not hang" (§5.1): the hardware Extractor detects
unsupported reads and keeps the pipeline alive.  The serving engine
applies the same discipline *before* any pair reaches a backend, so one
malformed request can never take down a batch or crash a worker:

* **Type errors** (bytes, ints, anything non-``str``) are programming
  errors, not data errors: they raise a clean :class:`TypeError` naming
  the offending slot index, always, even in non-strict mode.
* **Case** is folded to uppercase once here, so every backend sees the
  same sequence and results agree bit-for-bit (the ``wfasic`` simulator
  used to reject lowercase outright while software backends silently
  aligned it as all-mismatch).
* **Charset** outside ``ACGTN`` is a per-pair validation *rejection*
  (``error_kind="invalid_base"``).
* **Unsupported reads** — 'N' bases, or length beyond a configured
  hardware limit — follow the shared §4.2 policy
  (:func:`repro.wfasic.extractor.read_support_reason`): the pair is
  reported with the hardware ``success`` flag cleared and score 0, the
  same outcome the Extractor produces, whatever backend runs the batch.
"""

from __future__ import annotations

from ..wfasic.extractor import read_support_reason

__all__ = [
    "VALID_BASES",
    "ERROR_INVALID_BASE",
    "ERROR_UNSUPPORTED_READ",
    "ERROR_BACKEND",
    "ERROR_TIMEOUT",
    "ERROR_WORKER_LOST",
    "normalize_pair",
    "classify_pair",
]

#: The engine's input alphabet: the hardware bases plus 'N', the unknown
#: base real read sets contain (§4.2 lists it as a detected case, not an
#: input error).
VALID_BASES = frozenset("ACGTN")

#: ``PairOutcome.error_kind`` taxonomy (see DESIGN.md, "error handling
#: contract").
ERROR_INVALID_BASE = "invalid_base"
ERROR_UNSUPPORTED_READ = "unsupported_read"
ERROR_BACKEND = "backend_error"
ERROR_TIMEOUT = "timeout"
ERROR_WORKER_LOST = "worker_lost"


def normalize_pair(idx: int, pattern: object, text: object) -> tuple[str, str]:
    """Type-check and case-fold one pair.

    Raises :class:`TypeError` naming the slot index for non-``str``
    input — failing fast here replaces the opaque ``AttributeError``
    that ``bytes`` used to trigger deep inside sequence packing.
    """
    for name, seq in (("pattern", pattern), ("text", text)):
        if not isinstance(seq, str):
            raise TypeError(
                f"pair {idx}: {name} must be str, got "
                f"{type(seq).__name__} ({seq!r})"
            )
    return pattern.upper(), text.upper()


def classify_pair(
    pattern: str, text: str, max_read_len: int | None = None
) -> tuple[str, str] | None:
    """Validation verdict for one (already normalized) pair.

    Returns ``None`` for a pair that may be dispatched to a backend, or
    an ``(error_kind, error_msg)`` tuple:

    * ``("invalid_base", ...)`` — characters outside ``ACGTN``; the
      request itself is malformed and is rejected as an error.
    * ``("unsupported_read", ...)`` — valid request the hardware cannot
      align ('N' bases, or longer than ``max_read_len`` when one is
      configured); reported with ``success=False`` like the Extractor
      does, not as an engine error.
    """
    for name, seq in (("pattern", pattern), ("text", text)):
        bad = set(seq) - VALID_BASES
        if bad:
            return (
                ERROR_INVALID_BASE,
                f"{name} contains characters outside ACGTN: "
                f"{''.join(sorted(bad))!r}",
            )
    for name, seq in (("pattern", pattern), ("text", text)):
        reason = read_support_reason(seq, max_read_len)
        if reason is not None:
            return (ERROR_UNSUPPORTED_READ, f"{name} {reason}")
    return None
