"""Pluggable alignment backends for the batch engine.

A *backend* turns a chunk of ``(slot, pattern, text)`` items into
:class:`PairOutcome` records.  Backends are addressed **by name** so that
only plain strings and dataclasses ever cross a process boundary — the
worker side of the engine looks the backend up again in its own process
(see :mod:`repro.engine.engine`).

Five backends ship with the repository:

* ``scalar`` — the readable reference WFA (:class:`repro.align.WfaAligner`),
* ``vectorized`` — the numpy whole-wavefront WFA (the RVV-code analog),
* ``batched`` — the cross-pair batched WFA
  (:class:`repro.align.BatchedWfaAligner`): the whole chunk advances in
  lockstep through shared 2D kernels, with a per-process pack cache so
  repeated sequences skip string->uint8 packing,
* ``swg`` — the :func:`repro.align.swg_align` DP oracle (Eq. 2),
* ``wfasic`` — the cycle-accurate accelerator simulator: the chunk is
  encoded as a §4.2 input image, run through
  :class:`repro.wfasic.WfasicAccelerator`, and (with backtrace on) the
  CIGARs recovered by the CPU backtrace over the §4.4 result stream.

New backends register through :func:`register_backend`; that is the
extension point later multi-backend/sharding PRs build on.  Backends
that want per-stage profiling override :meth:`align_chunk_profiled`;
the engine always calls that entry point and merges the returned stage
counters into the batch report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..align.packing import PackCache
from ..align.penalties import AffinePenalties
from ..align.profile import StageProfiler
from ..align.swg import swg_align
from ..align.wfa import WfaAligner
from ..align.wfa_batched import BatchedWfaAligner
from ..align.wfa_vectorized import VectorizedWfaAligner

__all__ = [
    "PairOutcome",
    "AlignmentBackend",
    "register_backend",
    "get_backend",
    "backend_names",
]

#: One work item: the caller-assigned slot plus the two sequences.
PairItem = tuple[int, str, str]


@dataclass(frozen=True)
class PairOutcome:
    """Result of aligning one pair.

    ``slot`` echoes the item's slot so outcomes can be reordered after an
    unordered parallel gather.  ``cigar`` is the compact CIGAR string:
    ``None`` when backtrace was off or the alignment failed, and ``""``
    (the valid empty CIGAR) for an empty-vs-empty alignment with
    backtrace on.

    Two independent failure channels coexist:

    * ``success`` is the *hardware* flag: cleared by backends with
      hardware limits (the ``wfasic`` simulator rejecting unsupported
      reads, and the engine applying the same §4.2 policy for every
      backend).  A cleared flag is a well-formed answer, not an error.
    * ``ok``/``error_kind``/``error_msg`` is the *engine* error channel:
      ``ok=False`` marks a pair whose request failed (validation
      rejection, a backend exception, a lost worker or a chunk timeout)
      — see :mod:`repro.engine.validation` for the ``error_kind``
      taxonomy.  Errored outcomes are never cached.
    """

    slot: int
    score: int
    success: bool = True
    cigar: str | None = None
    ok: bool = True
    error_kind: str | None = None
    error_msg: str | None = None

    @classmethod
    def error(cls, slot: int, kind: str, msg: str) -> "PairOutcome":
        """An errored outcome: no score, both flags down."""
        return cls(
            slot=slot,
            score=0,
            success=False,
            cigar=None,
            ok=False,
            error_kind=kind,
            error_msg=msg,
        )

    @classmethod
    def unsupported(cls, slot: int, kind: str, msg: str) -> "PairOutcome":
        """An unsupported read: the hardware answer (§4.2), not an error."""
        return cls(
            slot=slot,
            score=0,
            success=False,
            cigar=None,
            ok=True,
            error_kind=kind,
            error_msg=msg,
        )


class AlignmentBackend:
    """Base class: a named chunk-at-a-time alignment strategy."""

    name: str = "?"
    #: Whether this backend understands adaptive wavefront banding: the
    #: engine passes ``band_width`` to :meth:`align_chunk_profiled` (and
    #: relies on its exact-fallback contract) only when this is ``True``.
    supports_band: bool = False

    def align_chunk(
        self,
        items: Sequence[PairItem],
        penalties: AffinePenalties,
        backtrace: bool,
    ) -> list[PairOutcome]:
        """Align one chunk of ``(slot, pattern, text)`` work items.

        Returns one :class:`PairOutcome` per item (any order); the
        engine maps outcomes back to input positions via ``slot``.
        """
        raise NotImplementedError

    def align_chunk_profiled(
        self,
        items: Sequence[PairItem],
        penalties: AffinePenalties,
        backtrace: bool,
    ) -> tuple[list[PairOutcome], dict | None]:
        """Chunk outcomes plus optional per-stage profile counters.

        The engine always dispatches through this method; the default
        wraps :meth:`align_chunk` with no profile.  Backends with an
        instrumented hot path (``batched``) override it to return their
        :meth:`repro.align.StageProfiler.as_dict` payload.  Backends
        declaring ``supports_band`` additionally accept a ``band_width``
        keyword and must retry any pair whose banded run came back
        ``reached_end=False`` with an exact aligner, so a dead band
        degrades to exact alignment instead of a failed pair.
        """
        return self.align_chunk(items, penalties, backtrace), None


class _SoftwareWfaBackend(AlignmentBackend):
    """Shared chunk loop for the two software WFA engines."""

    aligner_cls: type

    def align_chunk(
        self,
        items: Sequence[PairItem],
        penalties: AffinePenalties,
        backtrace: bool,
    ) -> list[PairOutcome]:
        aligner = self.aligner_cls(penalties, keep_backtrace=backtrace)
        out: list[PairOutcome] = []
        for slot, pattern, text in items:
            res = aligner.align(pattern, text)
            # ``res.cigar`` may be the (falsy) empty CIGAR of an
            # empty-vs-empty alignment: still a valid answer, kept as "".
            cigar = res.cigar.compact() if backtrace and res.cigar is not None else None
            out.append(PairOutcome(slot=slot, score=res.score, cigar=cigar))
        return out


class ScalarWfaBackend(_SoftwareWfaBackend):
    name = "scalar"
    aligner_cls = WfaAligner
    supports_band = True

    def align_chunk_profiled(
        self,
        items: Sequence[PairItem],
        penalties: AffinePenalties,
        backtrace: bool,
        band_width: int | None = None,
    ) -> tuple[list[PairOutcome], dict | None]:
        """Chunk loop with optional adaptive banding + exact fallback."""
        if band_width is None:
            return super().align_chunk_profiled(items, penalties, backtrace)
        profiler = StageProfiler()
        banded = WfaAligner(
            penalties, keep_backtrace=backtrace, band_width=band_width
        )
        exact = WfaAligner(penalties, keep_backtrace=backtrace)
        out: list[PairOutcome] = []
        fallbacks = 0
        peak_bytes = 0
        for slot, pattern, text in items:
            res = banded.align(pattern, text)
            pair_peak = res.work.peak_wavefront_bytes
            if not res.reached_end:
                fallbacks += 1
                res = exact.align(pattern, text)
                pair_peak = max(pair_peak, res.work.peak_wavefront_bytes)
            peak_bytes += pair_peak
            cigar = (
                res.cigar.compact()
                if backtrace and res.cigar is not None
                else None
            )
            out.append(PairOutcome(slot=slot, score=res.score, cigar=cigar))
        profiler.count("band_fallbacks", fallbacks)
        profiler.count("peak_wavefront_bytes", peak_bytes)
        return out, profiler.as_dict()


class VectorizedWfaBackend(_SoftwareWfaBackend):
    name = "vectorized"
    aligner_cls = VectorizedWfaAligner


#: Per-process padded-row cache shared by every batched chunk this worker
#: runs: the serving mix repeats sequences, so later chunks skip packing.
_PACK_CACHE = PackCache(capacity=8192)


class BatchedWfaBackend(AlignmentBackend):
    """Cross-pair batched WFA: the whole chunk advances in lockstep.

    Where the other software backends loop pair-at-a-time inside a
    chunk, this backend hands the chunk to
    :class:`repro.align.BatchedWfaAligner` as one 2D batch, so every
    score step costs one ``compute``/``extend`` kernel call for *all*
    pairs.  Sequences are pre-packed through a process-wide
    :class:`repro.align.PackCache` (repeated pairs skip packing), and
    the aligner's stage profiler is returned with the chunk so the
    engine can attribute pack/compute/extend/backtrace time.
    """

    name = "batched"
    supports_band = True

    def align_chunk(
        self,
        items: Sequence[PairItem],
        penalties: AffinePenalties,
        backtrace: bool,
    ) -> list[PairOutcome]:
        return self.align_chunk_profiled(items, penalties, backtrace)[0]

    def align_chunk_profiled(
        self,
        items: Sequence[PairItem],
        penalties: AffinePenalties,
        backtrace: bool,
        band_width: int | None = None,
    ) -> tuple[list[PairOutcome], dict | None]:
        """One lockstep batch, banded when asked, with exact retry.

        Under ``band_width`` the chunk first runs banded; pairs whose
        band died (``reached_end=False``) are re-batched through an
        exact aligner, so a collapsed band degrades to exact alignment
        instead of a failed pair.  The profile carries
        ``band_fallbacks`` (retried pairs) and ``peak_wavefront_bytes``
        (summed per-pair peak stored wavefront bytes) as pure counters.
        """
        profiler = StageProfiler()
        aligner = BatchedWfaAligner(
            penalties,
            keep_backtrace=backtrace,
            pack_cache=_PACK_CACHE,
            profiler=profiler,
            band_width=band_width,
        )
        batch_pairs = [(pattern, text) for _, pattern, text in items]
        results = aligner.align_batch(batch_pairs)
        if band_width is not None:
            failed = [i for i, r in enumerate(results) if not r.reached_end]
            if failed:
                exact = BatchedWfaAligner(
                    penalties,
                    keep_backtrace=backtrace,
                    pack_cache=_PACK_CACHE,
                    profiler=profiler,
                )
                for i, res in zip(
                    failed, exact.align_batch([batch_pairs[i] for i in failed])
                ):
                    results[i] = res
            profiler.count("band_fallbacks", len(failed))
        profiler.count(
            "peak_wavefront_bytes",
            sum(r.work.peak_wavefront_bytes for r in results),
        )
        outcomes = [
            PairOutcome(
                slot=slot,
                score=res.score,
                cigar=(
                    res.cigar.compact()
                    if backtrace and res.cigar is not None
                    else None
                ),
            )
            for (slot, _, _), res in zip(items, results)
        ]
        return outcomes, profiler.as_dict()


class SwgBackend(AlignmentBackend):
    """The exact DP oracle: slowest, but the ground truth."""

    name = "swg"

    def align_chunk(
        self,
        items: Sequence[PairItem],
        penalties: AffinePenalties,
        backtrace: bool,
    ) -> list[PairOutcome]:
        out: list[PairOutcome] = []
        for slot, pattern, text in items:
            res = swg_align(pattern, text, penalties)
            cigar = res.cigar.compact() if backtrace and res.cigar is not None else None
            out.append(PairOutcome(slot=slot, score=res.score, cigar=cigar))
        return out


class WfasicBackend(AlignmentBackend):
    """The accelerator simulator, one §4.2 batch image per chunk.

    Chunk-level batching mirrors the hardware: the whole chunk becomes
    one input image and one accelerator run, so the Extractor/Collector
    paths and the hardware limits (MAX_READ_LEN, Eq. 6 Score_max) all
    apply.  Unsupported pairs come back with ``success=False``.
    """

    name = "wfasic"

    def align_chunk(
        self,
        items: Sequence[PairItem],
        penalties: AffinePenalties,
        backtrace: bool,
    ) -> list[PairOutcome]:
        # Imported lazily to keep the software backends import-light.
        from ..obs.publish import publish_accelerator_batch
        from ..obs.trace import get_tracer
        from ..wfasic.accelerator import WfasicAccelerator
        from ..wfasic.backtrace_cpu import CpuBacktracer
        from ..wfasic.config import WfasicConfig
        from ..wfasic.packets import encode_input_image, round_up_read_len
        from ..workloads.generator import SequencePair

        cfg = WfasicConfig(penalties=penalties, backtrace=backtrace)
        slots = [slot for slot, _, _ in items]
        pairs = [
            SequencePair(pattern=pattern, text=text, pair_id=local)
            for local, (_, pattern, text) in enumerate(items)
        ]
        max_read_len = min(
            round_up_read_len(max((p.max_length for p in pairs), default=1)),
            cfg.max_read_len,
        )
        image = encode_input_image(pairs, max_read_len)
        tracer = get_tracer()
        base_us = tracer.now_us() if tracer is not None else None
        batch = WfasicAccelerator(cfg).run_image(image, max_read_len)
        # Publish the simulated batch: per-stage cycle counters in the
        # registry, and (when tracing) the Extractor/Aligner/Collector
        # schedule mapped onto the cycle timeline, anchored where the
        # simulation began on the wall clock.
        publish_accelerator_batch(batch, base_us=base_us)

        scores = {r.alignment_id: r.score for r in batch.runs}
        success = {r.alignment_id: r.success for r in batch.runs}
        cigars: dict[int, str | None] = {}
        if backtrace:
            sequences = {p.pair_id: (p.pattern, p.text) for p in pairs}
            results, _ = CpuBacktracer(cfg).process(
                batch.output.as_stream(),
                sequences,
                separate=cfg.num_aligners > 1,
            )
            for res in results:
                if res.success and res.cigar is not None:
                    # An empty alignment has an empty CIGAR; "" is the
                    # valid answer, like the software backends.
                    cigars[res.alignment_id] = res.cigar.compact()
                    scores[res.alignment_id] = res.score
                success[res.alignment_id] = res.success
        return [
            PairOutcome(
                slot=slots[local],
                score=scores[local] if success[local] else 0,
                success=success[local],
                cigar=cigars.get(local),
            )
            for local in range(len(pairs))
        ]


_BACKENDS: dict[str, AlignmentBackend] = {}


def register_backend(backend: AlignmentBackend, *, replace: bool = False) -> None:
    """Add a backend to the registry (the engine's extension point)."""
    if backend.name in _BACKENDS and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _BACKENDS[backend.name] = backend


def get_backend(name: str) -> AlignmentBackend:
    """Look a backend up by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {', '.join(backend_names())}"
        ) from None


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


for _backend in (
    ScalarWfaBackend(),
    VectorizedWfaBackend(),
    BatchedWfaBackend(),
    SwgBackend(),
    WfasicBackend(),
):
    register_backend(_backend)
