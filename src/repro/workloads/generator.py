"""Synthetic sequence-pair generation (§5.3 methodology).

The paper evaluates WFAsic on synthetic input sets "with random
mismatches, insertions and deletions, using the same methodology as in
[13, 15]", where "the sequence errors follow a uniform and random
distribution".  This module reproduces that methodology:

* a uniform random DNA *pattern* of the nominal read length,
* a *text* derived from it by applying errors at the nominal rate, with
  the error type drawn uniformly from {mismatch, insertion, deletion}
  (configurable mix),
* everything driven by a seeded :class:`numpy.random.Generator` so every
  input set is exactly reproducible.

Error-rate semantics match the WFA papers: a rate of 10 % on a 10 kbp read
means ~1000 error events, i.e. the per-base probability of an event is the
nominal rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SequencePair", "PairGenerator", "ErrorMix"]

_BASES = np.frombuffer(b"ACGT", dtype=np.uint8)


@dataclass(frozen=True)
class ErrorMix:
    """Relative weights of the three error types."""

    mismatch: float = 1.0
    insertion: float = 1.0
    deletion: float = 1.0

    def __post_init__(self) -> None:
        if min(self.mismatch, self.insertion, self.deletion) < 0:
            raise ValueError("error weights must be non-negative")
        if self.mismatch + self.insertion + self.deletion <= 0:
            raise ValueError("at least one error weight must be positive")

    def probabilities(self) -> tuple[float, float, float]:
        total = self.mismatch + self.insertion + self.deletion
        return (self.mismatch / total, self.insertion / total, self.deletion / total)


@dataclass(frozen=True)
class SequencePair:
    """One alignment job: a pattern, a text, and its generation metadata."""

    pattern: str
    text: str
    pair_id: int = 0
    nominal_length: int = 0
    nominal_error_rate: float = 0.0
    #: Number of error events actually injected (mismatches + ins + del).
    errors_injected: int = 0

    def __post_init__(self) -> None:
        # Case-fold on construction (same policy as the engine boundary)
        # so lowercase FASTA-style input is served, not rejected.
        for name, seq in (("pattern", self.pattern), ("text", self.text)):
            folded = seq.upper()
            if not set(folded) <= set("ACGTN"):
                raise ValueError(f"{name} contains non-DNA characters")
            if folded != seq:
                object.__setattr__(self, name, folded)

    @property
    def max_length(self) -> int:
        return max(len(self.pattern), len(self.text))


@dataclass
class PairGenerator:
    """Reproducible generator of synthetic read pairs.

    Parameters
    ----------
    length:
        Nominal read length (pattern length; the text length varies with
        the injected insertions/deletions).
    error_rate:
        Per-base probability of injecting an error event.
    mix:
        Relative weights of mismatch/insertion/deletion (uniform thirds
        by default, per the paper's methodology).
    seed:
        Seed for the internal PCG64 generator.
    max_text_length:
        Optional hard cap on the generated text length (defaults to no
        cap).  A sequencing read never exceeds its nominal read length,
        and the hardware's MAX_READ_LEN is exactly the nominal 10 kbp, so
        the paper input sets cap both sequences at the nominal length —
        excess insertions at the tail are simply dropped.
    """

    length: int
    error_rate: float
    mix: ErrorMix = field(default_factory=ErrorMix)
    seed: int = 0
    max_text_length: int | None = None
    #: Maximum indel run length.  1 (the default) gives the single-base
    #: events of the WFA benchmark generator; larger values draw each
    #: indel's length uniformly from 1..max, with every gap character
    #: counting as one error (clustered indels, as real sequencers emit).
    max_indel_run: int = 1

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("length must be >= 0")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        if self.max_text_length is not None and self.max_text_length < 0:
            raise ValueError("max_text_length must be >= 0")
        if self.max_indel_run < 1:
            raise ValueError("max_indel_run must be >= 1")
        self._rng = np.random.default_rng(self.seed)
        self._next_id = 0

    # -- generation -------------------------------------------------------

    def pattern(self) -> str:
        """A fresh uniform random DNA sequence of the nominal length."""
        idx = self._rng.integers(0, 4, size=self.length)
        return bytes(_BASES[idx]).decode("ascii")

    def pair(self) -> SequencePair:
        """One pattern/text pair with uniformly distributed errors."""
        pat = self.pattern()
        text, injected = self._mutate(pat)
        pair = SequencePair(
            pattern=pat,
            text=text,
            pair_id=self._next_id,
            nominal_length=self.length,
            nominal_error_rate=self.error_rate,
            errors_injected=injected,
        )
        self._next_id += 1
        return pair

    def batch(self, count: int) -> list[SequencePair]:
        """A list of ``count`` independent pairs."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.pair() for _ in range(count)]

    # -- presets ----------------------------------------------------------

    #: Long-read preset bounds (inclusive): ONT/PacBio read lengths.
    LONG_READ_MIN_LENGTH = 10_000
    LONG_READ_MAX_LENGTH = 100_000

    @classmethod
    def long_read(
        cls,
        length: int = 10_000,
        error_rate: float = 0.02,
        seed: int = 0,
        max_text_length: int | None = None,
    ) -> "PairGenerator":
        """An ONT-like long-read generator (the banding PR's workload).

        Nanopore-style error structure: indel-heavy (deletions over
        insertions over mismatches) with clustered gap runs up to six
        bases, on reads of 10–100 kbp.  ``length`` outside that range
        raises — short reads should use the plain constructor or the
        paper input sets, and anything past 100 kbp outgrows the
        repository's workload envelope.
        """
        if not cls.LONG_READ_MIN_LENGTH <= length <= cls.LONG_READ_MAX_LENGTH:
            raise ValueError(
                "long_read length must be within "
                f"[{cls.LONG_READ_MIN_LENGTH}, {cls.LONG_READ_MAX_LENGTH}] bp, "
                f"got {length}"
            )
        return cls(
            length=length,
            error_rate=error_rate,
            mix=ErrorMix(mismatch=1.0, insertion=1.2, deletion=1.8),
            seed=seed,
            max_text_length=max_text_length,
            max_indel_run=6,
        )

    # -- internals ----------------------------------------------------------

    def _mutate(self, pattern: str) -> tuple[str, int]:
        rng = self._rng
        n = len(pattern)
        if n == 0:
            return "", 0
        pat = np.frombuffer(pattern.encode("ascii"), dtype=np.uint8)
        hit = rng.random(n) < self.error_rate
        p_sub, p_ins, _ = self.mix.probabilities()
        kinds = rng.random(n)

        out = bytearray()
        injected = 0
        skip = 0  # bases consumed by a running deletion
        for pos in range(n):
            base = pat[pos]
            if skip:
                skip -= 1
                injected += 1
                continue
            if not hit[pos]:
                out.append(base)
                continue
            kind = kinds[pos]
            if kind < p_sub:
                injected += 1
                # Substitution: uniform over the three *other* bases.
                choices = _BASES[_BASES != base]
                out.append(int(choices[rng.integers(0, 3)]))
            elif kind < p_sub + p_ins:
                # Insertion run: 1..max random bases before the original.
                run = int(rng.integers(1, self.max_indel_run + 1))
                injected += run
                for _ in range(run):
                    out.append(int(_BASES[rng.integers(0, 4)]))
                out.append(base)
            else:
                # Deletion run: drop this base and up to max-1 following.
                run = int(rng.integers(1, self.max_indel_run + 1))
                injected += 1
                skip = run - 1
        if self.max_text_length is not None and len(out) > self.max_text_length:
            del out[self.max_text_length :]
        return out.decode("ascii"), injected
