"""Input-set statistics: the §5.3 sanity view of a workload.

Summarises a list of pairs the way a methods section would: length
distribution, realised error characteristics (from exact alignments),
and the Eq. 5 error triple — so a batch can be characterised before it
is shipped to the accelerator, and synthetic sets can be checked against
their nominal parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from ..align.swg import swg_align
from ..align.penalties import AffinePenalties, DEFAULT_PENALTIES
from .generator import SequencePair
from .profile import ErrorProfile, profile_cigar

__all__ = ["InputSetStats", "summarise_pairs"]


@dataclass(frozen=True)
class InputSetStats:
    """Realised characteristics of a batch of pairs."""

    num_pairs: int
    mean_pattern_length: float
    mean_text_length: float
    mean_score: float
    #: Realised per-base error-character rate (differences / length).
    mean_error_rate: float
    #: Mean Eq. 5 triple across the batch.
    mean_profile: ErrorProfile

    def describe(self) -> str:
        p = self.mean_profile
        return (
            f"{self.num_pairs} pairs, ~{self.mean_pattern_length:.0f} bp, "
            f"score {self.mean_score:.0f} "
            f"({self.mean_error_rate:.1%} errors: "
            f"{p.num_mismatches:.1f}X / {p.num_gap_opens:.1f} opens / "
            f"{p.num_gap_characters:.1f} gap chars)"
        )


def summarise_pairs(
    pairs: list[SequencePair],
    penalties: AffinePenalties = DEFAULT_PENALTIES,
) -> InputSetStats:
    """Exact-alignment summary of a batch (runs SWG per pair: use on
    test/bench-sized batches, not multi-megabase production sets)."""
    if not pairs:
        raise ValueError("cannot summarise an empty batch")
    scores = []
    profiles = []
    error_rates = []
    for pair in pairs:
        result = swg_align(pair.pattern, pair.text, penalties)
        scores.append(result.score)
        prof = profile_cigar(result.cigar)
        profiles.append(prof)
        diffs = result.cigar.num_differences()
        error_rates.append(diffs / max(len(pair.pattern), 1))
    return InputSetStats(
        num_pairs=len(pairs),
        mean_pattern_length=mean(len(p.pattern) for p in pairs),
        mean_text_length=mean(len(p.text) for p in pairs),
        mean_score=mean(scores),
        mean_error_rate=mean(error_rates),
        mean_profile=ErrorProfile(
            num_mismatches=mean(p.num_mismatches for p in profiles),
            num_gap_opens=mean(p.num_gap_opens for p in profiles),
            num_gap_characters=mean(p.num_gap_characters for p in profiles),
        ),
    )
