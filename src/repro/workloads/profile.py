"""Error-profile estimation and Eq. 5 preflight.

§4 bounds what WFAsic can align: "the number of mismatches, gap-openings
and gap-extensions between sequences should satisfy Equation 5".  A
driver that knows its input distribution can check *before* submitting a
batch whether pairs risk the Success-flag-cleared path.

:func:`profile_cigar` extracts the Eq. 5 triple from a known alignment;
:func:`estimate_profile` predicts it for a nominal read length and error
rate (the §5.3 uniform error model); :func:`preflight` answers whether a
configuration supports that workload with a safety margin.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..align.cigar import Cigar
from ..wfasic.config import WfasicConfig

__all__ = ["ErrorProfile", "profile_cigar", "estimate_profile", "preflight"]


@dataclass(frozen=True)
class ErrorProfile:
    """The Eq. 5 error triple of one alignment (or an expectation)."""

    num_mismatches: float
    num_gap_opens: float
    num_gap_characters: float

    def score(self, config: WfasicConfig) -> float:
        """Expected gap-affine penalty under the configuration's model."""
        p = config.penalties
        return (
            self.num_mismatches * p.mismatch
            + self.num_gap_opens * p.gap_open
            + self.num_gap_characters * p.gap_extend
        )


def profile_cigar(cigar: Cigar) -> ErrorProfile:
    """Exact Eq. 5 triple of a concrete alignment."""
    counts = cigar.counts()
    return ErrorProfile(
        num_mismatches=counts["X"],
        num_gap_opens=cigar.num_gap_opens(),
        num_gap_characters=counts["I"] + counts["D"],
    )


def estimate_profile(
    length: int,
    error_rate: float,
    *,
    mismatch_fraction: float = 1 / 3,
    mean_indel_run: float = 1.0,
) -> ErrorProfile:
    """Expected error triple of the §5.3 uniform synthetic model.

    ``error_rate * length`` error characters split between mismatches and
    gap characters; gap characters arrive in runs of ``mean_indel_run``.
    """
    if length < 0 or not 0 <= error_rate <= 1:
        raise ValueError("length >= 0 and error_rate in [0, 1] required")
    if not 0 <= mismatch_fraction <= 1 or mean_indel_run < 1:
        raise ValueError("bad mix parameters")
    errors = length * error_rate
    mismatches = errors * mismatch_fraction
    gap_chars = errors - mismatches
    return ErrorProfile(
        num_mismatches=mismatches,
        num_gap_opens=gap_chars / mean_indel_run,
        num_gap_characters=gap_chars,
    )


def preflight(
    config: WfasicConfig,
    length: int,
    error_rate: float,
    *,
    margin: float = 2.0,
    **estimate_kwargs,
) -> bool:
    """Whether the configuration supports the workload with headroom.

    ``margin`` scales the *expected* score before comparing against
    Eq. 6's ceiling: individual pairs fluctuate around the expectation,
    so a 2x margin keeps the Success-cleared tail negligible.  Also
    rejects workloads whose reads exceed the hardware MAX_READ_LEN.
    """
    if margin < 1.0:
        raise ValueError("margin must be >= 1")
    if length > config.max_read_len:
        return False
    expected = estimate_profile(length, error_rate, **estimate_kwargs)
    return expected.score(config) * margin <= config.max_score
