"""Workload generation: synthetic read pairs and the paper's input sets."""

from .datasets import (
    PAPER_INPUT_SETS,
    InputSetSpec,
    input_set_names,
    make_input_set,
)
from .generator import ErrorMix, PairGenerator, SequencePair
from .genome import ReadSampler, SampledRead, synthetic_genome, tiling_reads
from .profile import ErrorProfile, estimate_profile, preflight, profile_cigar
from .seqio import iter_seq_lines, read_seq_file, write_seq_file
from .stats import InputSetStats, summarise_pairs

__all__ = [
    "ErrorMix",
    "ErrorProfile",
    "InputSetSpec",
    "InputSetStats",
    "PAPER_INPUT_SETS",
    "PairGenerator",
    "ReadSampler",
    "SampledRead",
    "SequencePair",
    "estimate_profile",
    "input_set_names",
    "iter_seq_lines",
    "make_input_set",
    "preflight",
    "profile_cigar",
    "read_seq_file",
    "summarise_pairs",
    "synthetic_genome",
    "tiling_reads",
    "write_seq_file",
]
