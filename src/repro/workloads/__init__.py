"""Workload generation: synthetic read pairs and the paper's input sets."""

from .datasets import (
    PAPER_INPUT_SETS,
    InputSetSpec,
    input_set_names,
    make_input_set,
)
from .generator import ErrorMix, PairGenerator, SequencePair
from .genome import ReadSampler, SampledRead, synthetic_genome, tiling_reads
from .profile import ErrorProfile, estimate_profile, preflight, profile_cigar
from .seqio import (
    SEQUENCE_FORMATS,
    iter_fasta_records,
    iter_fastq_records,
    iter_pair_chunks,
    iter_seq_lines,
    read_pairs_file,
    read_seq_file,
    sniff_format,
    stream_pairs,
    write_seq_file,
)
from .stats import InputSetStats, summarise_pairs

__all__ = [
    "ErrorMix",
    "ErrorProfile",
    "InputSetSpec",
    "InputSetStats",
    "PAPER_INPUT_SETS",
    "PairGenerator",
    "ReadSampler",
    "SEQUENCE_FORMATS",
    "SampledRead",
    "SequencePair",
    "estimate_profile",
    "input_set_names",
    "iter_fasta_records",
    "iter_fastq_records",
    "iter_pair_chunks",
    "iter_seq_lines",
    "make_input_set",
    "preflight",
    "profile_cigar",
    "read_pairs_file",
    "read_seq_file",
    "sniff_format",
    "stream_pairs",
    "summarise_pairs",
    "synthetic_genome",
    "tiling_reads",
    "write_seq_file",
]
