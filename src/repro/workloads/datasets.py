"""The paper's six evaluation input sets (Table 1 / Figures 9-11).

Section 5.3: "we evaluate its performance for short (100bp), medium (1Kbp)
and long (10Kbp) sequences with error rates of 5% and 10%".  Each input
set is named ``"<length>-<rate>%"`` exactly as in the paper's tables and
figure axes: ``100-5%``, ``100-10%``, ``1K-5%``, ``1K-10%``, ``10K-5%``,
``10K-10%``.

Input sets are deterministic: the seed is derived from the name, so every
bench/test run sees the same sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

from .generator import PairGenerator, SequencePair

__all__ = ["InputSetSpec", "PAPER_INPUT_SETS", "make_input_set", "input_set_names"]


@dataclass(frozen=True)
class InputSetSpec:
    """Parameters of one named evaluation input set."""

    name: str
    length: int
    error_rate: float

    @property
    def seed(self) -> int:
        # Stable, name-derived seed (independent of Python's hash seed).
        return sum(ord(c) * 31**i for i, c in enumerate(self.name)) % (2**31)


#: The six input sets of Table 1, in paper order.
PAPER_INPUT_SETS: tuple[InputSetSpec, ...] = (
    InputSetSpec("100-5%", 100, 0.05),
    InputSetSpec("100-10%", 100, 0.10),
    InputSetSpec("1K-5%", 1_000, 0.05),
    InputSetSpec("1K-10%", 1_000, 0.10),
    InputSetSpec("10K-5%", 10_000, 0.05),
    InputSetSpec("10K-10%", 10_000, 0.10),
)

_BY_NAME = {spec.name: spec for spec in PAPER_INPUT_SETS}


def input_set_names() -> list[str]:
    """The six input-set names, in paper order."""
    return [spec.name for spec in PAPER_INPUT_SETS]


def make_input_set(
    name: str, num_pairs: int, *, seed_offset: int = 0
) -> list[SequencePair]:
    """Generate ``num_pairs`` pairs of the named paper input set.

    ``seed_offset`` lets callers draw non-overlapping batches of the same
    distribution (e.g. tests vs benches).
    """
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown input set {name!r}; expected one of {input_set_names()}"
        ) from None
    gen = PairGenerator(
        length=spec.length,
        error_rate=spec.error_rate,
        seed=spec.seed + seed_offset,
        # Both sequences stay within the nominal read length — the
        # hardware MAX_READ_LEN for the 10 kbp sets is exactly 10 000.
        max_text_length=spec.length,
    )
    return gen.batch(num_pairs)
