"""Synthetic reference genomes and read sampling.

The paper's motivating pipelines — read mapping (§2.1) and long-read
assembly (§1) — operate on reads sampled from a genome, not on free
pattern/text pairs.  This module provides that substrate for examples
and integration tests:

* :func:`synthetic_genome` — a reproducible random genome, optionally
  with duplicated segments (repeats are what make seeding ambiguous and
  exact extension worthwhile);
* :class:`ReadSampler` — reads of a nominal length from uniform random
  positions with the §5.3 error model applied;
* :func:`tiling_reads` — evenly-strided reads with known overlaps (the
  assembly-overlap workload of ``examples/long_read_overlap.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generator import ErrorMix, PairGenerator

__all__ = ["SampledRead", "ReadSampler", "synthetic_genome", "tiling_reads"]

_BASES = np.frombuffer(b"ACGT", dtype=np.uint8)


def synthetic_genome(
    length: int, *, seed: int = 0, repeat_fraction: float = 0.0
) -> str:
    """A uniform random genome; ``repeat_fraction`` of it is covered by
    copies of a single segment (tandem-style repeats)."""
    if length < 0:
        raise ValueError("length must be >= 0")
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError("repeat_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    genome = _BASES[rng.integers(0, 4, size=length)]
    if repeat_fraction > 0 and length >= 100:
        unit_len = max(50, length // 100)
        unit = genome[:unit_len].copy()
        budget = int(length * repeat_fraction)
        placed = 0
        while placed + unit_len <= budget:
            pos = int(rng.integers(0, length - unit_len))
            genome[pos : pos + unit_len] = unit
            placed += unit_len
    return bytes(genome).decode("ascii")


@dataclass(frozen=True)
class SampledRead:
    """One read with its ground-truth origin."""

    read_id: int
    sequence: str
    true_position: int
    errors_injected: int


class ReadSampler:
    """Sample error-laden reads from a reference genome."""

    def __init__(
        self,
        genome: str,
        *,
        read_length: int,
        error_rate: float,
        seed: int = 0,
        mix: ErrorMix | None = None,
        max_indel_run: int = 1,
    ) -> None:
        if read_length < 1 or read_length > len(genome):
            raise ValueError("read_length must be in 1..len(genome)")
        self.genome = genome
        self.read_length = read_length
        self._rng = np.random.default_rng(seed)
        self._mutator = PairGenerator(
            length=read_length,
            error_rate=error_rate,
            seed=seed + 1,
            mix=mix or ErrorMix(),
            max_text_length=read_length,
            max_indel_run=max_indel_run,
        )
        self._next_id = 0

    def sample(self) -> SampledRead:
        """One read from a uniform random genome position."""
        pos = int(self._rng.integers(0, len(self.genome) - self.read_length + 1))
        return self._read_at(pos)

    def sample_many(self, count: int) -> list[SampledRead]:
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.sample() for _ in range(count)]

    def _read_at(self, pos: int) -> SampledRead:
        exact = self.genome[pos : pos + self.read_length]
        mutated, injected = self._mutator._mutate(exact)
        read = SampledRead(
            read_id=self._next_id,
            sequence=mutated,
            true_position=pos,
            errors_injected=injected,
        )
        self._next_id += 1
        return read


def tiling_reads(
    genome: str,
    *,
    read_length: int,
    stride: int,
    error_rate: float,
    seed: int = 0,
) -> list[SampledRead]:
    """Reads at every ``stride`` positions (known ``read_length - stride``
    overlaps between neighbours) with sequencing errors applied."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    sampler = ReadSampler(
        genome, read_length=read_length, error_rate=error_rate, seed=seed
    )
    reads = []
    for pos in range(0, len(genome) - read_length + 1, stride):
        reads.append(sampler._read_at(pos))
    return reads
