""".seq file I/O — the text format used by the reference WFA tools [14].

Each alignment job is two consecutive lines::

    >PATTERN
    <TEXT

(the ``>`` line is the query/pattern, the ``<`` line the text/reference).
Blank lines are ignored.  This keeps our synthetic input sets and any
externally produced ones interchangeable with the WFA ecosystem's tooling.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from .generator import SequencePair

__all__ = ["read_seq_file", "write_seq_file", "iter_seq_lines"]


def iter_seq_lines(lines: Iterable[str]) -> Iterator[tuple[str, str]]:
    """Yield (pattern, text) tuples from ``.seq``-format lines."""
    pattern: str | None = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if pattern is not None:
                raise ValueError(
                    f"line {lineno}: pattern line while a pattern is pending"
                )
            pattern = line[1:].strip()
        elif line.startswith("<"):
            if pattern is None:
                raise ValueError(f"line {lineno}: text line without a pattern")
            yield pattern, line[1:].strip()
            pattern = None
        else:
            raise ValueError(
                f"line {lineno}: expected '>' or '<' prefix, got {line[:10]!r}"
            )
    if pattern is not None:
        raise ValueError("file ended with an unpaired pattern line")


def read_seq_file(path: str | Path) -> list[SequencePair]:
    """Read a ``.seq`` file into :class:`SequencePair` objects."""
    with open(path, "r", encoding="ascii") as fh:
        return [
            SequencePair(pattern=pat, text=txt, pair_id=i)
            for i, (pat, txt) in enumerate(iter_seq_lines(fh))
        ]


def write_seq_file(path: str | Path, pairs: Iterable[SequencePair]) -> int:
    """Write pairs to a ``.seq`` file; returns the number written."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for pair in pairs:
            fh.write(f">{pair.pattern}\n<{pair.text}\n")
            count += 1
    return count
