"""Sequence-pair file I/O: ``.seq``, FASTA and FASTQ, streamed.

The native format is ``.seq``, used by the reference WFA tools [14] —
each alignment job is two consecutive lines::

    >PATTERN
    <TEXT

(the ``>`` line is the query/pattern, the ``<`` line the text/reference).
Blank lines are ignored.  This keeps our synthetic input sets and any
externally produced ones interchangeable with the WFA ecosystem's tooling.

Real long-read data arrives as FASTA or FASTQ instead, and a 50 kbp read
set does not want to be slurped whole: :func:`stream_pairs` yields
:class:`SequencePair` objects lazily from any of the three formats, with
:func:`sniff_format` telling them apart from the first bytes (``@`` —
FASTQ; ``>`` followed by a ``<`` line — ``.seq``; ``>`` otherwise —
FASTA).  In FASTA/FASTQ, **consecutive records pair up**: record ``2i``
is pair *i*'s pattern, record ``2i+1`` its text, and an odd record count
is an error.  :func:`iter_pair_chunks` re-chunks any pair iterator for
bounded-memory batch submission (the CLI's ``--stream-chunk``).

Malformed input of any kind — wrong structure, truncated records, or a
non-ASCII byte anywhere in the file — raises :class:`ValueError` with
file and position context, never a raw :class:`UnicodeDecodeError`.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, Iterator

from .generator import SequencePair

__all__ = [
    "read_seq_file",
    "write_seq_file",
    "iter_seq_lines",
    "SEQUENCE_FORMATS",
    "sniff_format",
    "iter_fasta_records",
    "iter_fastq_records",
    "stream_pairs",
    "read_pairs_file",
    "iter_pair_chunks",
]

#: The input formats :func:`stream_pairs` understands (and
#: :func:`sniff_format` can detect).
SEQUENCE_FORMATS = ("seq", "fasta", "fastq")


def _ascii_lines(fh: IO[str], path: str | Path) -> Iterator[str]:
    """Yield ``fh``'s lines, mapping decode failures to the module contract.

    Every reader here opens files with ``encoding="ascii"`` (sequence
    data and headers are ASCII by format definition), so a stray
    non-ASCII byte — a UTF-8 header, a gzip magic number, a truncated
    download — would otherwise surface as a raw
    :class:`UnicodeDecodeError` from deep inside the line iterator.
    This wrapper re-raises it as the module's contractual
    :class:`ValueError`, naming the file, the offending byte and the
    line the reader had reached (approximate: the decoder works on
    buffered chunks, so the byte sits on or shortly after that line).
    """
    lineno = 0
    while True:
        try:
            line = fh.readline()
        except UnicodeDecodeError as exc:
            bad = exc.object[exc.start]
            byte = bad if isinstance(bad, int) else ord(bad)
            raise ValueError(
                f"{path}: non-ASCII byte {byte:#04x} near line {lineno + 1} "
                "— sequence files (headers included) must be ASCII"
            ) from exc
        if not line:
            return
        lineno += 1
        yield line


def iter_seq_lines(lines: Iterable[str]) -> Iterator[tuple[str, str]]:
    """Yield (pattern, text) tuples from ``.seq``-format lines."""
    pattern: str | None = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if pattern is not None:
                raise ValueError(
                    f"line {lineno}: pattern line while a pattern is pending"
                )
            pattern = line[1:].strip()
        elif line.startswith("<"):
            if pattern is None:
                raise ValueError(f"line {lineno}: text line without a pattern")
            yield pattern, line[1:].strip()
            pattern = None
        else:
            raise ValueError(
                f"line {lineno}: expected '>' or '<' prefix, got {line[:10]!r}"
            )
    if pattern is not None:
        raise ValueError("file ended with an unpaired pattern line")


def read_seq_file(path: str | Path) -> list[SequencePair]:
    """Read a ``.seq`` file into :class:`SequencePair` objects."""
    with open(path, "r", encoding="ascii") as fh:
        return [
            SequencePair(pattern=pat, text=txt, pair_id=i)
            for i, (pat, txt) in enumerate(iter_seq_lines(_ascii_lines(fh, path)))
        ]


def write_seq_file(path: str | Path, pairs: Iterable[SequencePair]) -> int:
    """Write pairs to a ``.seq`` file; returns the number written."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for pair in pairs:
            fh.write(f">{pair.pattern}\n<{pair.text}\n")
            count += 1
    return count


# -- FASTA / FASTQ streaming ------------------------------------------------


def sniff_format(path: str | Path) -> str:
    """Detect a sequence file's format from its first non-blank lines.

    ``@`` opens a FASTQ record; ``>`` opens either a ``.seq`` pattern
    line (the next non-blank line then starts with ``<``) or a FASTA
    header (anything else).  An empty file reads as ``.seq`` — zero
    pairs, whatever the intent.  Raises :class:`ValueError` when the
    first line fits no format.
    """
    first: str | None = None
    with open(path, "r", encoding="ascii") as fh:
        for raw in _ascii_lines(fh, path):
            line = raw.strip()
            if not line:
                continue
            if first is None:
                first = line
                continue
            if first.startswith(">"):
                return "seq" if line.startswith("<") else "fasta"
            break
    if first is None:
        return "seq"
    if first.startswith("@"):
        return "fastq"
    if first.startswith(">"):
        # A lone ">" line: an unpaired .seq pattern and a sequence-less
        # FASTA record are both malformed; .seq gives the better error.
        return "seq"
    raise ValueError(
        f"{path}: cannot detect sequence format (first line {first[:20]!r} "
        "opens neither '.seq'/FASTA ('>') nor FASTQ ('@'))"
    )


def iter_fasta_records(lines: Iterable[str]) -> Iterator[tuple[str, str]]:
    """Yield ``(name, sequence)`` from FASTA lines, lazily.

    Multi-line sequences are concatenated; blank lines are ignored.
    """
    name: str | None = None
    chunks: list[str] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield name, "".join(chunks)
            name = line[1:].strip()
            chunks = []
        elif name is None:
            raise ValueError(
                f"line {lineno}: sequence data before the first '>' header"
            )
        else:
            chunks.append(line)
    if name is not None:
        yield name, "".join(chunks)


def iter_fastq_records(lines: Iterable[str]) -> Iterator[tuple[str, str]]:
    """Yield ``(name, sequence)`` from FASTQ lines, lazily.

    Strict four-line records (``@name`` / sequence / ``+`` / quality,
    with matching sequence and quality lengths); blank lines between
    records are tolerated, the quality string is discarded.
    """
    it = iter(lines)
    record = 0
    while True:
        header = next(it, None)
        if header is None:
            return
        head = header.strip()
        if not head:
            continue
        record += 1
        if not head.startswith("@"):
            raise ValueError(
                f"FASTQ record {record}: header {head[:20]!r} must start with '@'"
            )
        try:
            seq = next(it).strip()
            plus = next(it).strip()
            qual = next(it).strip()
        except StopIteration:
            raise ValueError(
                f"FASTQ record {record} ({head[:20]!r}) is truncated"
            ) from None
        if not plus.startswith("+"):
            raise ValueError(
                f"FASTQ record {record}: separator {plus[:20]!r} must start with '+'"
            )
        if len(qual) != len(seq):
            raise ValueError(
                f"FASTQ record {record}: quality length {len(qual)} != "
                f"sequence length {len(seq)}"
            )
        yield head[1:].strip(), seq


def _pair_records(
    records: Iterator[tuple[str, str]], source: str | Path
) -> Iterator[SequencePair]:
    """Pair consecutive FASTA/FASTQ records into alignment jobs."""
    pending: tuple[str, str] | None = None
    slot = 0
    for name, seq in records:
        if pending is None:
            pending = (name, seq)
            continue
        yield SequencePair(pattern=pending[1], text=seq, pair_id=slot)
        slot += 1
        pending = None
    if pending is not None:
        raise ValueError(
            f"{source}: odd number of records — pattern record "
            f"{pending[0]!r} has no text mate"
        )


def stream_pairs(
    path: str | Path, format: str | None = None
) -> Iterator[SequencePair]:
    """Yield :class:`SequencePair` objects from a file, lazily.

    ``format`` is one of :data:`SEQUENCE_FORMATS`, or ``None`` to
    autodetect with :func:`sniff_format`.  Pairs are numbered from 0 in
    file order.  The file is held open only while the iterator is
    consumed — a 50 kbp-read FASTQ never needs to fit in memory at once.
    """
    fmt = format if format is not None else sniff_format(path)
    if fmt not in SEQUENCE_FORMATS:
        raise ValueError(
            f"unknown sequence format {fmt!r}; "
            f"expected one of {', '.join(SEQUENCE_FORMATS)}"
        )
    with open(path, "r", encoding="ascii") as fh:
        lines = _ascii_lines(fh, path)
        if fmt == "seq":
            for slot, (pat, txt) in enumerate(iter_seq_lines(lines)):
                yield SequencePair(pattern=pat, text=txt, pair_id=slot)
        else:
            records = (
                iter_fasta_records(lines)
                if fmt == "fasta"
                else iter_fastq_records(lines)
            )
            yield from _pair_records(records, path)


def read_pairs_file(
    path: str | Path, format: str | None = None
) -> list[SequencePair]:
    """Read a whole ``.seq``/FASTA/FASTQ file (autodetected) into a list."""
    return list(stream_pairs(path, format))


def iter_pair_chunks(
    pairs: Iterable[SequencePair], chunk_size: int
) -> Iterator[list[SequencePair]]:
    """Re-chunk a pair stream into lists of at most ``chunk_size``.

    The bounded-memory submission loop for streamed ingestion: each
    chunk is one engine batch, so peak resident pairs stay at
    ``chunk_size`` however long the input file is.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunk: list[SequencePair] = []
    for pair in pairs:
        chunk.append(pair)
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
