"""Repository tooling (not shipped with the ``repro`` package).

Subpackages/scripts:

* ``tools.wfalint`` — the domain-aware static-analysis pass
  (``python -m tools.wfalint``, see ``docs/static-analysis.md``);
* ``tools/check_docs.py`` — markdown link check + docstring coverage;
* ``tools/sync_readme.py`` — README CLI-reference generator.
"""
