"""Command-line front end for wfalint.

Run from the repository root::

    python -m tools.wfalint src            # lint the package (CI gate)
    python -m tools.wfalint --list-rules   # what the rules protect
    python -m tools.wfalint src --format json
    python -m tools.wfalint src --update-baseline

Exit codes: 0 clean, 1 findings (or unparsable files), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .baseline import Baseline, DEFAULT_BASELINE_PATH
from .core import iter_rules, rule_ids
from .runner import LintResult, run_lint

__all__ = ["main", "build_parser"]

_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    """The ``wfalint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="wfalint",
        description=(
            "Domain-aware static analysis for the WFAsic reproduction "
            "(see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to lint (default: <--root>/src plus "
            "benchmarks/, examples/ and tools/ when present — the "
            "linter lints itself)"
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root for path scoping / relpaths (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout",
    )
    parser.add_argument(
        "--json-report",
        metavar="PATH",
        help="additionally write the JSON report here (CI artifact)",
    )
    parser.add_argument(
        "--graph",
        metavar="PATH",
        help=(
            "write the phase-1 project index (import/call graph, async "
            "reachability) as JSON here (CI artifact)"
        ),
    )
    parser.add_argument(
        "--github-annotations",
        action="store_true",
        help=(
            "additionally emit GitHub workflow annotations "
            "(::error file=...,line=...) for every reported finding"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE_PATH} under --root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list suppressed/baselined findings (informational)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    return parser


def _parse_rule_set(spec: str | None) -> set[str] | None:
    if spec is None:
        return None
    ids = {part.strip().upper() for part in spec.split(",") if part.strip()}
    unknown = ids - set(rule_ids())
    if unknown:
        raise SystemExit(f"wfalint: unknown rule ids: {sorted(unknown)}")
    return ids


def _format_rules() -> str:
    lines = []
    for rule in iter_rules():
        lines.append(f"{rule.id} {rule.name} [{rule.severity}]")
        lines.append(f"    {rule.description}")
        lines.append(f"    invariant: {rule.invariant}")
        scope = ", ".join(rule.path_fragments) or "everywhere"
        lines.append(f"    scope: {scope}")
    return "\n".join(lines)


def _json_report(result: LintResult) -> dict:
    """The machine-readable report (uploaded as a CI artifact)."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "tool": "wfalint",
        "summary": result.summary(),
        "findings": [f.as_dict() for f in result.reported],
        "parse_errors": [f.as_dict() for f in result.parse_errors],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "baselined": [f.as_dict() for f in result.baselined],
        "stale_baseline": result.stale_baseline,
        "rules": [
            {
                "id": r.id,
                "name": r.name,
                "severity": r.severity,
                "description": r.description,
                "invariant": r.invariant,
            }
            for r in iter_rules()
        ],
    }


def _annotation_escape(text: str) -> str:
    """Escape a message for the GitHub workflow-command data section."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _annotations(result: LintResult) -> list[str]:
    """GitHub workflow-command lines for every reported finding.

    Printed to stdout inside the CI job so findings surface as inline
    annotations on the pull-request diff.
    """
    lines: list[str] = []
    for finding in [*result.parse_errors, *result.reported]:
        level = "error" if finding.severity == "error" else "warning"
        message = _annotation_escape(
            f"{finding.rule_id}: {finding.message}"
        )
        lines.append(
            f"::{level} file={finding.path},line={finding.line},"
            f"col={max(finding.col, 1)},title=wfalint {finding.rule_id}"
            f"::{message}"
        )
    return lines


def _text_report(result: LintResult, show_suppressed: bool) -> str:
    lines = [f.format() for f in result.parse_errors]
    lines += [f.format() for f in result.reported]
    if show_suppressed:
        lines += [
            f.format() + "  (suppressed inline)" for f in result.suppressed
        ]
        lines += [
            f.format() + "  (baselined)" for f in result.baselined
        ]
    s = result.summary()
    lines.append(
        f"wfalint: {s['reported']} finding(s) "
        f"({s['errors']} error(s), {s['warnings']} warning(s)), "
        f"{s['suppressed']} suppressed, {s['baselined']} baselined, "
        f"{s['files_checked']} file(s) checked"
    )
    if s["parse_errors"]:
        lines.append(f"wfalint: {s['parse_errors']} unparsable file(s)")
    if s["stale_baseline"]:
        lines.append(
            f"wfalint: {s['stale_baseline']} stale baseline entr(y/ies) — "
            "rerun with --update-baseline to prune"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (also reached via ``python -m tools.wfalint``)."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_format_rules())
        return 0

    root = Path(args.root).resolve()
    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else root / DEFAULT_BASELINE_PATH
    )
    try:
        baseline = Baseline.load(baseline_path)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"wfalint: bad baseline: {exc}", file=sys.stderr)
        return 2

    # The default target is the CI scope under --root, not under the
    # cwd, so `repro-wfasic lint -- --format json` works from any
    # directory.  benchmarks/, examples/ and tools/ are optional: a
    # source distribution may ship without them.  tools/ puts the
    # linter itself in scope — the analyzer honors its own contracts.
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [root / "src"] + [
            root / extra
            for extra in ("benchmarks", "examples", "tools")
            if (root / extra).is_dir()
        ]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"wfalint: no such path: {missing}", file=sys.stderr)
        return 2

    result = run_lint(
        paths,
        root=root,
        baseline=baseline,
        select=_parse_rule_set(args.select),
        ignore=_parse_rule_set(args.ignore),
        graph=args.graph is not None,
    )

    if args.update_baseline:
        # Grandfather what the run reported (suppressed findings stay
        # suppressed inline; already-baselined ones stay baselined).
        new_baseline = Baseline.from_findings(
            result.reported + result.baselined
        )
        new_baseline.write(baseline_path)
        print(
            f"wfalint: baseline updated with {len(new_baseline)} finding(s) "
            f"at {baseline_path}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(_json_report(result), indent=2))
    else:
        print(_text_report(result, args.show_suppressed))
    if args.github_annotations:
        for line in _annotations(result):
            print(line)
    if args.json_report:
        Path(args.json_report).write_text(
            json.dumps(_json_report(result), indent=2) + "\n",
            encoding="utf-8",
        )
    if args.graph:
        Path(args.graph).write_text(
            json.dumps(result.graph or {}, indent=2) + "\n",
            encoding="utf-8",
        )
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
