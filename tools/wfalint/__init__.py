"""wfalint — domain-aware static analysis for the WFAsic reproduction.

An AST-based pass with a pluggable rule registry, per-rule severity,
inline ``# wfalint: disable=RULE`` suppression, a committed baseline
for grandfathered findings, and text/JSON output.  The eight built-in
rules (W001–W008) machine-check the repository's correctness contracts
— seed-reproducible runs, integral cycle accounting, the engine's
fault-isolation and pickling contracts, the closed metrics vocabulary —
*before* code runs; the differential tests can only sample them.

Run ``python -m tools.wfalint src`` from the repository root (or
``repro-wfasic lint`` from a checkout); see ``docs/static-analysis.md``
for the rule reference and extension guide.
"""

from __future__ import annotations

from .baseline import Baseline, DEFAULT_BASELINE_PATH
from .cli import build_parser, main
from .core import (
    FileContext,
    Finding,
    Rule,
    get_rule,
    iter_rules,
    register,
    rule_ids,
)
from .runner import LintResult, collect_files, run_lint

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_PATH",
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "build_parser",
    "collect_files",
    "get_rule",
    "iter_rules",
    "main",
    "register",
    "rule_ids",
    "run_lint",
]

__version__ = "1.0.0"
