"""Core wfalint types: findings, rules, the registry, suppressions.

The framework is deliberately small: a rule is a class with an ``id``
(``W###``), a ``severity``, a set of path fragments scoping where it
applies, and a ``check(ctx)`` method that walks the file's AST and
yields :class:`Finding` objects.  Everything else (inline suppression,
the committed baseline, output formatting) is handled uniformly by the
runner so rules stay single-purpose.

Rules register themselves with the :func:`register` decorator; the
registry maps rule ids to singleton instances.  Third parties (or
future PRs extending the pass to ``benchmarks/``/``examples/``) add a
rule by importing :mod:`tools.wfalint.core` and decorating a subclass —
no framework edits needed.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Severity",
    "Finding",
    "FileContext",
    "Rule",
    "ProjectRule",
    "register",
    "get_rule",
    "iter_rules",
    "rule_ids",
    "parse_suppressions",
]

#: Ordered severity levels (display + filtering; every reported finding
#: fails the run regardless of severity — CI must not accrue warnings).
SEVERITIES = ("warning", "error")

Severity = str

#: A comment of the form ``wfalint: disable=W001,W002`` (or
#: ``disable=all``) suppresses matching findings on its own line.
#: Anything after the rule list (conventionally an em-dash
#: justification) is free text.  The example above is deliberately not
#: written with its leading hash so this very comment is not parsed as
#: a (stale) directive when the linter lints itself.
_SUPPRESS_RE = re.compile(
    r"#\s*wfalint:\s*disable=(all|[Ww]\d{3}(?:\s*,\s*[Ww]\d{3})*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str  # repo-root-relative, POSIX separators
    line: int  # 1-based
    col: int  # 0-based, as reported by the AST
    message: str
    #: The stripped source line, used for the baseline fingerprint so
    #: grandfathered findings survive unrelated line-number drift.
    source_line: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (rule, path, code)."""
        payload = f"{self.rule_id}\0{self.path}\0{self.source_line}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly view (the ``--json-report`` schema)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def format(self) -> str:
        """``path:line:col: RULE [severity] message`` (one text line)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )


@dataclass
class FileContext:
    """Everything a rule needs to check one file."""

    path: Path  # absolute
    relpath: str  # repo-root-relative, POSIX separators
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, root: Path) -> "FileContext":
        """Parse ``path`` (raises ``SyntaxError`` on unparsable files)."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(
            path=path,
            relpath=rel,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    def source_line(self, lineno: int) -> str:
        """The stripped source text of 1-based ``lineno`` ('' if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for wfalint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``path_fragments`` scopes the rule: it applies when any fragment is
    a substring of the file's POSIX relpath (empty tuple = every file).
    That fragment matching — rather than absolute paths — is what lets
    the test suite exercise rules on fixture trees laid out like the
    real package (``.../repro/wfasic/...``).
    """

    id: str = ""
    name: str = ""
    severity: Severity = "error"
    description: str = ""
    #: The repository invariant the rule protects (rendered by
    #: ``--list-rules`` and docs/static-analysis.md).
    invariant: str = ""
    path_fragments: tuple[str, ...] = ()
    #: Fragments that exempt a file even when ``path_fragments`` match.
    exclude_fragments: tuple[str, ...] = ()

    def applies(self, relpath: str) -> bool:
        """Whether this rule runs on ``relpath`` at all."""
        if any(frag in relpath for frag in self.exclude_fragments):
            return False
        if not self.path_fragments:
            return True
        return any(frag in relpath for frag in self.path_fragments)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=ctx.relpath,
            line=line,
            col=col,
            message=message,
            source_line=ctx.source_line(line),
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (the W009+ family).

    Per-file rules see one :class:`FileContext` at a time; a
    ``ProjectRule`` instead runs once per lint invocation against the
    phase-1 :class:`~tools.wfalint.project.ProjectIndex` (import graph,
    call graph over fully-qualified names, ``async def`` reachability,
    class attribute/resource tables).  Findings flow through the same
    suppression / baseline / severity machinery as per-file findings —
    they are anchored at real source locations, so an inline
    ``# wfalint: disable=`` on the offending line works unchanged.

    ``path_fragments`` still scopes where findings may be *anchored*
    (the runner drops out-of-scope findings), but the index always
    covers every linted file — cross-module evidence is the point.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Project rules have no per-file phase."""
        return iter(())

    def check_project(self, index: "object") -> Iterator[Finding]:
        """Yield findings against the whole-program index.

        ``index`` is a :class:`tools.wfalint.project.ProjectIndex`
        (typed loosely here to keep ``core`` free of the dependency).
        """
        raise NotImplementedError

    def project_finding(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        source_line: str = "",
    ) -> Finding:
        """Build a finding at an explicit location (non-Python artifacts
        like ``docs/observability.md`` have no :class:`FileContext`)."""
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
            source_line=source_line,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (as a singleton) to the registry."""
    if not cls.id or not re.fullmatch(r"W\d{3}", cls.id):
        raise ValueError(f"rule {cls.__name__} needs an id like 'W001'")
    if cls.severity not in SEVERITIES:
        raise ValueError(
            f"rule {cls.id}: severity must be one of {SEVERITIES}"
        )
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def get_rule(rule_id: str) -> Rule:
    """The registered rule for ``rule_id`` (``KeyError`` if unknown)."""
    return _REGISTRY[rule_id]


def iter_rules() -> list[Rule]:
    """All registered rules, ordered by id."""
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    """Sorted registered rule ids."""
    return sorted(_REGISTRY)


def parse_suppressions(lines: Iterable[str]) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line.

    ``{'all'}`` means every rule is suppressed on the line.  The runner
    applies a line's directives to findings on that line and — when the
    directive line is a pure comment — to findings on the next line;
    either way the justification sits next to the code it excuses.
    """
    suppressions: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "wfalint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        spec = match.group(1)
        if spec.strip().lower() == "all":
            suppressions[lineno] = {"all"}
        else:
            rules = {
                part.strip().upper()
                for part in spec.split(",")
                if part.strip()
            }
            if rules:
                suppressions[lineno] = rules
    return suppressions
