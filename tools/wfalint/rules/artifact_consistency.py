"""W012 — code and docs artifacts describe the same observability surface.

``docs/observability.md`` promises operators a *closed* vocabulary and
a complete trace-event catalogue; ``src/repro/obs/vocabulary.py`` is
the machine-readable half of the metric promise.  W006 already pins
call sites to the vocabulary module — this rule closes the remaining
gaps *across artifacts*, whole-program:

* every ``METRIC_NAMES`` entry appears in the docs' metric tables and
  every documented metric appears in ``METRIC_NAMES`` (bidirectional —
  a metric documented but never declared is as misleading as one
  declared but never documented);
* every ``Tracer`` span name emitted anywhere in the project
  (``complete``/``span``/``cycle_span`` call sites, resolved through
  the call graph — literals, f-strings as wildcards, loop bindings and
  literal arguments threaded through helper parameters like
  ``_timed``) matches a row of the docs' event catalogue, and every
  catalogued event is actually emitted somewhere;
* span begin/end discipline: a function that captures a span clock
  (``start = tracer.now_us()``) must either emit a span itself or pass
  the captured value onward — a dangling clock capture is a span that
  was begun and never completed.

The docs-facing checks only run when ``docs/observability.md`` exists
under the lint root (a source distribution may ship without docs).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator

from ..core import Finding, ProjectRule, register
from ..project import CallSite, FunctionInfo, ProjectIndex
from .metrics_vocab import _LiteralBindings, _fstring_pattern, load_vocabulary

#: Tracer methods whose first argument is a span name.
_SPAN_METHODS = {"complete", "span", "cycle_span"}

#: Docs catalogue rows satisfied by ``name_thread`` metadata emission.
_META_EVENTS = {"process_name", "thread_name"}

_DOCS_RELPATH = Path("docs") / "observability.md"

_BACKTICK_RE = re.compile(r"`([^`]+)`")


def _doc_table_cells(
    lines: list[str], header: str
) -> list[tuple[int, str]]:
    """``(lineno, token)`` for every backticked token in the first cell
    of every table whose header row's first cell is ``header``."""
    out: list[tuple[int, str]] = []
    in_table = False
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            in_table = False
            continue
        cells = [c.strip() for c in stripped.strip("|").split("|")]
        if not cells:
            continue
        if cells[0] == header:
            in_table = True
            continue
        if set(cells[0]) <= {"-", " ", ":"}:
            continue  # separator row
        if in_table:
            for token in _BACKTICK_RE.findall(cells[0]):
                out.append((lineno, token))
    return out


def _is_tracer_target(call: CallSite, methods: set[str]) -> bool:
    attr = call.raw.rsplit(".", 1)[-1]
    if attr not in methods:
        return False
    if any(
        t.rsplit(".", 2)[-2:-1] == ["Tracer"] for t in call.targets
    ):
        return True
    receiver = call.raw.rsplit(".", 1)[0]
    return receiver in ("tracer", "tr") or receiver.endswith(".tracer")


@register
class ArtifactConsistencyRule(ProjectRule):
    """W012 — vocabulary, docs tables and span emissions agree."""

    id = "W012"
    name = "artifact-consistency"
    severity = "error"
    description = (
        "The metric vocabulary, the docs/observability.md tables and "
        "the Tracer span names actually emitted have drifted apart — a "
        "declared metric missing its docs row, a documented event "
        "nothing emits, or a span clock captured and never completed."
    )
    invariant = (
        "docs/observability.md is the operator contract: its metric "
        "tables equal repro.obs.vocabulary.METRIC_NAMES exactly, its "
        "event catalogue equals the set of spans the code emits, and "
        "every span begun is completed (docs/observability.md)."
    )
    # Findings anchor in repro modules *and* the docs file itself.
    path_fragments = ("repro/", "docs/")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        yield from self._check_span_discipline(index)
        docs_path = index.root / _DOCS_RELPATH
        if not docs_path.is_file():
            return
        doc_lines = docs_path.read_text(encoding="utf-8").splitlines()
        docs_rel = _DOCS_RELPATH.as_posix()
        yield from self._check_metrics(index, doc_lines, docs_rel)
        yield from self._check_spans(index, doc_lines, docs_rel)

    # -- metrics -------------------------------------------------------

    def _check_metrics(
        self, index: ProjectIndex, doc_lines: list[str], docs_rel: str
    ) -> Iterator[Finding]:
        vocab = load_vocabulary(index.root)
        if vocab is None:
            return
        metric_names, _ = vocab
        rows = _doc_table_cells(doc_lines, "Metric")
        documented = {token for _, token in rows}
        doc_line_of = {token: lineno for lineno, token in rows}
        vocab_mod = index.modules.get("repro.obs.vocabulary")
        for name in sorted(metric_names - documented):
            line, source = 1, ""
            if vocab_mod is not None:
                for node in ast.walk(vocab_mod.ctx.tree):
                    if (
                        isinstance(node, ast.Constant)
                        and node.value == name
                    ):
                        line = node.lineno
                        source = vocab_mod.ctx.source_line(line)
                        break
                path = vocab_mod.ctx.relpath
            else:
                path = docs_rel
            yield self.project_finding(
                path,
                line,
                0,
                f"metric `{name}` is declared in METRIC_NAMES but has "
                "no row in the docs/observability.md metric tables",
                source,
            )
        for name in sorted(documented - metric_names):
            lineno = doc_line_of[name]
            yield self.project_finding(
                docs_rel,
                lineno,
                0,
                f"metric `{name}` is documented in observability.md "
                "but missing from repro.obs.vocabulary.METRIC_NAMES",
                doc_lines[lineno - 1].strip(),
            )

    # -- spans ---------------------------------------------------------

    def _emitted_spans(
        self, index: ProjectIndex
    ) -> tuple[
        list[tuple[str, FunctionInfo, CallSite]],
        list[tuple[str, FunctionInfo, CallSite]],
        bool,
    ]:
        """``(literals, patterns, name_thread_seen)`` across the project."""
        literals: list[tuple[str, FunctionInfo, CallSite]] = []
        patterns: list[tuple[str, FunctionInfo, CallSite]] = []
        name_thread_seen = False
        bindings_cache: dict[str, _LiteralBindings] = {}
        for func in index.functions.values():
            for call in func.calls:
                if _is_tracer_target(call, {"name_thread"}):
                    name_thread_seen = True
                    continue
                if not _is_tracer_target(call, _SPAN_METHODS):
                    continue
                name_arg = self._name_arg(call.node)
                if name_arg is None:
                    continue
                for kind, value in self._resolve_name_arg(
                    index, func, call, name_arg, bindings_cache
                ):
                    (literals if kind == "literal" else patterns).append(
                        (value, func, call)
                    )
        return literals, patterns, name_thread_seen

    @staticmethod
    def _name_arg(node: ast.Call) -> ast.expr | None:
        if node.args:
            return node.args[0]
        for kw in node.keywords:
            if kw.arg == "name":
                return kw.value
        return None

    def _resolve_name_arg(
        self,
        index: ProjectIndex,
        func: FunctionInfo,
        call: CallSite,
        name_arg: ast.expr,
        bindings_cache: dict[str, _LiteralBindings],
    ) -> list[tuple[str, str]]:
        """``("literal"|"pattern", value)`` candidates for a name arg."""
        if isinstance(name_arg, ast.Constant) and isinstance(
            name_arg.value, str
        ):
            return [("literal", name_arg.value)]
        if isinstance(name_arg, ast.JoinedStr):
            pattern = _fstring_pattern(name_arg)
            return [("pattern", pattern)] if pattern else []
        if isinstance(name_arg, ast.Name):
            path = func.ctx.relpath
            if path not in bindings_cache:
                bindings = _LiteralBindings()
                bindings.visit(func.ctx.tree)
                bindings_cache[path] = bindings
            bindings = bindings_cache[path]
            values = bindings.values.get(name_arg.id)
            if values and name_arg.id not in bindings.tainted:
                return [("literal", v) for v in sorted(values)]
            if name_arg.id in func.params:
                return [
                    ("literal", v)
                    for v in sorted(
                        self._literals_through_param(
                            index, func, name_arg.id
                        )
                    )
                ]
        return []

    @staticmethod
    def _literals_through_param(
        index: ProjectIndex, func: FunctionInfo, param: str
    ) -> set[str]:
        """Literal values callers pass for ``param`` of ``func`` — the
        helper-function span-name pattern (``_timed(prof, tracer,
        "resolve")``)."""
        idx = func.params.index(param)
        out: set[str] = set()
        for call in index.callers_of(func.qualname):
            node = call.node
            offset = 1 if func.is_method and "." in call.raw else 0
            pos = idx - offset
            candidate: ast.expr | None = None
            if 0 <= pos < len(node.args):
                candidate = node.args[pos]
            for kw in node.keywords:
                if kw.arg == param:
                    candidate = kw.value
            if isinstance(candidate, ast.Constant) and isinstance(
                candidate.value, str
            ):
                out.add(candidate.value)
        return out

    def _check_spans(
        self, index: ProjectIndex, doc_lines: list[str], docs_rel: str
    ) -> Iterator[Finding]:
        rows = _doc_table_cells(doc_lines, "Event name")
        if not rows:
            return
        doc_names = {token for _, token in rows}
        literals, patterns, name_thread_seen = self._emitted_spans(index)

        for value, func, call in literals:
            if value not in doc_names:
                yield self.finding(
                    func.ctx,
                    call.node,
                    f"trace span `{value}` is emitted but missing from "
                    "the docs/observability.md event catalogue",
                )
        for pattern, func, call in patterns:
            if not any(re.fullmatch(pattern, d) for d in doc_names):
                yield self.finding(
                    func.ctx,
                    call.node,
                    "dynamic trace span name matches no row of the "
                    "docs/observability.md event catalogue",
                )

        emitted_literals = {v for v, _, _ in literals}
        emitted_patterns = [p for p, _, _ in patterns]
        for lineno, name in rows:
            if name in _META_EVENTS:
                if name_thread_seen:
                    continue
            elif name in emitted_literals or any(
                re.fullmatch(p, name) for p in emitted_patterns
            ):
                continue
            yield self.project_finding(
                docs_rel,
                lineno,
                0,
                f"documented trace event `{name}` is never emitted by "
                "any Tracer call site",
                doc_lines[lineno - 1].strip(),
            )

    # -- begin/end discipline -----------------------------------------

    def _check_span_discipline(
        self, index: ProjectIndex
    ) -> Iterator[Finding]:
        for func in index.functions.values():
            if not self.applies(func.ctx.relpath):
                continue
            clock_calls = {
                id(c.node)
                for c in func.calls
                if _is_tracer_target(c, {"now_us"})
            }
            if not clock_calls:
                continue
            emits = any(
                _is_tracer_target(c, _SPAN_METHODS) for c in func.calls
            )
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Assign):
                    continue
                captured = [
                    t.id
                    for t in node.targets
                    if isinstance(t, ast.Name)
                ]
                if not captured or not any(
                    isinstance(sub, ast.Call) and id(sub) in clock_calls
                    for sub in ast.walk(node.value)
                ):
                    continue
                name = captured[0]
                if emits or self._used_as_argument(func.node, name):
                    continue
                yield self.finding(
                    func.ctx,
                    node,
                    f"span clock `{name} = tracer.now_us()` captured "
                    "but this function neither emits a span nor passes "
                    "the clock onward — a span begun is never completed",
                )

    @staticmethod
    def _used_as_argument(func_node: ast.AST, name: str) -> bool:
        for node in ast.walk(func_node):
            if isinstance(node, ast.Call):
                for arg in [
                    *node.args,
                    *[kw.value for kw in node.keywords],
                ]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name) and sub.id == name:
                            return True
            elif isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        return False
