"""Robustness rules: W003 (blanket excepts), W004 (mutable defaults).

W003 protects the PR-3 fault-isolation contract: the engine promises
that one malformed pair yields one errored ``PairOutcome`` and that
*cancellation still works* — a bare ``except:`` (or
``except BaseException``) in a worker path swallows
``KeyboardInterrupt``/``SystemExit`` and turns a stuck worker into a
stuck batch.  Catching ``Exception`` is the sanctioned blanket.

W004 is the classic shared-mutable-default trap, upgraded to an error
here because engine/backend objects are long-lived and cross process
boundaries — a mutated default silently couples unrelated calls (and
unrelated *pickled copies*).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, register

#: Call targets whose zero-arg result is a fresh mutable container —
#: still a shared default when evaluated once at def time.
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}

_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises (bare ``raise``) on every path.

    A conservative approximation: any bare ``raise`` directly in the
    handler body counts — the common log-and-reraise idiom.
    """
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


@register
class BlanketExceptRule(Rule):
    """W003 — no bare/`BaseException` excepts in engine worker paths."""

    id = "W003"
    name = "blanket-except"
    severity = "error"
    description = (
        "`except:` and `except BaseException:` are forbidden in "
        "`repro.engine` unless the handler re-raises: they swallow "
        "KeyboardInterrupt/SystemExit and break worker cancellation."
    )
    invariant = (
        "Fault isolation is per pair (one bad pair = one errored "
        "PairOutcome); worker teardown signals must propagate."
    )
    path_fragments = ("repro/engine/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            kind = None
            if node.type is None:
                kind = "bare `except:`"
            elif (
                isinstance(node.type, ast.Name)
                and node.type.id == "BaseException"
            ):
                kind = "`except BaseException:`"
            if kind is None or _reraises(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"{kind} in an engine worker path swallows "
                "KeyboardInterrupt/SystemExit; catch `Exception` (or "
                "re-raise)",
            )


@register
class MutableDefaultRule(Rule):
    """W004 — no mutable default argument values."""

    id = "W004"
    name = "mutable-default"
    severity = "error"
    description = (
        "Mutable default arguments (`[]`, `{}`, `set()`, comprehension "
        "displays, zero-arg container factories) are evaluated once and "
        "shared across calls; default to `None` and construct inside."
    )
    invariant = (
        "Call-independent behaviour: engine/backend objects are "
        "long-lived and pickled; a mutated default couples them."
    )
    path_fragments = ()  # everywhere scanned

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            annotated = list(
                zip(args.posonlyargs + args.args, self._pos_defaults(args))
            ) + list(zip(args.kwonlyargs, args.kw_defaults))
            for arg, default in annotated:
                if default is None:
                    continue
                if isinstance(default, _MUTABLE_DISPLAYS):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default for `{arg.arg}` in "
                        f"`{node.name}()` is shared across calls; use "
                        "`None` and construct inside",
                    )
                elif (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_FACTORIES
                ):
                    yield self.finding(
                        ctx,
                        default,
                        f"`{default.func.id}()` default for `{arg.arg}` in "
                        f"`{node.name}()` is evaluated once and shared; "
                        "use `None` and construct inside",
                    )

    @staticmethod
    def _pos_defaults(args: ast.arguments) -> list[ast.expr | None]:
        """Positional defaults left-padded to align with the arg list."""
        slots: list[ast.expr | None] = [None] * (
            len(args.posonlyargs) + len(args.args)
        )
        if args.defaults:
            slots[-len(args.defaults):] = list(args.defaults)
        return slots
