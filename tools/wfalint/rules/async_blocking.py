"""W009/W014 — event-loop hygiene for the asyncio serving layer.

The serve layer (PR 8) multiplexes every client connection onto one
event loop; a single blocking call anywhere in code the loop runs
stalls *every* connection's deadline accounting at once.  The engine is
explicitly blocking (``align_batch`` joins a multiprocessing pool) and
the blessed pattern is ``loop.run_in_executor(None, engine.align_batch,
pairs)`` — the callable is *passed*, never called, on the loop.

* **W009** (``blocking-call-in-async``) walks every call transitively
  reachable from an ``async def`` in the serve layer (or the CLI's
  serve session) over the phase-1 call graph and flags resolved
  known-blocking callees: ``time.sleep``, synchronous socket/process
  primitives, file I/O (``open``, ``Path.write_text`` and friends), and
  the engine's own blocking entry points.  Calls wrapped in
  ``run_in_executor`` are exempt automatically — there the blocking
  function is an *argument*, not a call, so it never appears as a call
  edge.

* **W014** (``dropped-task-reference``) flags ``create_task`` whose
  result is discarded (an expression statement, or a lambda body such
  as a signal-handler callback).  The event loop keeps only weak
  references to tasks; a fire-and-forget task can be garbage-collected
  mid-flight and silently never run to completion (the asyncio docs'
  own warning).  Keep a reference and discard it in a done callback.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, FileContext, ProjectRule, Rule, register
from ..project import CallSite, ProjectIndex

#: Fully-qualified callees that block the calling thread.
_BLOCKING_QUALIFIED = {
    "time.sleep",
    "socket.create_connection",
    "socket.socket",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "os.waitpid",
    "requests.get",
    "requests.post",
    "urllib.request.urlopen",
}

#: Blocking builtins called by bare name.
_BLOCKING_BUILTINS = {"open", "input"}

#: Attribute names that are blocking file I/O on any plausible receiver
#: (``Path.write_text(...)`` — the receiver is usually a call result the
#: resolver cannot type, so the attribute name is the signal).
_BLOCKING_ATTRS = {
    "write_text",
    "read_text",
    "write_bytes",
    "read_bytes",
}

#: Suffixes of resolved project-internal callees that block (the
#: engine's pool-joining entry points).
_BLOCKING_PROJECT_SUFFIXES = (
    "BatchAlignmentEngine.align_batch",
    "BatchAlignmentEngine.close",
    ".align_pairs",
)

#: Async functions anchored in these path fragments seed reachability.
_ASYNC_ROOT_FRAGMENTS = ("repro/serve/", "repro/cli.py")


def _blocking_reason(call: CallSite) -> str | None:
    """Why this call site blocks, or ``None`` if it does not."""
    for target in call.targets:
        if target in _BLOCKING_QUALIFIED:
            return f"`{target}` blocks the calling thread"
        for suffix in _BLOCKING_PROJECT_SUFFIXES:
            if target.endswith(suffix):
                return (
                    f"`{target}` joins the worker pool / shared-memory "
                    "arena synchronously"
                )
    if call.raw in _BLOCKING_QUALIFIED:
        return f"`{call.raw}` blocks the calling thread"
    if call.raw in _BLOCKING_BUILTINS:
        return f"`{call.raw}()` is synchronous file I/O"
    attr = call.raw.rsplit(".", 1)[-1]
    if "." in call.raw and attr in _BLOCKING_ATTRS:
        return f"`.{attr}()` is synchronous file I/O"
    return None


@register
class BlockingCallInAsyncRule(ProjectRule):
    """W009 — no blocking calls reachable from the event loop."""

    id = "W009"
    name = "blocking-call-in-async"
    severity = "error"
    description = (
        "A call transitively reachable from an `async def` in the serve "
        "layer resolves to a known-blocking callee (`time.sleep`, file/"
        "socket I/O, the engine's pool-joining entry points) without an "
        "intervening `run_in_executor` — it stalls every connection on "
        "the loop."
    )
    invariant = (
        "The event loop never blocks: engine calls and file I/O on the "
        "serving path go through `loop.run_in_executor` "
        "(docs/serving.md)."
    )
    path_fragments = ("repro/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        roots = {
            qual
            for qual, func in index.functions.items()
            if func.is_async
            and any(
                frag in func.ctx.relpath for frag in _ASYNC_ROOT_FRAGMENTS
            )
        }
        if not roots:
            return
        reachable = index.reachable_from(roots)
        for qual in sorted(reachable):
            func = index.functions[qual]
            for call in func.calls:
                reason = _blocking_reason(call)
                if reason is None:
                    continue
                via = (
                    "" if func.is_async
                    else " (reachable from the event loop)"
                )
                yield self.finding(
                    func.ctx,
                    call.node,
                    f"blocking call in async context{via}: {reason}; "
                    "dispatch it via `loop.run_in_executor(...)`",
                )


@register
class DroppedTaskReferenceRule(Rule):
    """W014 — ``create_task`` results must be kept alive."""

    id = "W014"
    name = "dropped-task-reference"
    severity = "error"
    description = (
        "`create_task(...)` whose result is discarded (bare expression "
        "statement or lambda body) — the loop holds only a weak "
        "reference, so the task can be garbage-collected mid-flight and "
        "never finish."
    )
    invariant = (
        "Every spawned task is owned: stored in a live container or "
        "attribute, with `add_done_callback` pruning (the "
        "`_handle_connection` pattern in repro.serve.server)."
    )
    path_fragments = ("repro/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            call = self._dropped_create_task(node)
            if call is not None:
                yield self.finding(
                    ctx,
                    call,
                    "task reference discarded: assign the "
                    "`create_task(...)` result to a kept reference "
                    "(set/attribute) and prune it in a done callback",
                )

    @staticmethod
    def _is_create_task(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "create_task"
        )

    def _dropped_create_task(self, node: ast.AST) -> ast.Call | None:
        if isinstance(node, ast.Expr) and self._is_create_task(node.value):
            return node.value  # bare statement: nothing holds the task
        if isinstance(node, ast.Lambda) and self._is_create_task(node.body):
            return node.body  # e.g. a signal-handler callback
        return None
