"""W010 — shared-memory resources are created paired with a release path.

``SequenceArena`` and ``ResultRing`` (PR 6) own ``/dev/shm`` segments.
Python's GC does not unlink POSIX shared memory: a creation site with
no reachable ``close()``/``with``/finalizer path leaks kernel-visible
segments that survive the process — exactly what the leak battery
(``tests/align/test_arena.py``) exists to catch at runtime.  This rule
catches the *pattern* statically, whole-program: every creation site
must hand the object to something that releases it.

A creation site is accepted when, flow-insensitively:

* it is a ``with`` item (``__exit__`` unlinks);
* it is passed straight into another call (ownership transfer — e.g.
  ``PackCache(arena=SequenceArena())``, whose owner closes it);
* it is assigned to ``self.attr`` on a class that defines ``close``,
  ``__exit__`` or ``__del__`` (the owner has a teardown surface);
* it is assigned to a local that is later closed, used as a ``with``
  item, passed to a call, or returned; or
* it is returned directly — the enclosing function is then a *factory*
  and the rule follows the call graph one level: every resolved caller
  must itself close / transfer / re-return what the factory handed it.

Anything else — a bare ``SequenceArena()`` statement, a local that
falls off the end of the function, a factory result that a caller
discards — is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ProjectRule, register
from ..project import CallSite, FunctionInfo, ProjectIndex

#: Class base names whose instances own ``/dev/shm`` segments.
_TRACKED_CLASSES = {"SequenceArena", "ResultRing"}

#: Method names that count as a teardown surface on an owning class.
_TEARDOWN_METHODS = {"close", "__exit__", "__del__"}


def _is_tracked_creation(call: CallSite) -> str | None:
    """The tracked class name this call constructs, if any."""
    for target in call.targets:
        base = target.rsplit(".", 1)[-1]
        if base in _TRACKED_CLASSES:
            return base
    return None


def _parent_map(root: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _name_released_locally(
    func_node: ast.AST, name: str
) -> bool:
    """Whether ``name`` is closed / transferred / returned in ``func_node``."""
    for node in ast.walk(func_node):
        if isinstance(node, ast.Call):
            # name.close() — an explicit release.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
            # Passed onward (ownership transfer / finalizer
            # registration, e.g. weakref.finalize(owner, _unlink, name)).
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        elif isinstance(node, ast.withitem):
            expr = node.context_expr
            if isinstance(expr, ast.Name) and expr.id == name:
                return True
        elif isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
    return False


@register
class ResourceLifecycleRule(ProjectRule):
    """W010 — every arena/ring creation is dominated by a release path."""

    id = "W010"
    name = "resource-lifecycle"
    severity = "error"
    description = (
        "A `SequenceArena`/`ResultRing` creation site with no reachable "
        "`with`/`close()`/finalizer/ownership-transfer path — the "
        "/dev/shm segment outlives the process (the leak battery's "
        "contract, checked statically and across the call graph)."
    )
    invariant = (
        "Zero /dev/shm leaks on any exit path: every shared-memory "
        "resource is context-managed, explicitly closed, or handed to "
        "an owner with a teardown surface (docs/shared-memory.md)."
    )
    path_fragments = ("repro/",)
    #: The defining module constructs instances as part of its own
    #: lifecycle implementation (attach/clone paths).
    exclude_fragments = ("repro/align/arena.py",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        #: Functions that return a fresh tracked resource; each maps to
        #: the class name for the caller-side message.
        factories: dict[str, str] = {}
        deferred: list[tuple[FunctionInfo, CallSite, str]] = []

        for func in index.functions.values():
            if not self.applies(func.ctx.relpath):
                continue
            parents = _parent_map(func.node)
            for call in func.calls:
                cls = _is_tracked_creation(call)
                if cls is None:
                    continue
                verdict = self._site_verdict(func, call, parents, index)
                if verdict == "ok":
                    continue
                if verdict == "factory":
                    factories[func.qualname] = cls
                    continue
                deferred.append((func, call, cls))

        for func, call, cls in deferred:
            yield self.finding(
                func.ctx,
                call.node,
                f"`{cls}()` created with no release path: use `with`, "
                "call `.close()` on every exit, or hand it to an owner "
                "that tears it down",
            )

        # One call-graph hop: every caller of a factory must release,
        # transfer or re-return what the factory handed back.
        for factory_qual, cls in sorted(factories.items()):
            yield from self._check_factory_callers(
                index, factory_qual, cls
            )

    def _site_verdict(
        self,
        func: FunctionInfo,
        call: CallSite,
        parents: dict[int, ast.AST],
        index: ProjectIndex,
    ) -> str:
        """``"ok"``, ``"factory"`` or ``"leak"`` for one creation site."""
        parent = parents.get(id(call.node))
        # Walk out of wrapping expressions (await, tuple displays).
        while isinstance(parent, (ast.Await, ast.Starred)):
            parent = parents.get(id(parent))
        if isinstance(parent, ast.withitem):
            return "ok"
        if isinstance(parent, (ast.Call, ast.keyword)):
            return "ok"  # ownership transfer into the enclosing call
        if isinstance(parent, ast.Tuple):
            grand = parents.get(id(parent))
            if isinstance(grand, ast.Return):
                return "factory"
            parent = grand  # fall through: tuple-assign handled below
        if isinstance(parent, ast.Return):
            return "factory"
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ) and target.value.id == "self":
                owner = (
                    index.classes.get(func.class_name)
                    if func.class_name
                    else None
                )
                if owner is not None and (
                    owner.methods & _TEARDOWN_METHODS
                ):
                    return "ok"
                return "leak"
            if isinstance(target, ast.Name):
                if _name_released_locally(func.node, target.id):
                    if self._name_only_returned(func.node, target.id):
                        return "factory"
                    return "ok"
                return "leak"
        return "leak"

    @staticmethod
    def _name_only_returned(func_node: ast.AST, name: str) -> bool:
        """True when the release path for ``name`` is (only) a return —
        the function is then a factory whose callers carry the duty."""
        returned = False
        for node in ast.walk(func_node):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("close", "unlink")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                ):
                    return False  # closed locally: not a factory
            if isinstance(node, ast.withitem):
                expr = node.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return False
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        returned = True
        return returned

    def _check_factory_callers(
        self, index: ProjectIndex, factory_qual: str, cls: str
    ) -> Iterator[Finding]:
        for call in index.callers_of(factory_qual):
            caller = index.functions.get(call.caller)
            if caller is None or not self.applies(caller.ctx.relpath):
                continue
            parents = _parent_map(caller.node)
            parent = parents.get(id(call.node))
            while isinstance(parent, ast.Await):
                parent = parents.get(id(parent))
            if isinstance(parent, (ast.Call, ast.keyword, ast.withitem)):
                continue  # transferred / context-managed immediately
            if isinstance(parent, ast.Return):
                continue  # re-returned: the next caller owns it
            names: list[str] = []
            if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                target = parent.targets[0]
                if isinstance(target, ast.Name):
                    names = [target.id]
                elif isinstance(target, ast.Tuple):
                    names = [
                        e.id
                        for e in target.elts
                        if isinstance(e, ast.Name)
                    ]
            if names and any(
                _name_released_locally(caller.node, n) for n in names
            ):
                continue
            yield self.finding(
                caller.ctx,
                call.node,
                f"`{factory_qual.rsplit('.', 1)[-1]}(...)` returns a "
                f"fresh `{cls}` that this caller never closes, "
                "transfers or returns — the segment leaks",
            )
