"""Built-in wfalint rules.

Importing this package registers every built-in rule with
:mod:`tools.wfalint.core`.  Each module groups rules by the invariant
family they protect:

* :mod:`.determinism` — W001 (seeded randomness), W007 (no wall-clock
  in the cycle-accurate models);
* :mod:`.cycles` — W002 (integral cycle arithmetic);
* :mod:`.robustness` — W003 (no blanket excepts in worker paths),
  W004 (no mutable default arguments);
* :mod:`.pickle_boundary` — W005 (nothing unpicklable stored on
  objects that cross the multiprocessing boundary);
* :mod:`.metrics_vocab` — W006 (metric names/labels from the declared
  vocabulary);
* :mod:`.output` — W008 (no bare ``print`` in library modules);
* :mod:`.async_blocking` — W009 (no blocking calls reachable from the
  event loop), W014 (no dropped ``create_task`` references);
* :mod:`.resource_lifecycle` — W010 (every arena/ring creation paired
  with a release path);
* :mod:`.await_lock` — W011 (no scheduler re-entry while holding an
  ``asyncio.Lock``);
* :mod:`.artifact_consistency` — W012 (vocabulary ↔ docs ↔ emitted
  span names agree);
* :mod:`.timeout_propagation` — W013 (timeout/deadline parameters
  forwarded to every dispatch);
* :mod:`.suppressions` — W015 (stale inline waivers are findings).

W009–W013 are :class:`~tools.wfalint.core.ProjectRule` subclasses and
run in phase 2 against the cross-module
:class:`~tools.wfalint.project.ProjectIndex`.
"""

from __future__ import annotations

from . import (  # noqa: F401  — imported for their registration side effect
    artifact_consistency,
    async_blocking,
    await_lock,
    cycles,
    determinism,
    metrics_vocab,
    output,
    pickle_boundary,
    resource_lifecycle,
    robustness,
    suppressions,
    timeout_propagation,
)

__all__ = [
    "artifact_consistency",
    "async_blocking",
    "await_lock",
    "cycles",
    "determinism",
    "metrics_vocab",
    "output",
    "pickle_boundary",
    "resource_lifecycle",
    "robustness",
    "suppressions",
    "timeout_propagation",
]
