"""Built-in wfalint rules.

Importing this package registers every built-in rule with
:mod:`tools.wfalint.core`.  Each module groups rules by the invariant
family they protect:

* :mod:`.determinism` — W001 (seeded randomness), W007 (no wall-clock
  in the cycle-accurate models);
* :mod:`.cycles` — W002 (integral cycle arithmetic);
* :mod:`.robustness` — W003 (no blanket excepts in worker paths),
  W004 (no mutable default arguments);
* :mod:`.pickle_boundary` — W005 (nothing unpicklable stored on
  objects that cross the multiprocessing boundary);
* :mod:`.metrics_vocab` — W006 (metric names/labels from the declared
  vocabulary);
* :mod:`.output` — W008 (no bare ``print`` in library modules).
"""

from __future__ import annotations

from . import (  # noqa: F401  — imported for their registration side effect
    cycles,
    determinism,
    metrics_vocab,
    output,
    pickle_boundary,
    robustness,
)

__all__ = [
    "cycles",
    "determinism",
    "metrics_vocab",
    "output",
    "pickle_boundary",
    "robustness",
]
