"""W008 — library modules never ``print``.

The CLI (`repro.cli`) is the only module that owns stdout/stderr;
everything below it returns strings (``repro.reporting``), publishes
metrics (``repro.obs``) or raises.  A stray ``print`` in a library
module corrupts machine-readable output (the ``batch --format json``
stream), bypasses the ``--quiet`` contract and is invisible to the
observability layer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, register


@register
class PrintInLibraryRule(Rule):
    """W008 — no bare ``print`` outside the CLI."""

    id = "W008"
    name = "print-in-library"
    severity = "warning"
    description = (
        "Bare `print(...)` in library modules bypasses the CLI's output "
        "contract; return strings (repro.reporting), publish metrics "
        "(repro.obs) or log through the CLI layer."
    )
    invariant = (
        "`repro.cli` owns stdout/stderr; machine-readable output streams "
        "(batch --format json) stay uncorrupted."
    )
    path_fragments = ("repro/",)
    exclude_fragments = ("repro/cli.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "bare `print` in a library module; route output "
                    "through the CLI / reporting / obs helpers",
                )
