"""W002 — cycle counters stay integral in the hardware models.

The paper's evaluation methodology counts cycles on real hardware
(FPGA counters, §5) and every comparison table in the reproduction
(`Table 1`, `EXPERIMENTS.md`) asserts *exact* cycle counts.  A single
true division on a cycle counter turns the bit-exact accounting into a
float — and float cycle totals merge, compare and serialise
differently.  Deriving a float *ratio* from cycle counts (GCUPS,
speedups, cycles-per-access) is legitimate, but belongs in
``repro.metrics`` / ``repro.reporting``; inside ``repro.wfasic`` and
``repro.soc`` it must be explicitly waived with a justification.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import FileContext, Finding, Rule, register

#: Names that carry simulated-cycle counts by convention: ``cycles``,
#: ``total_cycles``, ``cycle_count``, ``compute_cycles``, ...
_CYCLE_NAME_RE = re.compile(r"(^|_)(n_)?cycles?($|_)")


def _cycle_name(node: ast.expr) -> str | None:
    """The cycle-counter name if ``node`` refers to one, else ``None``."""
    if isinstance(node, ast.Name) and _CYCLE_NAME_RE.search(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _CYCLE_NAME_RE.search(node.attr):
        return node.attr
    return None


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_float_literal(node.operand)
    return False


@register
class FloatCycleArithmeticRule(Rule):
    """W002 — no float arithmetic on cycle counters in model code."""

    id = "W002"
    name = "float-cycle-arithmetic"
    severity = "error"
    description = (
        "True division, `float()` casts and float literals on "
        "cycle-counter-named variables/attributes are forbidden in "
        "`repro.wfasic` / `repro.soc` (use `//` ceiling/floor division; "
        "derive ratios in `repro.metrics`).  Explicitly `: float`-"
        "annotated declarations (calibrated rate constants) are exempt."
    )
    invariant = (
        "Cycle counts are integral and bit-exact per the paper's FPGA "
        "counter methodology; Table 1 comparisons assert equality."
    )
    path_fragments = ("repro/wfasic/", "repro/soc/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                name = _cycle_name(node.left) or _cycle_name(node.right)
                if name is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"true division on cycle counter `{name}` produces "
                        "a float; use `//` (or move the ratio to "
                        "repro.metrics)",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Div
            ):
                name = _cycle_name(node.target)
                if name is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"`/=` on cycle counter `{name}` makes it a float; "
                        "use `//=`",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id == "float"
                    and node.args
                ):
                    name = _cycle_name(node.args[0])
                    if name is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"`float({name})` casts a cycle counter; keep "
                            "cycle accounting integral in model code",
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                # An explicit `: float` annotation is a visible, reviewed
                # declaration of a *rate* (e.g. the CpuTimings calibration
                # constants — cycles per operation); the rule targets
                # accidental float-ification, not declared rates.
                if isinstance(node, ast.AnnAssign) and (
                    isinstance(node.annotation, ast.Name)
                    and node.annotation.id == "float"
                ):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is None or not _is_float_literal(value):
                    continue
                for target in targets:
                    name = _cycle_name(target)
                    if name is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"float literal assigned to cycle counter "
                            f"`{name}`; cycle counts are integers",
                        )
