"""W005 — nothing unpicklable crosses the multiprocessing boundary.

The engine ships three kinds of objects to worker processes: the
:class:`~repro.engine.EngineConfig` (inside each chunk payload), the
chunk's ``PairItem`` work items, and the backend class (re-instantiated
per worker).  Everything stored on them must survive
``pickle.dumps`` — a lambda, a locally-defined function, or an open
file handle stored on instance state raises ``PicklingError`` only at
dispatch time, on the parallel path, which unit tests with
``workers=1`` never exercise.  This rule moves that failure to lint
time.

``dataclasses.field(default_factory=lambda: ...)`` is *allowed*: the
factory runs in-process and only its (picklable) result lands on the
instance.  ``field(default=lambda ...)`` and ``attr = lambda`` class
defaults are flagged — there the lambda itself becomes instance state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, register

#: Class names whose instances cross the multiprocessing boundary, plus
#: name suffixes for the backend hierarchy (``*Backend`` classes are
#: pickled by class reference but their instances are rebuilt from
#: ``EngineConfig`` state in the worker).
_BOUNDARY_CLASSES = {
    "EngineConfig",
    "PairItem",
    "PairOutcome",
    "BatchReport",
    "SequencePair",
}
_BOUNDARY_SUFFIXES = ("Backend",)


def _is_boundary_class(name: str) -> bool:
    return name in _BOUNDARY_CLASSES or name.endswith(_BOUNDARY_SUFFIXES)


def _local_def_names(func: ast.AST) -> set[str]:
    """Names of functions defined directly inside ``func``'s body."""
    names: set[str] = set()
    for stmt in getattr(func, "body", []):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
    return names


def _unpicklable_reason(
    value: ast.expr, local_defs: set[str]
) -> str | None:
    """Why ``value`` would not survive pickling, or ``None`` if it would."""
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.Name) and value.id in local_defs:
        return f"the nested function `{value.id}`"
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "open"
    ):
        return "an open file handle"
    return None


@register
class PickleBoundaryRule(Rule):
    """W005 — boundary objects hold only picklable state."""

    id = "W005"
    name = "unpicklable-boundary-state"
    severity = "error"
    description = (
        "Lambdas, nested functions and open handles must not be stored "
        "on EngineConfig / PairItem / chunk payloads / backend classes — "
        "they die in `pickle.dumps` at dispatch time, only on the "
        "parallel path."
    )
    invariant = (
        "Everything the engine ships to a worker round-trips through "
        "pickle (the chunk protocol); failures must be impossible, not "
        "merely rare."
    )
    path_fragments = ("repro/engine/", "repro/align/", "repro/workloads/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not _is_boundary_class(cls.name):
                continue
            yield from self._check_class_body(ctx, cls)
            for method in cls.body:
                if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_method(ctx, cls, method)

    def _check_class_body(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        """Dataclass-style field defaults directly in the class body."""
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target = stmt.target
                attr = target.id if isinstance(target, ast.Name) else "?"
                yield from self._check_default(ctx, cls, attr, stmt.value)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    yield from self._check_default(
                        ctx, cls, target.id, stmt.value
                    )

    def _check_default(
        self, ctx: FileContext, cls: ast.ClassDef, attr: str, value: ast.expr
    ) -> Iterator[Finding]:
        # field(default=<unpicklable>) — but default_factory is fine.
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "field"
        ):
            for kw in value.keywords:
                if kw.arg == "default":
                    reason = _unpicklable_reason(kw.value, set())
                    if reason is not None:
                        yield self.finding(
                            ctx,
                            kw.value,
                            f"`{cls.name}.{attr}` defaults to {reason}; it "
                            "becomes instance state and cannot cross the "
                            "multiprocessing boundary",
                        )
            return
        reason = _unpicklable_reason(value, set())
        if reason is not None:
            yield self.finding(
                ctx,
                value,
                f"`{cls.name}.{attr}` defaults to {reason}; it becomes "
                "instance state and cannot cross the multiprocessing "
                "boundary",
            )

    def _check_method(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        """``self.attr = <unpicklable>`` anywhere in a method body."""
        local_defs = _local_def_names(method)
        for node in ast.walk(method):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            if value is None:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                reason = _unpicklable_reason(value, local_defs)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"`self.{target.attr} = ...` in "
                        f"`{cls.name}.{method.name}` stores {reason}; "
                        f"`{cls.name}` instances cross the "
                        "multiprocessing boundary and must stay picklable",
                    )
