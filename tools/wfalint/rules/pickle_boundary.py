"""W005 — nothing unpicklable crosses the multiprocessing boundary.

The engine ships three kinds of objects to worker processes: the
:class:`~repro.engine.EngineConfig` (inside each chunk payload), the
chunk's ``PairItem`` work items, and the backend class (re-instantiated
per worker).  Everything stored on them must survive
``pickle.dumps`` — a lambda, a locally-defined function, or an open
file handle stored on instance state raises ``PicklingError`` only at
dispatch time, on the parallel path, which unit tests with
``workers=1`` never exercise.  This rule moves that failure to lint
time.

``dataclasses.field(default_factory=lambda: ...)`` is *allowed*: the
factory runs in-process and only its (picklable) result lands on the
instance.  ``field(default=lambda ...)`` and ``attr = lambda`` class
defaults are flagged — there the lambda itself becomes instance state.

The rule also enforces the zero-copy *descriptor-only contract*
(``docs/shared-memory.md``): live buffer objects — ``SharedMemory``
handles, ``memoryview`` exports, raw ``ndarray`` views — must never
appear on a boundary class or in a chunk-protocol type alias (a
module-level alias named ``*Payload`` or ``*Item``).  Sequences cross
the boundary as ``(arena_id, offset, length)`` descriptors; workers
attach the named segment themselves.  Shipping the buffer instead
either dies in ``pickle.dumps`` or — worse — silently copies the
bytes, defeating the zero-copy path while tests stay green.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, register

#: Class names whose instances cross the multiprocessing boundary, plus
#: name suffixes for the backend hierarchy (``*Backend`` classes are
#: pickled by class reference but their instances are rebuilt from
#: ``EngineConfig`` state in the worker).
_BOUNDARY_CLASSES = {
    "EngineConfig",
    "PairItem",
    "PairOutcome",
    "BatchReport",
    "SequencePair",
}
_BOUNDARY_SUFFIXES = ("Backend",)

#: Type names that denote live process-local buffers.  None of these may
#: appear on a boundary class or in a chunk-protocol type alias — the
#: descriptor-only contract ships ``(arena_id, offset, length)`` handles
#: and lets the worker attach the segment itself.
_BUFFER_NAMES = {
    "SharedMemory",
    "memoryview",
    "ndarray",
    "NDArray",
    "mmap",
}

#: Module-level type aliases with these suffixes define the chunk
#: protocol (what ``pickle.dumps`` actually serialises per dispatch).
_PROTOCOL_ALIAS_SUFFIXES = ("Payload", "Item")


def _is_boundary_class(name: str) -> bool:
    return name in _BOUNDARY_CLASSES or name.endswith(_BOUNDARY_SUFFIXES)


def _banned_buffer_name(expr: ast.expr) -> str | None:
    """First live-buffer type name appearing anywhere in ``expr``."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in _BUFFER_NAMES:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in _BUFFER_NAMES:
            return node.attr
    return None


def _local_def_names(func: ast.AST) -> set[str]:
    """Names of functions defined directly inside ``func``'s body."""
    names: set[str] = set()
    for stmt in getattr(func, "body", []):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
    return names


def _unpicklable_reason(
    value: ast.expr, local_defs: set[str]
) -> str | None:
    """Why ``value`` would not survive pickling, or ``None`` if it would."""
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.Name) and value.id in local_defs:
        return f"the nested function `{value.id}`"
    if isinstance(value, ast.Call):
        func = value.func
        func_name = None
        if isinstance(func, ast.Name):
            func_name = func.id
        elif isinstance(func, ast.Attribute):
            func_name = func.attr
        if func_name == "open":
            return "an open file handle"
        if func_name in _BUFFER_NAMES:
            return f"a live `{func_name}` buffer"
    return None


@register
class PickleBoundaryRule(Rule):
    """W005 — boundary objects hold only picklable state."""

    id = "W005"
    name = "unpicklable-boundary-state"
    severity = "error"
    description = (
        "Lambdas, nested functions, open handles and live buffers "
        "(SharedMemory / memoryview / ndarray) must not be stored on "
        "EngineConfig / PairItem / chunk payloads / backend classes — "
        "they die in `pickle.dumps` at dispatch time (or silently copy), "
        "only on the parallel path.  Ship (arena_id, offset, length) "
        "descriptors instead of buffers."
    )
    invariant = (
        "Everything the engine ships to a worker round-trips through "
        "pickle (the chunk protocol) and carries no live buffers; "
        "failures must be impossible, not merely rare."
    )
    path_fragments = ("repro/engine/", "repro/align/", "repro/workloads/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_protocol_aliases(ctx)
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not _is_boundary_class(cls.name):
                continue
            yield from self._check_class_body(ctx, cls)
            for method in cls.body:
                if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_method(ctx, cls, method)

    def _check_protocol_aliases(self, ctx: FileContext) -> Iterator[Finding]:
        """Module-level ``*Payload`` / ``*Item`` aliases stay buffer-free."""
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            if not target.id.endswith(_PROTOCOL_ALIAS_SUFFIXES):
                continue
            banned = _banned_buffer_name(value)
            if banned is not None:
                yield self.finding(
                    ctx,
                    stmt,
                    f"chunk-protocol alias `{target.id}` references the "
                    f"live buffer type `{banned}`; ship (arena_id, offset, "
                    "length) descriptors — workers attach the segment "
                    "themselves",
                )

    def _check_class_body(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        """Dataclass-style field annotations and defaults in the body."""
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                attr = target.id if isinstance(target, ast.Name) else "?"
                banned = _banned_buffer_name(stmt.annotation)
                if banned is not None:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"`{cls.name}.{attr}` is annotated with the live "
                        f"buffer type `{banned}`; boundary classes carry "
                        "(arena_id, offset, length) descriptors, not "
                        "buffers",
                    )
                if stmt.value is None:
                    continue
                yield from self._check_default(ctx, cls, attr, stmt.value)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    yield from self._check_default(
                        ctx, cls, target.id, stmt.value
                    )

    def _check_default(
        self, ctx: FileContext, cls: ast.ClassDef, attr: str, value: ast.expr
    ) -> Iterator[Finding]:
        # field(default=<unpicklable>) — but default_factory is fine.
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "field"
        ):
            for kw in value.keywords:
                if kw.arg == "default":
                    reason = _unpicklable_reason(kw.value, set())
                    if reason is not None:
                        yield self.finding(
                            ctx,
                            kw.value,
                            f"`{cls.name}.{attr}` defaults to {reason}; it "
                            "becomes instance state and cannot cross the "
                            "multiprocessing boundary",
                        )
            return
        reason = _unpicklable_reason(value, set())
        if reason is not None:
            yield self.finding(
                ctx,
                value,
                f"`{cls.name}.{attr}` defaults to {reason}; it becomes "
                "instance state and cannot cross the multiprocessing "
                "boundary",
            )

    def _check_method(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        """``self.attr = <unpicklable>`` anywhere in a method body."""
        local_defs = _local_def_names(method)
        for node in ast.walk(method):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            if value is None:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                reason = _unpicklable_reason(value, local_defs)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"`self.{target.attr} = ...` in "
                        f"`{cls.name}.{method.name}` stores {reason}; "
                        f"`{cls.name}` instances cross the "
                        "multiprocessing boundary and must stay picklable",
                    )
