"""W006 — metric names and label keys come from the declared vocabulary.

PR-4's multiprocessing story depends on snapshots from different
processes *merging*: ``merge_snapshots`` folds series by ``(name,
label-key)`` identity, and ``docs/observability.md`` promises operators
a closed vocabulary.  A typo'd metric name (``engine_pair_total``) or
an ad-hoc label key silently forks a series — the merge still succeeds,
the dashboard just quietly splits.  The vocabulary is *declared in
code* (``src/repro/obs/vocabulary.py``) and this rule holds every
``registry.counter/gauge/histogram`` call site (and the label dicts fed
to ``inc``/``set``/``observe``) to it.

Name resolution is deliberately small but understands this
repository's two real dynamic patterns:

* a name bound by iterating a literal tuple-of-tuples
  (``for counter, help, value in (("engine_pairs_total", ...), ...)``),
* an f-string whose formatted fields are treated as wildcards
  (``f"{prefix}_stage_seconds_total"`` matches
  ``engine_stage_seconds_total``).

Anything else non-literal is itself a finding: the vocabulary can only
be checked when names are visible to the checker.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator

from ..core import FileContext, Finding, Rule, register

#: Registry factory methods whose first argument is a metric name.
_FACTORY_METHODS = {"counter", "gauge", "histogram"}

#: Metric update methods that accept a ``labels`` dict (second
#: positional argument or ``labels=`` keyword).
_UPDATE_METHODS = {"inc", "set", "observe"}

#: Candidate vocabulary locations relative to the lint root, in order.
_VOCAB_CANDIDATES = (
    "src/repro/obs/vocabulary.py",
    "repro/obs/vocabulary.py",
)

_VOCAB_CACHE: dict[str, tuple[frozenset, frozenset] | None] = {}


def _literal_strings(node: ast.expr) -> set[str]:
    """String constants inside a literal set/frozenset/tuple/list display."""
    values: set[str] = set()
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "frozenset" and node.args:
            return _literal_strings(node.args[0])
        return values
    for elt in getattr(node, "elts", []):
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            values.add(elt.value)
    return values


def load_vocabulary(root: Path) -> tuple[frozenset, frozenset] | None:
    """``(metric_names, label_keys)`` declared under ``root``, if any.

    The vocabulary module is parsed, not imported, so the linter works
    on trees that are not importable (fixtures, partial checkouts).
    """
    key = str(root.resolve())
    if key not in _VOCAB_CACHE:
        _VOCAB_CACHE[key] = _load_vocabulary_uncached(root)
    return _VOCAB_CACHE[key]


def _load_vocabulary_uncached(
    root: Path,
) -> tuple[frozenset, frozenset] | None:
    for candidate in _VOCAB_CANDIDATES:
        path = root / candidate
        if path.is_file():
            break
    else:
        return None
    tree = ast.parse(path.read_text(encoding="utf-8"))
    metric_names: set[str] = set()
    label_keys: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id == "METRIC_NAMES":
            metric_names = _literal_strings(node.value)
        elif target.id == "LABEL_KEYS":
            label_keys = _literal_strings(node.value)
    if not metric_names:
        return None
    return frozenset(metric_names), frozenset(label_keys)


class _LiteralBindings(ast.NodeVisitor):
    """File-wide map of names to the string constants they may hold.

    Over-approximates scoping (the whole file is one namespace), which
    is safe for a linter: a binding only ever *adds* admissible values.
    Handles plain ``name = "literal"`` assignments and tuple-unpacking
    ``for`` loops over fully-literal tuple/list iterables.
    """

    def __init__(self) -> None:
        self.values: dict[str, set[str]] = {}
        #: Names assigned something the visitor cannot resolve; they
        #: must not be treated as literal even if also bound literally.
        self.tainted: set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str
            ):
                self.values.setdefault(name, set()).add(node.value.value)
            else:
                self.tainted.add(name)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        target, it = node.target, node.iter
        if isinstance(target, ast.Tuple) and isinstance(
            it, (ast.Tuple, ast.List)
        ):
            for idx, elt_target in enumerate(target.elts):
                if not isinstance(elt_target, ast.Name):
                    continue
                slot_values: set[str] = set()
                resolvable = True
                for row in it.elts:
                    if (
                        isinstance(row, (ast.Tuple, ast.List))
                        and idx < len(row.elts)
                        and isinstance(row.elts[idx], ast.Constant)
                    ):
                        value = row.elts[idx].value
                        if isinstance(value, str):
                            slot_values.add(value)
                        else:
                            resolvable = False
                    else:
                        resolvable = False
                if resolvable and slot_values:
                    self.values.setdefault(elt_target.id, set()).update(
                        slot_values
                    )
                else:
                    self.tainted.add(elt_target.id)
        self.generic_visit(node)


def _fstring_pattern(node: ast.JoinedStr) -> str | None:
    """A regex matching the f-string with formatted fields as wildcards."""
    parts: list[str] = []
    for piece in node.values:
        if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
            parts.append(re.escape(piece.value))
        elif isinstance(piece, ast.FormattedValue):
            parts.append(r"[a-zA-Z0-9_]+")
        else:
            return None
    return "".join(parts)


@register
class MetricVocabularyRule(Rule):
    """W006 — registry call sites stay inside the declared vocabulary."""

    id = "W006"
    name = "metric-vocabulary"
    severity = "error"
    description = (
        "`registry.counter/gauge/histogram` names and label-dict keys "
        "must be string literals (or statically resolvable) drawn from "
        "`repro.obs.vocabulary` — typos fork metric series silently."
    )
    invariant = (
        "Snapshots from any process merge by (name, labels) identity; "
        "the vocabulary in docs/observability.md is closed."
    )
    path_fragments = ("repro/",)
    # The registry implementation manipulates names generically; the
    # vocabulary module is the source of truth, not a call site.
    exclude_fragments = ("repro/obs/metrics.py", "repro/obs/vocabulary.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        calls = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and (
                (node.func.attr in _FACTORY_METHODS and node.args)
                or node.func.attr in _UPDATE_METHODS
            )
        ]
        factory_calls = [
            c for c in calls if c.func.attr in _FACTORY_METHODS and c.args
        ]
        update_calls = [c for c in calls if c.func.attr in _UPDATE_METHODS]
        if not factory_calls and not update_calls:
            return
        root = self._lint_root(ctx)
        vocab = load_vocabulary(root)
        if vocab is None:
            if factory_calls:
                yield self.finding(
                    ctx,
                    factory_calls[0],
                    "metric call sites found but no metric vocabulary "
                    "(repro/obs/vocabulary.py with METRIC_NAMES) under "
                    f"lint root {root}",
                )
            return
        metric_names, label_keys = vocab
        bindings = _LiteralBindings()
        bindings.visit(ctx.tree)
        dict_bindings: dict[str, list[ast.Dict]] = {}
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Dict)
            ):
                dict_bindings.setdefault(node.targets[0].id, []).append(
                    node.value
                )
        for call in factory_calls:
            yield from self._check_name(ctx, call, metric_names, bindings)
        seen_displays: set[int] = set()
        for call in update_calls:
            yield from self._check_labels(
                ctx, call, label_keys, dict_bindings, seen_displays
            )

    @staticmethod
    def _lint_root(ctx: FileContext) -> Path:
        """The directory ``relpath`` is relative to (the lint root)."""
        parts = Path(ctx.relpath).parts
        path = ctx.path.resolve()
        if path.parts[-len(parts):] == parts:
            return Path(*path.parts[: len(path.parts) - len(parts)])
        return Path.cwd()

    def _check_name(
        self,
        ctx: FileContext,
        call: ast.Call,
        metric_names: frozenset,
        bindings: _LiteralBindings,
    ) -> Iterator[Finding]:
        method = call.func.attr  # type: ignore[union-attr]
        name_arg = call.args[0]
        if isinstance(name_arg, ast.Constant):
            if not isinstance(name_arg.value, str):
                yield self.finding(
                    ctx, name_arg, f"metric name for `.{method}()` must be a string"
                )
            elif name_arg.value not in metric_names:
                yield self.finding(
                    ctx,
                    name_arg,
                    f"metric `{name_arg.value}` is not in the declared "
                    "vocabulary (repro.obs.vocabulary.METRIC_NAMES); add "
                    "it there and to docs/observability.md",
                )
            return
        if isinstance(name_arg, ast.JoinedStr):
            pattern = _fstring_pattern(name_arg)
            if pattern is not None and any(
                re.fullmatch(pattern, known) for known in metric_names
            ):
                return
            yield self.finding(
                ctx,
                name_arg,
                f"f-string metric name for `.{method}()` matches no "
                "declared vocabulary entry",
            )
            return
        if isinstance(name_arg, ast.Name):
            values = bindings.values.get(name_arg.id)
            if values and name_arg.id not in bindings.tainted:
                unknown = sorted(v for v in values if v not in metric_names)
                if unknown:
                    yield self.finding(
                        ctx,
                        name_arg,
                        f"metric name `{name_arg.id}` may be "
                        f"{unknown} — not in the declared vocabulary",
                    )
                return
        yield self.finding(
            ctx,
            name_arg,
            f"metric name for `.{method}()` is not a string literal the "
            "checker can resolve; vocabulary membership cannot be "
            "verified",
        )

    def _check_labels(
        self,
        ctx: FileContext,
        call: ast.Call,
        label_keys: frozenset,
        dict_bindings: dict[str, list[ast.Dict]],
        seen_displays: set[int],
    ) -> Iterator[Finding]:
        label_arg: ast.expr | None = None
        for kw in call.keywords:
            if kw.arg == "labels":
                label_arg = kw.value
        if label_arg is None and len(call.args) >= 2:
            label_arg = call.args[1]
        displays: list[ast.Dict] = []
        if isinstance(label_arg, ast.Dict):
            displays = [label_arg]
        elif isinstance(label_arg, ast.Name):
            # Resolve `labels = {...}; metric.inc(n, labels)` — check
            # each dict display the name may hold, once per display.
            displays = [
                d
                for d in dict_bindings.get(label_arg.id, [])
                if id(d) not in seen_displays
            ]
        for display in displays:
            seen_displays.add(id(display))
            yield from self._check_label_display(ctx, display, label_keys)

    def _check_label_display(
        self, ctx: FileContext, label_arg: ast.Dict, label_keys: frozenset
    ) -> Iterator[Finding]:
        for key in label_arg.keys:
            if key is None:
                continue  # `**spread` merges a dict checked at its display
            if not isinstance(key, ast.Constant) or not isinstance(
                key.value, str
            ):
                yield self.finding(
                    ctx, key, "label keys must be string literals"
                )
            elif key.value not in label_keys:
                yield self.finding(
                    ctx,
                    key,
                    f"label key `{key.value}` is not in the declared "
                    "vocabulary (repro.obs.vocabulary.LABEL_KEYS)",
                )
