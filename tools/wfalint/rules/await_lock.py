"""W011 — no scheduler re-entry while holding an ``asyncio.Lock``.

The per-connection write lock in the serve layer exists to keep NDJSON
response lines atomic; the micro-batching scheduler owns admission and
dispatch.  An ``await`` inside a lock's critical section that calls
*back into the scheduler* (``MicroBatcher.submit``/``drain`` or
anything reaching them) — or that acquires another lock — couples the
two: the held lock now waits on batch-window timing, other writers on
the connection stall for a full batch round-trip, and two such
sections ordering their locks differently deadlock outright.

The rule resolves each awaited call through the phase-1 call graph.
Awaits on unresolved callees (``writer.drain()`` — stdlib stream
plumbing) are out of scope by design: the contract is about *this
project's* scheduler, and a whole-program linter must prefer false
negatives to noise.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ProjectRule, register
from ..project import FunctionInfo, ProjectIndex

#: Path fragment identifying the scheduler module: its async methods
#: are the re-entry surface the rule protects.
_SCHEDULER_FRAGMENT = "serve/scheduler"


def _file_lock_names(tree: ast.Module) -> set[str]:
    """Names bound to ``asyncio.Lock()`` anywhere in the file.

    File-wide on purpose: the serve idiom binds the lock in an outer
    function and acquires it inside a closure (``respond``).
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.value, ast.Call)
        ):
            func = node.value.func
            is_lock = (
                isinstance(func, ast.Attribute)
                and func.attr == "Lock"
            ) or (isinstance(func, ast.Name) and func.id == "Lock")
            if is_lock and isinstance(node.targets[0], ast.Name):
                names.add(node.targets[0].id)
    return names


def _lock_expr(
    expr: ast.expr,
    lock_names: set[str],
    func: FunctionInfo,
    index: ProjectIndex,
) -> str | None:
    """Render ``expr`` as a lock description if it is one, else None."""
    if isinstance(expr, ast.Name) and expr.id in lock_names:
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and func.class_name
    ):
        owner = index.classes.get(func.class_name)
        if owner is not None:
            attr_type = owner.attr_types.get(expr.attr, "")
            if attr_type.rsplit(".", 1)[-1] == "Lock":
                return f"self.{expr.attr}"
    return None


@register
class AwaitUnderLockRule(ProjectRule):
    """W011 — critical sections never await back into the scheduler."""

    id = "W011"
    name = "await-under-lock"
    severity = "error"
    description = (
        "An `await` inside an `asyncio.Lock` critical section resolves "
        "to the micro-batching scheduler (or acquires another lock) — "
        "the held lock then waits on batch-window timing, stalling "
        "every other waiter and inviting lock-order deadlock."
    )
    invariant = (
        "Locks in the serve layer guard single writes only; scheduler "
        "admission (`MicroBatcher.submit`/`drain`) happens outside any "
        "critical section (the `_serve_line` pattern)."
    )
    path_fragments = ("repro/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        scheduler_entries = {
            qual
            for qual, func in index.functions.items()
            if func.is_async and _SCHEDULER_FRAGMENT in func.ctx.relpath
        }
        lock_names_by_path: dict[str, set[str]] = {}
        #: Functions that themselves acquire a recognized lock.
        acquires: set[str] = set()
        sections: list[
            tuple[FunctionInfo, ast.AsyncWith, str]
        ] = []
        for func in index.functions.values():
            if not func.is_async or not self.applies(func.ctx.relpath):
                continue
            path = func.ctx.relpath
            if path not in lock_names_by_path:
                lock_names_by_path[path] = _file_lock_names(func.ctx.tree)
            lock_names = lock_names_by_path[path]
            for node in ast.walk(func.node):
                if not isinstance(node, ast.AsyncWith):
                    continue
                for item in node.items:
                    lock = _lock_expr(
                        item.context_expr, lock_names, func, index
                    )
                    if lock is not None:
                        acquires.add(func.qualname)
                        sections.append((func, node, lock))
                        break

        for func, section, lock in sections:
            call_by_node = {id(c.node): c for c in func.calls}
            for stmt in section.body:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Await) or not isinstance(
                        node.value, ast.Call
                    ):
                        continue
                    call = call_by_node.get(id(node.value))
                    if call is None:
                        continue
                    for target in call.targets:
                        reason = self._reentry_reason(
                            index, target, scheduler_entries, acquires
                        )
                        if reason is not None:
                            yield self.finding(
                                func.ctx,
                                node,
                                f"`await {call.raw}(...)` while holding "
                                f"`{lock}`: {reason} — move the await "
                                "out of the critical section",
                            )
                            break

    def _reentry_reason(
        self,
        index: ProjectIndex,
        target: str,
        scheduler_entries: set[str],
        acquires: set[str],
    ) -> str | None:
        callee = index.functions.get(target)
        if callee is None or not callee.is_async:
            return None
        reachable = index.reachable_from({target})
        touched = reachable & scheduler_entries
        if touched:
            entry = sorted(touched)[0]
            return f"it re-enters the scheduler (`{entry}`)"
        if reachable & acquires:
            return "it acquires another asyncio.Lock"
        return None
