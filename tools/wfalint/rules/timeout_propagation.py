"""W013 — timeout/deadline parameters thread through to every dispatch.

The engine's degradation ladder (PR 4) and the serve layer's admission
control (PR 8) both hinge on deadlines actually *arriving* at the
dispatch that enforces them: an entry point that accepts
``chunk_timeout`` but constructs an ``EngineConfig`` without forwarding
it silently reverts to the default and the caller's deadline becomes
decorative.  This is the classic plumbing bug — signature says
configurable, body says hard-coded.

The rule is whole-program and name-matched: for every function with a
timeout-family parameter, every resolved project-internal callee that
*accepts a parameter of the same name* must receive it at that call
site (as a keyword, or covered positionally).  Different names are
different contracts and stay out of scope, as do ``*args``/``**kwargs``
forwarding calls and ``**kwargs``-absorbing callees — the rule prefers
false negatives to guessing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ProjectRule, register
from ..project import CallSite, FunctionInfo, ProjectIndex

#: Parameter names that carry a deadline or timeout contract.
_TIMEOUT_PARAMS = ("chunk_timeout", "deadline_ms", "timeout")


def _call_is_opaque(node: ast.Call) -> bool:
    """``f(*args)`` / ``f(**kwargs)`` — forwarding we cannot see through."""
    return any(isinstance(a, ast.Starred) for a in node.args) or any(
        kw.arg is None for kw in node.keywords
    )


@register
class TimeoutPropagationRule(ProjectRule):
    """W013 — deadlines accepted are deadlines forwarded."""

    id = "W013"
    name = "timeout-propagation"
    severity = "error"
    description = (
        "A function accepting a timeout/deadline parameter "
        "(`chunk_timeout`, `deadline_ms`, `timeout`) calls a project "
        "function or constructor that accepts the same parameter "
        "without forwarding it — the callee falls back to its default "
        "and the caller's deadline is silently ignored."
    )
    invariant = (
        "Deadline plumbing is lossless: every dispatch a "
        "timeout-accepting entry point dominates receives that timeout "
        "(`align_pairs` → `EngineConfig(chunk_timeout=...)` → "
        "`_run_item_quarantined(payload, timeout)`)."
    )
    path_fragments = ("repro/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for func in index.functions.values():
            if not self.applies(func.ctx.relpath):
                continue
            held = [p for p in _TIMEOUT_PARAMS if p in func.params]
            if not held:
                continue
            for call in func.calls:
                if _call_is_opaque(call.node):
                    continue
                for param in held:
                    message = self._dropped_at(index, call, param)
                    if message is not None:
                        yield self.finding(func.ctx, call.node, message)

    def _dropped_at(
        self, index: ProjectIndex, call: CallSite, param: str
    ) -> str | None:
        """A finding message if ``call`` accepts but drops ``param``."""
        for target in call.targets:
            callee = index.functions.get(target)
            if callee is not None:
                if callee.has_kwargs or param not in callee.params:
                    continue
                if self._passes(call.node, callee, param):
                    continue
                return (
                    f"`{call.raw}(...)` accepts `{param}` but this call "
                    f"does not forward it — the caller's `{param}` "
                    "never reaches the dispatch"
                )
            cls = index.classes.get(target)
            if cls is not None:
                init = index.functions.get(f"{target}.__init__")
                accepts = param in cls.field_names or (
                    init is not None and param in init.params
                )
                if not accepts:
                    continue
                if any(kw.arg == param for kw in call.node.keywords):
                    continue
                if call.node.args:
                    continue  # positional construction: cannot tell
                return (
                    f"`{call.raw}(...)` accepts `{param}` but this "
                    f"construction does not forward it — the default "
                    "silently overrides the caller's deadline"
                )
        return None

    @staticmethod
    def _passes(
        node: ast.Call, callee: FunctionInfo, param: str
    ) -> bool:
        """Whether the call site supplies ``param`` to ``callee``."""
        if any(kw.arg == param for kw in node.keywords):
            return True
        offset = 1 if callee.is_method else 0
        pos = callee.params.index(param) - offset
        return 0 <= pos < len(node.args)
