"""Determinism rules: W001 (seeded randomness), W007 (no wall-clock).

The repository's reproducibility contract is that a simulated run is a
pure function of its inputs plus the manifest seed
(``RunManifest.for_run`` records the seed precisely so a run can be
replayed).  Two things silently break that contract: drawing from an
*unseeded* random source, and reading the wall clock inside the
cycle-accurate models (simulated cycle counts must not depend on how
fast the host happens to be).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, register

#: ``random`` module attributes that are fine to touch: constructing an
#: explicitly seeded generator instance is the sanctioned pattern.
_RANDOM_CONSTRUCTORS = {"Random"}

#: ``numpy.random`` attributes that construct an explicit generator.
_NUMPY_CONSTRUCTORS = {"default_rng", "Generator", "RandomState", "SeedSequence"}

#: Wall-clock reads banned inside the hardware models (W007).  ``time``
#: attributes not listed here (``sleep`` never belongs in a simulator
#: either, but it does not *corrupt results*, it only wastes them).
_WALLCLOCK_ATTRS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}

_DATETIME_NOW = {"now", "utcnow", "today"}


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Local names bound to ``module`` by ``import``/``import .. as``."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            parent, _, leaf = module.rpartition(".")
            if parent and node.module == parent:
                for alias in node.names:
                    if alias.name == leaf:
                        aliases.add(alias.asname or leaf)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> dict[str, str]:
    """``{local_name: original_name}`` for ``from module import ...``."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                if alias.name != "*":
                    names[alias.asname or alias.name] = alias.name
    return names


@register
class UnseededRandomRule(Rule):
    """W001 — every random draw must come from an explicitly seeded generator."""

    id = "W001"
    name = "unseeded-random"
    severity = "error"
    description = (
        "Calls into the process-global `random` / `numpy.random` state "
        "are forbidden; construct `random.Random(seed)` or "
        "`numpy.random.default_rng(seed)` instead."
    )
    invariant = (
        "A simulated run is reproducible from the manifest seed alone; "
        "global RNG state is invisible to the manifest."
    )
    path_fragments = ("repro/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        random_aliases = _module_aliases(ctx.tree, "random")
        np_aliases = _module_aliases(ctx.tree, "numpy")
        npr_aliases = _module_aliases(ctx.tree, "numpy.random")
        random_funcs = {
            local: orig
            for local, orig in _from_imports(ctx.tree, "random").items()
            if orig not in _RANDOM_CONSTRUCTORS
        }
        npr_funcs = {
            local: orig
            for local, orig in _from_imports(ctx.tree, "numpy.random").items()
            if orig not in _NUMPY_CONSTRUCTORS
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in random_funcs:
                    yield self.finding(
                        ctx,
                        node,
                        f"`{func.id}` draws from the global `random` state; "
                        "use an explicit `random.Random(seed)` instance",
                    )
                elif func.id in npr_funcs:
                    yield self.finding(
                        ctx,
                        node,
                        f"`{func.id}` uses the legacy global numpy RNG; "
                        "use `numpy.random.default_rng(seed)`",
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            owner = func.value
            # random.<fn>(...)
            if isinstance(owner, ast.Name) and owner.id in random_aliases:
                if func.attr in _RANDOM_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            f"`{owner.id}.{func.attr}()` without a seed is "
                            "nondeterministic; pass the run seed",
                        )
                else:
                    yield self.finding(
                        ctx,
                        node,
                        f"`{owner.id}.{func.attr}(...)` mutates/draws from "
                        "the global `random` state; use a seeded "
                        "`random.Random` instance",
                    )
                continue
            # numpy.random.<fn>(...) or npr_alias.<fn>(...)
            np_random = (
                isinstance(owner, ast.Attribute)
                and owner.attr == "random"
                and isinstance(owner.value, ast.Name)
                and owner.value.id in np_aliases
            ) or (isinstance(owner, ast.Name) and owner.id in npr_aliases)
            if np_random:
                if func.attr in _NUMPY_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            f"`{func.attr}()` without a seed is "
                            "nondeterministic; pass the run seed",
                        )
                else:
                    yield self.finding(
                        ctx,
                        node,
                        f"`numpy.random.{func.attr}(...)` uses the legacy "
                        "global numpy RNG; use "
                        "`numpy.random.default_rng(seed)`",
                    )


@register
class WallClockInModelRule(Rule):
    """W007 — the hardware models never read the wall clock."""

    id = "W007"
    name = "wallclock-in-model"
    severity = "error"
    description = (
        "`time.time`/`perf_counter`/`monotonic` (and `datetime.now`) are "
        "forbidden inside `repro.wfasic` / `repro.soc`: simulated-cycle "
        "results must not depend on host speed."
    )
    invariant = (
        "Cycle accounting is a function of the model and its inputs "
        "(paper §4/§5 methodology); wall-clock reads belong to the "
        "observability layer."
    )
    path_fragments = ("repro/wfasic/", "repro/soc/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        time_aliases = _module_aliases(ctx.tree, "time")
        datetime_aliases = _module_aliases(ctx.tree, "datetime.datetime") | (
            _from_imports(ctx.tree, "datetime").keys()
            & {"datetime", "date"}
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALLCLOCK_ATTRS:
                        yield self.finding(
                            ctx,
                            node,
                            f"importing `time.{alias.name}` into model code; "
                            "wall-clock must not leak into simulated cycles",
                        )
            elif isinstance(node, ast.Attribute):
                owner = node.value
                if (
                    isinstance(owner, ast.Name)
                    and owner.id in time_aliases
                    and node.attr in _WALLCLOCK_ATTRS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{owner.id}.{node.attr}` reads the wall clock "
                        "inside a cycle-accurate model",
                    )
                elif (
                    isinstance(owner, ast.Name)
                    and owner.id in datetime_aliases
                    and node.attr in _DATETIME_NOW
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{owner.id}.{node.attr}` reads the wall clock "
                        "inside a cycle-accurate model",
                    )
