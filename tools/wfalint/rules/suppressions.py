"""W015 — stale inline suppressions are findings themselves.

A ``# wfalint: disable=Wxxx`` directive is a *waiver with a reason*: it
excuses one concrete finding at one concrete line.  When the code it
excused is later fixed or deleted the directive outlives its purpose —
and a tree full of dead waivers is how real findings start slipping
through review unexamined.

The detection lives in the runner, not here: after bucketing every
finding, :func:`tools.wfalint.runner.run_lint` knows exactly which
directives suppressed at least one finding, and synthesizes a W015
finding for each directive that suppressed *nothing* while its target
rule was active and in scope.  (A directive naming a rule that is not
active this run — deselected, ignored, or a custom-rules invocation —
is unjudgeable and skipped.)  This module exists so the rule has a
registry entry like any other: it appears in ``--list-rules`` and the
docs table, participates in ``--select``/``--ignore``, and can itself
be suppressed (``disable=W015`` on a deliberately-kept waiver, with a
justification).
"""

from __future__ import annotations

from typing import Iterator

from ..core import FileContext, Finding, Rule, register


@register
class StaleSuppressionRule(Rule):
    """W015 — every ``disable=`` directive must still suppress something."""

    id = "W015"
    name = "stale-suppression"
    severity = "warning"
    description = (
        "A `# wfalint: disable=Wxxx` directive that suppressed nothing "
        "this run while the named rule was active and applies to the "
        "path — the finding it excused is gone, so the waiver is dead "
        "weight and must be deleted."
    )
    invariant = (
        "Every inline waiver in the tree maps to a live finding; dead "
        "directives are removed with the code they excused "
        "(docs/static-analysis.md suppression policy)."
    )
    path_fragments = ()  # everywhere the linter looks

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Runner-driven: stale directives can only be identified after
        # *all* findings of a run are bucketed, so the runner performs
        # the sweep and synthesizes findings under this rule's id.
        return iter(())
