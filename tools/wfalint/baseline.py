"""The committed baseline: grandfathered findings that do not fail CI.

The baseline exists so the pass can be adopted (and new rules added)
without blocking on a flag-day cleanup: ``--update-baseline`` records
today's findings, CI fails only on *new* ones.  Entries match by
:attr:`~tools.wfalint.core.Finding.fingerprint` — a hash of (rule,
path, stripped source line) — so unrelated edits moving a finding a few
lines do not un-grandfather it, while editing the offending line itself
does (the right moment to fix it properly).

This repository's policy (see ``docs/static-analysis.md``) is stricter
than the mechanism: intentional violations get an inline
``# wfalint: disable=`` with a one-line justification, and the shipped
baseline stays empty.  The mechanism is still load-bearing for the
roadmap item extending the pass to ``benchmarks/``/``examples/``.
"""

from __future__ import annotations

import json
from pathlib import Path

from .core import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_PATH"]

#: Where the committed baseline lives, relative to the repository root.
DEFAULT_BASELINE_PATH = "tools/wfalint/baseline.json"

_VERSION = 1


class Baseline:
    """A set of grandfathered finding fingerprints, JSON round-trippable."""

    def __init__(self, entries: list[dict] | None = None) -> None:
        self.entries: list[dict] = list(entries or [])
        self._fingerprints = {e["fingerprint"] for e in self.entries}

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        if not path.is_file():
            return cls()
        doc = json.loads(path.read_text(encoding="utf-8"))
        if doc.get("version") != _VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {doc.get('version')!r}"
            )
        entries = doc.get("findings", [])
        for entry in entries:
            if "fingerprint" not in entry:
                raise ValueError(f"{path}: baseline entry without fingerprint")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """A baseline grandfathering exactly ``findings``."""
        entries = [
            {
                "rule": f.rule_id,
                "path": f.path,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in sorted(
                findings, key=lambda f: (f.path, f.line, f.rule_id)
            )
        ]
        return cls(entries)

    def write(self, path: Path) -> None:
        """Serialise (sorted, one canonical form — diffs stay readable)."""
        doc = {"version": _VERSION, "findings": self.entries}
        path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self._fingerprints

    def __len__(self) -> int:
        return len(self.entries)

    def stale_entries(self, findings: list[Finding]) -> list[dict]:
        """Baseline entries no current finding matches (candidates to drop)."""
        live = {f.fingerprint for f in findings}
        return [e for e in self.entries if e["fingerprint"] not in live]
