"""Phase 1 of the whole-program pass: the cross-module project index.

:class:`ProjectIndex` is built once per lint invocation from every
:class:`~tools.wfalint.core.FileContext` the runner parsed (each module
is parsed exactly once — the index reuses the per-file trees).  It
gives the W009+ rule family the cross-module facts the per-file pass
cannot see:

* **module naming** — ``src/repro/serve/server.py`` →
  ``repro.serve.server`` (``src/`` stripped, ``__init__`` collapsed);
* **import graph** — per-module map of local names to fully-qualified
  targets, including relative ``from ..align.arena import …`` forms;
* **symbol tables** — every function/method/class under its qualified
  name, with parameter lists (the timeout-propagation rule's raw
  material) and class-level attribute *types* resolved from
  annotations and ``self.attr = Cls(...)`` assignments;
* **call graph** — best-effort resolution of every call site to
  fully-qualified targets: direct names, dotted imports
  (``time.sleep``), ``self.method()``, attribute calls through typed
  attributes (``self.batcher.submit`` → ``MicroBatcher.submit``), and
  locals typed by constructor calls or annotated parameters;
* **async reachability** — the set of functions transitively callable
  from any ``async def`` (BFS over resolved call edges).

Resolution is deliberately conservative: anything the index cannot
resolve is recorded with an empty target tuple, and rules treat
unresolved calls as out of scope — a whole-program linter must prefer
false negatives to noise.  ``--graph`` dumps the index as JSON for
debugging and as a CI artifact.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from .core import FileContext

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "module_name_for",
]

#: Leading path components stripped before dotting a relpath into a
#: module name (the src-layout prefix).
_STRIP_PREFIXES = ("src",)


def module_name_for(relpath: str) -> str:
    """Dotted module name for a POSIX relpath (best effort).

    ``src/repro/serve/server.py`` → ``repro.serve.server``;
    ``tools/wfalint/__init__.py`` → ``tools.wfalint``.
    """
    parts = list(Path(relpath).parts)
    if parts and parts[0] in _STRIP_PREFIXES:
        parts = parts[1:]
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = last
    return ".".join(parts)


@dataclass
class CallSite:
    """One ``ast.Call`` with its best-effort resolution."""

    node: ast.Call
    #: Dotted source text of the callee (``self.batcher.submit``);
    #: unflattenable heads render as ``(…)``.
    raw: str
    #: Fully-qualified resolved targets (empty when unresolved).  A
    #: call of a class resolves to the class qualname itself.
    targets: tuple[str, ...]
    #: Qualname of the enclosing function ("" at module level).
    caller: str


@dataclass
class FunctionInfo:
    """One function or method under its fully-qualified name."""

    qualname: str
    module: str
    ctx: FileContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    class_name: str | None
    #: Positional + keyword-only parameter names, in order
    #: (``self``/``cls`` included for methods — callers account for it).
    params: tuple[str, ...]
    has_kwargs: bool
    calls: list[CallSite] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class: its methods, attribute types, and init surface."""

    qualname: str
    module: str
    ctx: FileContext
    node: ast.ClassDef
    methods: set[str] = field(default_factory=set)
    #: ``self.attr`` → fully-qualified class name, from annotations
    #: (``batcher: MicroBatcher | None``) and ``self.x = Cls(...)``.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: Class-level annotated names (dataclass fields — the constructor
    #: surface of config objects like ``EngineConfig``).
    field_names: set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution tables."""

    module: str
    ctx: FileContext
    #: Local name → fully-qualified target for every import.
    imports: dict[str, str] = field(default_factory=dict)
    #: Module-level defs/classes (name → qualname).
    globals: dict[str, str] = field(default_factory=dict)
    toplevel_calls: list[CallSite] = field(default_factory=list)


@dataclass
class ProjectIndex:
    """The phase-1 whole-program index (see module docstring)."""

    root: Path
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, contexts: list[FileContext], root: Path) -> "ProjectIndex":
        """Index every parsed file (each tree is walked exactly once)."""
        index = cls(root=root)
        builders = []
        for ctx in contexts:
            module = module_name_for(ctx.relpath)
            if not module or module in index.modules:
                # Duplicate module names (two trees shipping the same
                # relpath) keep the first; later files still get their
                # per-file rules, just no index entry.
                if module in index.modules:
                    continue
            builder = _ModuleBuilder(module, ctx)
            index.modules[module] = builder.info
            builders.append(builder)
        for builder in builders:
            builder.collect_symbols(index)
        for builder in builders:
            builder.resolve_calls(index)
        return index

    # -- queries -------------------------------------------------------

    @property
    def async_functions(self) -> set[str]:
        """Qualnames of every ``async def`` in the index."""
        return {q for q, f in self.functions.items() if f.is_async}

    def iter_calls(self) -> Iterator[CallSite]:
        """Every call site in the project."""
        for func in self.functions.values():
            yield from func.calls
        for mod in self.modules.values():
            yield from mod.toplevel_calls

    def callers_of(self, qualname: str) -> list[CallSite]:
        """Call sites resolving to ``qualname``."""
        return [c for c in self.iter_calls() if qualname in c.targets]

    def reachable_from(self, roots: set[str]) -> set[str]:
        """Functions transitively reachable from ``roots`` (roots
        included) over resolved project-internal call edges."""
        seen = set()
        frontier = [q for q in roots if q in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for call in self.functions[current].calls:
                for target in call.targets:
                    callee = self._as_function(target)
                    if callee is not None and callee not in seen:
                        frontier.append(callee)
        return seen

    def _as_function(self, qualname: str) -> str | None:
        """Map a resolved target to a function qualname (a class call
        becomes its ``__init__`` when the class defines one)."""
        if qualname in self.functions:
            return qualname
        if qualname in self.classes:
            init = f"{qualname}.__init__"
            if init in self.functions:
                return init
        return None

    # -- artifact ------------------------------------------------------

    def graph_dump(self) -> dict:
        """JSON-friendly dump of the index (the ``--graph`` artifact)."""
        return {
            "modules": {
                name: {
                    "path": info.ctx.relpath,
                    "imports": dict(sorted(info.imports.items())),
                }
                for name, info in sorted(self.modules.items())
            },
            "functions": {
                q: {
                    "async": f.is_async,
                    "params": list(f.params),
                    "calls": [
                        {"raw": c.raw, "targets": list(c.targets),
                         "line": c.node.lineno}
                        for c in f.calls
                    ],
                }
                for q, f in sorted(self.functions.items())
            },
            "classes": {
                q: {
                    "methods": sorted(c.methods),
                    "attr_types": dict(sorted(c.attr_types.items())),
                    "fields": sorted(c.field_names),
                }
                for q, c in sorted(self.classes.items())
            },
            "async_reachable": sorted(
                self.reachable_from(self.async_functions)
            ),
        }


# -- per-module builder ------------------------------------------------


def flatten_dotted(node: ast.expr) -> str:
    """Dotted source text of a name/attribute chain (``a.b.c``).

    Non-name heads (calls, subscripts) render as ``(…)`` so the raw
    text stays informative: ``Path(x).write_text`` → ``(…).write_text``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{flatten_dotted(node.value)}.{node.attr}"
    return "(…)"


def annotation_names(node: ast.expr | None) -> list[str]:
    """Candidate class names inside an annotation, unions unwrapped.

    ``MicroBatcher | None`` → ``["MicroBatcher"]``; string annotations
    are parsed; ``Optional[X]``/``list[X]`` yield their arguments'
    names too (a typed container still names the element class).
    """
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    out: list[str] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.BinOp) and isinstance(current.op, ast.BitOr):
            stack += [current.left, current.right]
        elif isinstance(current, ast.Subscript):
            stack.append(current.slice)
            # Optional[X] / list[X]: the subscripted head is a typing
            # construct, not the attribute's class — only descend.
        elif isinstance(current, ast.Tuple):
            stack += list(current.elts)
        elif isinstance(current, (ast.Name, ast.Attribute)):
            dotted = flatten_dotted(current)
            if dotted not in ("None", "(…)"):
                out.append(dotted)
        elif isinstance(current, ast.Constant) and current.value is None:
            pass
    return out


class _ModuleBuilder:
    """Two-pass builder: symbols first, then call resolution."""

    def __init__(self, module: str, ctx: FileContext) -> None:
        self.info = ModuleInfo(module=module, ctx=ctx)
        self.ctx = ctx
        self.module = module

    # pass 1: imports, module globals, functions, classes ---------------

    def collect_symbols(self, index: ProjectIndex) -> None:
        mod = self.info
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.globals[node.name] = f"{self.module}.{node.name}"
            elif isinstance(node, ast.ClassDef):
                mod.globals[node.name] = f"{self.module}.{node.name}"
        self._collect_defs(index, self.ctx.tree.body, class_info=None)

    def _import_base(self, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        # Relative import: drop `level` trailing components from this
        # module's dotted name (the module itself counts as one).
        parts = self.module.split(".")
        base_parts = parts[: -node.level] if node.level <= len(parts) else []
        base = ".".join(base_parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def _collect_defs(
        self,
        index: ProjectIndex,
        body: list[ast.stmt],
        class_info: ClassInfo | None,
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(index, node, class_info)
            elif isinstance(node, ast.ClassDef):
                qual = (
                    f"{class_info.qualname}.{node.name}"
                    if class_info
                    else f"{self.module}.{node.name}"
                )
                info = ClassInfo(
                    qualname=qual,
                    module=self.module,
                    ctx=self.ctx,
                    node=node,
                )
                index.classes[qual] = info
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        info.field_names.add(stmt.target.id)
                self._collect_defs(index, node.body, class_info=info)

    def _collect_function(
        self,
        index: ProjectIndex,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_info: ClassInfo | None,
    ) -> None:
        if class_info is not None:
            qual = f"{class_info.qualname}.{node.name}"
            class_info.methods.add(node.name)
        else:
            qual = f"{self.module}.{node.name}"
            # Nested functions get their own entries keyed by the
            # enclosing def when walked below; module-level here.
        args = node.args
        params = tuple(
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        )
        index.functions[qual] = FunctionInfo(
            qualname=qual,
            module=self.module,
            ctx=self.ctx,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_info.qualname if class_info else None,
            params=params,
            has_kwargs=args.kwarg is not None,
        )
        if class_info is not None:
            self._collect_attr_types(class_info, node)
        # Nested defs inside this function (closures like `respond`):
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_qual = f"{qual}.<locals>.{stmt.name}"
                if nested_qual in index.functions:
                    continue
                nargs = stmt.args
                index.functions[nested_qual] = FunctionInfo(
                    qualname=nested_qual,
                    module=self.module,
                    ctx=self.ctx,
                    node=stmt,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    class_name=None,
                    params=tuple(
                        a.arg
                        for a in [
                            *nargs.posonlyargs,
                            *nargs.args,
                            *nargs.kwonlyargs,
                        ]
                    ),
                    has_kwargs=nargs.kwarg is not None,
                )

    def _collect_attr_types(
        self,
        class_info: ClassInfo,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        """Record ``self.attr`` types from annotations / constructors."""
        for stmt in ast.walk(method):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            if annotation is not None:
                names = annotation_names(annotation)
                if names:
                    class_info.attr_types.setdefault(attr, names[0])
            if (
                isinstance(value, ast.Call)
                and attr not in class_info.attr_types
            ):
                dotted = flatten_dotted(value.func)
                if dotted != "(…)":
                    class_info.attr_types.setdefault(attr, dotted)

    # pass 2: call resolution -------------------------------------------

    def resolve_calls(self, index: ProjectIndex) -> None:
        resolver = _Resolver(index, self.info)
        # Map every statement to its enclosing function qualname.
        for qual, func in list(index.functions.items()):
            if func.module != self.module:
                continue
            local_types = resolver.local_types(func)
            nested_ids: set[int] = set()
            for stmt in ast.walk(func.node):
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt is not func.node
                ):
                    nested_ids.update(id(n) for n in ast.walk(stmt))
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                if id(node) in nested_ids:
                    continue  # belongs to the nested function's entry
                func.calls.append(
                    resolver.resolve(node, func, local_types, caller=qual)
                )
        # Module-level calls (outside any def).
        in_defs = [
            n
            for n in ast.walk(self.ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        covered = set()
        for d in in_defs:
            for n in ast.walk(d):
                covered.add(id(n))
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Call) and id(node) not in covered:
                self.info.toplevel_calls.append(
                    resolver.resolve(node, None, {}, caller="")
                )


class _Resolver:
    """Resolve call expressions to fully-qualified names."""

    def __init__(self, index: ProjectIndex, mod: ModuleInfo) -> None:
        self.index = index
        self.mod = mod

    def _resolve_name(self, name: str) -> str | None:
        """A bare name in this module's namespace → FQ name."""
        if name in self.mod.globals:
            return self.mod.globals[name]
        if name in self.mod.imports:
            return self.mod.imports[name]
        return None

    def _resolve_class_name(self, dotted: str) -> str | None:
        """A (possibly dotted) type name → a class qualname we index."""
        head, _, rest = dotted.partition(".")
        base = self._resolve_name(head)
        candidate = f"{base}.{rest}" if base and rest else (base or dotted)
        if candidate in self.index.classes:
            return candidate
        if dotted in self.index.classes:
            return dotted
        # Suffix match: an annotation names the class without its
        # module path and the import table missed it.
        matches = [
            q
            for q in self.index.classes
            if q.rsplit(".", 1)[-1] == dotted.rsplit(".", 1)[-1]
        ]
        return matches[0] if len(matches) == 1 else None

    def local_types(self, func: FunctionInfo) -> dict[str, str]:
        """Local name → class qualname, from annotations + constructor
        assignments + known constructor-function return types."""
        types: dict[str, str] = {}
        args = func.node.args
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            for name in annotation_names(a.annotation):
                resolved = self._resolve_class_name(name)
                if resolved:
                    types[a.arg] = resolved
                    break
        for stmt in ast.walk(func.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                if isinstance(target, ast.Name):
                    for name in annotation_names(stmt.annotation):
                        resolved = self._resolve_class_name(name)
                        if resolved:
                            types[target.id] = resolved
                            break
            if not isinstance(target, ast.Name):
                continue
            for candidate in self._value_candidates(value):
                typed = self._value_type(candidate)
                if typed:
                    types[target.id] = typed
                    break
        return types

    def _value_candidates(self, value: ast.expr | None) -> list[ast.expr]:
        if value is None:
            return []
        if isinstance(value, ast.BoolOp):
            return list(value.values)
        if isinstance(value, ast.Await):
            return [value.value]
        return [value]

    def _value_type(self, value: ast.expr) -> str | None:
        """The class an expression evaluates to, when statically clear."""
        if not isinstance(value, ast.Call):
            return None
        dotted = flatten_dotted(value.func)
        if dotted == "(…)":
            return None
        resolved = self._resolve_dotted(dotted, None, {})
        if not resolved:
            return None
        target = resolved[0]
        if target in self.index.classes:
            return target
        func = self.index.functions.get(target)
        if func is not None and func.node.returns is not None:
            for name in annotation_names(func.node.returns):
                cls = self._resolve_class_name(name)
                if cls:
                    return cls
        return None

    def _resolve_dotted(
        self,
        dotted: str,
        func: FunctionInfo | None,
        local_types: dict[str, str],
    ) -> tuple[str, ...]:
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        if head == "(…)":
            return ()
        if head == "self" and func is not None and func.class_name:
            cls = self.index.classes.get(func.class_name)
            if cls is None or not rest:
                return ()
            if len(rest) == 1:
                name = rest[0]
                if name in cls.methods:
                    return (f"{cls.qualname}.{name}",)
                return ()
            # self.attr.method — type the attribute, then the method.
            attr, chain = rest[0], rest[1:]
            attr_type = cls.attr_types.get(attr)
            if attr_type is None:
                return ()
            owner = self._resolve_class_name(attr_type)
            if owner is None or len(chain) != 1:
                return ()
            return (f"{owner}.{chain[0]}",)
        # A typed local (param annotation or constructor assignment).
        if head in local_types and rest:
            owner = local_types[head]
            if len(rest) == 1:
                return (f"{owner}.{rest[0]}",)
            return ()
        base = self._resolve_name(head)
        if base is None:
            return ()
        full = ".".join([base, *rest])
        return (full,)

    def resolve(
        self,
        node: ast.Call,
        func: FunctionInfo | None,
        local_types: dict[str, str],
        caller: str,
    ) -> CallSite:
        raw = flatten_dotted(node.func)
        targets = self._resolve_dotted(raw, func, local_types)
        return CallSite(node=node, raw=raw, targets=targets, caller=caller)
