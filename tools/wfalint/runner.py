"""The wfalint runner: walk files, run rules, apply suppressions/baseline.

:func:`run_lint` is the single entry point both the CLI and the test
suite use.  It returns a :class:`LintResult` separating findings into
the three buckets the tooling cares about: *reported* (fail the run),
*suppressed* (an inline ``# wfalint: disable=`` on the line), and
*baselined* (grandfathered by the committed baseline file).

Since the whole-program pass the run has two phases.  Phase 1 parses
every file once and runs the per-file rules; phase 2 builds the
:class:`~tools.wfalint.project.ProjectIndex` from the already-parsed
trees and runs every :class:`~tools.wfalint.core.ProjectRule` against
it.  Findings from both phases flow through identical suppression /
baseline bucketing, and the elapsed wall time of the whole analysis is
recorded on the result (CI budgets the pass at < 10 s).

Suppression matching covers three placements: the finding's own line, a
pure-comment directive line directly above it, and — for findings
anchored on a ``def``/``class`` line — the decorator lines above the
definition.  Directives that suppress nothing are themselves findings
(W015 ``stale-suppression``) so dead waivers cannot accumulate.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path

from . import rules as _builtin_rules  # noqa: F401  — registers the rules
from .baseline import Baseline
from .core import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    iter_rules,
    parse_suppressions,
)
from .project import ProjectIndex

__all__ = ["LintResult", "run_lint", "collect_files"]

#: Directory names never descended into.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
    "node_modules",
    "repro.egg-info",
}

#: The runner-driven stale-suppression rule (see ``rules/suppressions``).
_STALE_RULE_ID = "W015"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    reported: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    parse_errors: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    stale_baseline: list[dict] = field(default_factory=list)
    #: Wall-clock seconds the whole analysis took (both phases).
    analysis_seconds: float = 0.0
    #: The ``--graph`` artifact (phase-1 index dump); ``None`` unless
    #: :func:`run_lint` was asked for it.
    graph: dict | None = None

    @property
    def all_findings(self) -> list[Finding]:
        """Reported + suppressed + baselined (pre-filter view)."""
        return self.reported + self.suppressed + self.baselined

    @property
    def exit_code(self) -> int:
        """0 clean; 1 findings (or unparsable files)."""
        return 1 if self.reported or self.parse_errors else 0

    def summary(self) -> dict[str, int | float]:
        """Counts by bucket (plus the analyzer runtime), JSON-friendly."""
        errors = sum(1 for f in self.reported if f.severity == "error")
        return {
            "files_checked": self.files_checked,
            "reported": len(self.reported),
            "errors": errors,
            "warnings": len(self.reported) - errors,
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "parse_errors": len(self.parse_errors),
            "stale_baseline": len(self.stale_baseline),
            "analysis_seconds": round(self.analysis_seconds, 3),
        }


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand ``paths`` (files or directories) into sorted ``*.py`` files."""
    out: set[Path] = set()
    for path in paths:
        if path.is_file():
            out.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS & set(candidate.parts):
                    out.add(candidate)
    return sorted(out)


def _decorator_lines(tree: ast.Module) -> dict[int, set[int]]:
    """Map a decorated ``def``/``class`` line to its decorator lines.

    A finding anchored on the definition line may be suppressed by a
    directive on any of its decorator lines — the only lines "next to"
    a decorated definition that can carry a comment of their own.
    """
    out: dict[int, set[int]] = {}
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if node.decorator_list:
                out[node.lineno] = {d.lineno for d in node.decorator_list}
    return out


def run_lint(
    paths: list[Path],
    *,
    root: Path | None = None,
    baseline: Baseline | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    rules: list[Rule] | None = None,
    graph: bool = False,
) -> LintResult:
    """Lint ``paths`` and bucket every finding.

    ``root`` anchors relpaths (and rule path scoping); it defaults to
    the current working directory.  ``select``/``ignore`` filter rule
    ids; ``rules`` overrides the registry entirely (tests use this).
    ``graph=True`` additionally attaches the phase-1 index dump to the
    result (the ``--graph`` CLI artifact).
    """
    started = time.perf_counter()
    root = (root or Path.cwd()).resolve()
    active = rules if rules is not None else iter_rules()
    if select:
        active = [r for r in active if r.id in select]
    if ignore:
        active = [r for r in active if r.id not in ignore]
    baseline = baseline or Baseline()

    result = LintResult()
    matched: list[Finding] = []
    contexts: list[FileContext] = []
    ctx_map: dict[str, FileContext] = {}
    supp_map: dict[str, dict[int, set[str]]] = {}
    deco_map: dict[str, dict[int, set[int]]] = {}
    #: ``(relpath, line, rule_id-or-'all')`` directives that suppressed
    #: at least one finding — the complement feeds W015.
    used_directives: set[tuple[str, int, str]] = set()

    for path in collect_files(paths):
        try:
            ctx = FileContext.load(path, root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", 1) or 1
            result.parse_errors.append(
                Finding(
                    rule_id="E000",
                    severity="error",
                    path=_relpath(path, root),
                    line=lineno,
                    col=0,
                    message=f"cannot parse: {exc}",
                )
            )
            continue
        result.files_checked += 1
        contexts.append(ctx)
        ctx_map[ctx.relpath] = ctx
        supp_map[ctx.relpath] = parse_suppressions(ctx.lines)
        deco_map[ctx.relpath] = _decorator_lines(ctx.tree)

    def bucket(finding: Finding) -> None:
        matched.append(finding)
        hits: set[tuple[int, str]] = set()
        ctx = ctx_map.get(finding.path)
        if ctx is not None:
            suppressions = supp_map[finding.path]
            candidate_lines = {finding.line}
            # A directive may also sit on an immediately preceding
            # pure-comment line (the idiom for statements too long
            # to share a line with their justification) …
            prev = finding.line - 1
            if prev >= 1 and ctx.source_line(prev).startswith("#"):
                candidate_lines.add(prev)
            # … or, for decorated definitions, on a decorator line.
            candidate_lines |= deco_map[finding.path].get(
                finding.line, set()
            )
            for lineno in candidate_lines:
                for rid in suppressions.get(lineno, set()):
                    if rid == "all" or rid == finding.rule_id:
                        hits.add((lineno, rid))
        if hits:
            for lineno, rid in hits:
                used_directives.add((finding.path, lineno, rid))
            result.suppressed.append(finding)
        elif finding in baseline:
            result.baselined.append(finding)
        else:
            result.reported.append(finding)

    # Phase 1: per-file rules over each parsed tree.
    file_rules = [r for r in active if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]
    for ctx in contexts:
        for rule in file_rules:
            if not rule.applies(ctx.relpath):
                continue
            for finding in rule.check(ctx):
                bucket(finding)

    # Phase 2: whole-program rules over the cross-module index.
    if project_rules:
        index = ProjectIndex.build(contexts, root)
        for rule in project_rules:
            for finding in rule.check_project(index):
                if rule.applies(finding.path):
                    bucket(finding)
        if graph:
            result.graph = index.graph_dump()

    # Stale suppressions: a directive (excluding `all` and W015 itself)
    # naming an active, in-scope rule that suppressed nothing is dead —
    # report it so waivers cannot outlive the code they excused.
    stale_rule = next(
        (r for r in active if r.id == _STALE_RULE_ID), None
    )
    if stale_rule is not None:
        by_id = {r.id: r for r in active}
        for relpath, suppressions in sorted(supp_map.items()):
            if not stale_rule.applies(relpath):
                continue
            ctx = ctx_map[relpath]
            for lineno, rids in sorted(suppressions.items()):
                for rid in sorted(rids):
                    if rid in ("all", _STALE_RULE_ID):
                        continue
                    target = by_id.get(rid)
                    if target is None:
                        continue  # rule not active this run: unjudgeable
                    if (relpath, lineno, rid) in used_directives:
                        continue
                    scope = (
                        "no longer fires here"
                        if target.applies(relpath)
                        else "does not even apply to this path"
                    )
                    bucket(
                        Finding(
                            rule_id=stale_rule.id,
                            severity=stale_rule.severity,
                            path=relpath,
                            line=lineno,
                            col=0,
                            message=(
                                f"stale suppression: {rid} {scope} — "
                                "delete the directive"
                            ),
                            source_line=ctx.source_line(lineno),
                        )
                    )

    result.reported.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    result.stale_baseline = baseline.stale_entries(matched)
    result.analysis_seconds = time.perf_counter() - started
    return result


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()
