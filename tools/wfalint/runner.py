"""The wfalint runner: walk files, run rules, apply suppressions/baseline.

:func:`run_lint` is the single entry point both the CLI and the test
suite use.  It returns a :class:`LintResult` separating findings into
the three buckets the tooling cares about: *reported* (fail the run),
*suppressed* (an inline ``# wfalint: disable=`` on the line), and
*baselined* (grandfathered by the committed baseline file).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from . import rules as _builtin_rules  # noqa: F401  — registers the rules
from .baseline import Baseline
from .core import Finding, Rule, iter_rules, parse_suppressions, FileContext

__all__ = ["LintResult", "run_lint", "collect_files"]

#: Directory names never descended into.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
    "node_modules",
    "repro.egg-info",
}


@dataclass
class LintResult:
    """Everything one lint run produced."""

    reported: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    parse_errors: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    stale_baseline: list[dict] = field(default_factory=list)

    @property
    def all_findings(self) -> list[Finding]:
        """Reported + suppressed + baselined (pre-filter view)."""
        return self.reported + self.suppressed + self.baselined

    @property
    def exit_code(self) -> int:
        """0 clean; 1 findings (or unparsable files)."""
        return 1 if self.reported or self.parse_errors else 0

    def summary(self) -> dict[str, int]:
        """Counts by bucket, JSON-friendly."""
        errors = sum(1 for f in self.reported if f.severity == "error")
        return {
            "files_checked": self.files_checked,
            "reported": len(self.reported),
            "errors": errors,
            "warnings": len(self.reported) - errors,
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "parse_errors": len(self.parse_errors),
            "stale_baseline": len(self.stale_baseline),
        }


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand ``paths`` (files or directories) into sorted ``*.py`` files."""
    out: set[Path] = set()
    for path in paths:
        if path.is_file():
            out.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS & set(candidate.parts):
                    out.add(candidate)
    return sorted(out)


def run_lint(
    paths: list[Path],
    *,
    root: Path | None = None,
    baseline: Baseline | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    rules: list[Rule] | None = None,
) -> LintResult:
    """Lint ``paths`` and bucket every finding.

    ``root`` anchors relpaths (and rule path scoping); it defaults to
    the current working directory.  ``select``/``ignore`` filter rule
    ids; ``rules`` overrides the registry entirely (tests use this).
    """
    root = (root or Path.cwd()).resolve()
    active = rules if rules is not None else iter_rules()
    if select:
        active = [r for r in active if r.id in select]
    if ignore:
        active = [r for r in active if r.id not in ignore]
    baseline = baseline or Baseline()

    result = LintResult()
    matched: list[Finding] = []
    for path in collect_files(paths):
        try:
            ctx = FileContext.load(path, root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", 1) or 1
            result.parse_errors.append(
                Finding(
                    rule_id="E000",
                    severity="error",
                    path=_relpath(path, root),
                    line=lineno,
                    col=0,
                    message=f"cannot parse: {exc}",
                )
            )
            continue
        result.files_checked += 1
        suppressions = parse_suppressions(ctx.lines)
        for rule in active:
            if not rule.applies(ctx.relpath):
                continue
            for finding in rule.check(ctx):
                matched.append(finding)
                line_rules = set(suppressions.get(finding.line, set()))
                # A directive may also sit on an immediately preceding
                # pure-comment line (the idiom for statements too long
                # to share a line with their justification).
                prev = finding.line - 1
                if prev >= 1 and ctx.source_line(prev).startswith("#"):
                    line_rules |= suppressions.get(prev, set())
                if "all" in line_rules or finding.rule_id in line_rules:
                    result.suppressed.append(finding)
                elif finding in baseline:
                    result.baselined.append(finding)
                else:
                    result.reported.append(finding)
    result.reported.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    result.stale_baseline = baseline.stale_entries(matched)
    return result


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()
