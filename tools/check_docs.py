#!/usr/bin/env python3
"""Documentation gates: markdown link check + docstring coverage.

Two checks, both dependency-free (CI's ``docs`` job runs them):

* **Link check** — every relative link or image in the repository's
  markdown (README.md, DESIGN.md, CHANGES.md, ROADMAP.md, docs/**)
  must point at a file that exists.  External ``http(s)`` links and
  pure ``#fragment`` links are skipped (CI must not depend on the
  network).
* **Docstring coverage** — the public API of the packages listed in
  ``COVERED_MODULES`` (the observability layer, the batch engine and
  the batched kernels) must be fully documented: module docstrings,
  public classes, public functions, and public methods of public
  classes.  Names starting with ``_`` and inherited members are out of
  scope.

Run from the repository root:

    PYTHONPATH=src python tools/check_docs.py

Exits non-zero listing every broken link / undocumented symbol.
"""

from __future__ import annotations

import importlib
import inspect
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files / trees whose relative links must resolve.
MARKDOWN_ROOTS = (
    "README.md",
    "DESIGN.md",
    "CHANGES.md",
    "ROADMAP.md",
    "PAPER.md",
    "docs",
)

#: Packages/modules whose public API must be fully documented.
COVERED_MODULES = (
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.obs.manifest",
    "repro.obs.schema",
    "repro.obs.publish",
    "repro.obs.vocabulary",
    "repro.engine",
    "repro.engine.engine",
    "repro.engine.backends",
    "repro.engine.cache",
    "repro.engine.validation",
    "repro.align.wfa_batched",
    "repro.align.profile",
    "repro.fleet",
    "repro.fleet.chip",
    "repro.fleet.scheduler",
    "repro.fleet.planner",
    "repro.fleet.dse",
    "repro.fleet.report",
    "repro.fleet.handbook",
)

#: ``[text](target)`` and ``![alt](target)`` — good enough for our docs
#: (no reference-style links in this repository).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files() -> list[Path]:
    files: list[Path] = []
    for root in MARKDOWN_ROOTS:
        path = REPO_ROOT / root
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def check_links() -> list[str]:
    """Broken relative links, as ``file: target`` strings."""
    problems: list[str] = []
    for md in _markdown_files():
        text = md.read_text()
        # Fenced code blocks routinely show link-like syntax; skip them.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (md.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return problems


def _is_local(obj, module) -> bool:
    return getattr(obj, "__module__", None) == module.__name__


def _public_names(module) -> list[str]:
    declared = getattr(module, "__all__", None)
    if declared is not None:
        return list(declared)
    return [name for name in vars(module) if not name.startswith("_")]


def check_docstrings() -> list[str]:
    """Undocumented public symbols, as ``module.symbol`` strings."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    problems: list[str] = []
    for module_name in COVERED_MODULES:
        module = importlib.import_module(module_name)
        if not (module.__doc__ or "").strip():
            problems.append(f"{module_name}: missing module docstring")
        for name in _public_names(module):
            obj = getattr(module, name, None)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if not _is_local(obj, module):
                continue  # re-export; documented at its home module
            if not (inspect.getdoc(obj) or "").strip():
                problems.append(f"{module_name}.{name}: missing docstring")
            if inspect.isclass(obj):
                problems.extend(_check_methods(module_name, name, obj))
    return problems


def _check_methods(module_name: str, class_name: str, cls) -> list[str]:
    problems = []
    for attr, member in vars(cls).items():
        if attr.startswith("_"):
            continue
        func = member
        if isinstance(member, (classmethod, staticmethod)):
            func = member.__func__
        elif isinstance(member, property):
            func = member.fget
        if not inspect.isfunction(func):
            continue
        if not (inspect.getdoc(func) or "").strip():
            problems.append(
                f"{module_name}.{class_name}.{attr}: missing docstring"
            )
    return problems


def main() -> int:
    broken = check_links()
    undocumented = check_docstrings()
    for problem in broken + undocumented:
        print(problem)
    print(
        f"link check: {len(broken)} broken link(s) in "
        f"{len(_markdown_files())} markdown file(s); docstring coverage: "
        f"{len(undocumented)} undocumented symbol(s) in "
        f"{len(COVERED_MODULES)} module(s)"
    )
    return 1 if (broken or undocumented) else 0


if __name__ == "__main__":
    raise SystemExit(main())
