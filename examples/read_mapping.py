#!/usr/bin/env python3
"""A miniature read mapper on top of the WFAsic SoC.

The paper's motivating pipeline (§2.1): read mapping = *seeding* (find
candidate locations of each read in the reference with a k-mer index)
followed by *seed extension* (pairwise alignment of the read against
each candidate region) — the step WFAsic accelerates.

This example builds a k-mer index over a synthetic reference genome,
samples error-laden reads from known positions, seeds each read, and
then performs every candidate extension as one WFAsic batch, keeping the
best-scoring location per read.

Run:  python examples/read_mapping.py
"""

from collections import defaultdict

import numpy as np

from repro.soc import Soc
from repro.wfasic import WfasicConfig
from repro.workloads import PairGenerator, SequencePair

K = 15  # seed k-mer length
REFERENCE_LEN = 50_000
READ_LEN = 500
NUM_READS = 12
ERROR_RATE = 0.06


def build_reference(seed: int) -> str:
    rng = np.random.default_rng(seed)
    bases = np.frombuffer(b"ACGT", dtype=np.uint8)
    return bytes(bases[rng.integers(0, 4, size=REFERENCE_LEN)]).decode()


def build_index(reference: str) -> dict[str, list[int]]:
    """k-mer -> positions (the Seeding data structure)."""
    index: dict[str, list[int]] = defaultdict(list)
    for pos in range(0, len(reference) - K + 1):
        index[reference[pos : pos + K]].append(pos)
    return index


def sample_reads(reference: str, seed: int) -> list[tuple[int, str]]:
    """(true position, mutated read) samples."""
    rng = np.random.default_rng(seed)
    mutator = PairGenerator(length=READ_LEN, error_rate=ERROR_RATE, seed=seed)
    reads = []
    for _ in range(NUM_READS):
        pos = int(rng.integers(0, REFERENCE_LEN - READ_LEN))
        exact = reference[pos : pos + READ_LEN]
        mutated, _ = mutator._mutate(exact)
        reads.append((pos, mutated))
    return reads


def seed_read(read: str, index: dict[str, list[int]]) -> list[int]:
    """Candidate window starts from a few sampled k-mers of the read."""
    votes: dict[int, int] = defaultdict(int)
    for offset in range(0, len(read) - K + 1, K):
        for pos in index.get(read[offset : offset + K], ()):
            # A k-mer at read offset `offset` implies a window near
            # pos - offset.
            votes[max(0, pos - offset)] += 1
    # Keep the best-supported candidates.
    ranked = sorted(votes.items(), key=lambda kv: -kv[1])
    return [start for start, _ in ranked[:3]]


def main() -> None:
    reference = build_reference(seed=1)
    index = build_index(reference)
    reads = sample_reads(reference, seed=2)
    print(f"reference: {REFERENCE_LEN} bp, index of {len(index)} {K}-mers")
    print(f"reads: {NUM_READS} x {READ_LEN} bp at {ERROR_RATE:.0%} error\n")

    # Seeding: collect (read, candidate window) jobs.
    jobs: list[SequencePair] = []
    job_meta: list[tuple[int, int]] = []  # (read idx, window start)
    for ridx, (_, read) in enumerate(reads):
        for start in seed_read(read, index):
            window = reference[start : start + len(read) + 32]
            jobs.append(
                SequencePair(pattern=read, text=window, pair_id=len(jobs))
            )
            job_meta.append((ridx, start))
    print(f"seeding produced {len(jobs)} candidate extensions")

    # Seed extension: one WFAsic batch for every candidate.
    soc = Soc(WfasicConfig.paper_default(backtrace=False))
    out = soc.run_accelerated(jobs, backtrace=False)

    # Pick the best location per read.
    best: dict[int, tuple[int, int]] = {}  # read -> (score, window start)
    for pair, (ridx, start) in zip(jobs, job_meta):
        score = out.scores[pair.pair_id]
        if out.success[pair.pair_id] and (
            ridx not in best or score < best[ridx][0]
        ):
            best[ridx] = (score, start)

    print("\n=== mapping results ===")
    correct = 0
    for ridx, (true_pos, _) in enumerate(reads):
        if ridx not in best:
            print(f"  read {ridx:2d}: UNMAPPED (true position {true_pos})")
            continue
        score, mapped = best[ridx]
        # The window includes slack, so accept small offsets.
        ok = abs(mapped - true_pos) <= 32
        correct += ok
        print(f"  read {ridx:2d}: mapped to {mapped:6d} "
              f"(true {true_pos:6d}, score {score:3d}) "
              f"{'OK' if ok else 'MISS'}")

    print(f"\n{correct}/{NUM_READS} reads mapped to their true location")
    print(f"accelerator makespan: {out.accelerator_cycles} cycles "
          f"for {len(jobs)} extensions")
    assert correct >= NUM_READS - 1, "mapper accuracy regression"


if __name__ == "__main__":
    main()
