#!/usr/bin/env python3
"""Quickstart: align a pair of DNA reads three ways.

1. the Smith-Waterman-Gotoh dynamic-programming oracle (Eq. 2),
2. the software WFA (Eq. 3/4) — the paper's CPU baseline,
3. the WFAsic accelerator model — scores, CIGAR recovered through the
   hardware origin-bit stream, and the cycle count the FPGA prototype
   would report.

Run:  python examples/quickstart.py
"""

from repro.align import DEFAULT_PENALTIES, swg_align, wfa_align
from repro.wfasic import (
    Aligner,
    CollectorBT,
    CpuBacktracer,
    Extractor,
    WfasicConfig,
)
from repro.wfasic.packets import encode_pair_record, round_up_read_len


def main() -> None:
    pattern = "GATTACATTACAGGATCGATTACACGGATTT"
    text = "GATTACATACAGGATCAATTACACGGGATTT"

    print("=== sequences ===")
    print(f"pattern: {pattern}")
    print(f"text:    {text}")
    print(f"penalties: x={DEFAULT_PENALTIES.mismatch} "
          f"o={DEFAULT_PENALTIES.gap_open} e={DEFAULT_PENALTIES.gap_extend}\n")

    # 1. The DP oracle.
    oracle = swg_align(pattern, text)
    print(f"SWG oracle score:   {oracle.score}")

    # 2. The software WFA.
    sw = wfa_align(pattern, text)
    print(f"software WFA score: {sw.score}  "
          f"(cells computed: {sw.work.cells_computed}, "
          f"wavefront steps: {sw.work.wavefront_steps})")

    # 3. The WFAsic accelerator: pack the pair into the §4.2 memory
    # format, run it through Extractor -> Aligner, then recover the
    # CIGAR on the "CPU" from the streamed 5-bit origin codes.
    config = WfasicConfig.paper_default(backtrace=True)
    max_read_len = round_up_read_len(max(len(pattern), len(text)))
    record = encode_pair_record(0, pattern, text, max_read_len)
    job = Extractor(max_read_len).extract(record)
    run = Aligner(config).run(job)
    stream = CollectorBT().collect([run]).as_stream()
    results, _ = CpuBacktracer(config).process(
        stream, {0: (pattern, text)}, separate=False
    )
    hw = results[0]

    print(f"WFAsic score:       {run.score}  "
          f"({run.cycles} accelerator cycles, "
          f"{run.stats.wavefront_steps} wavefront steps)\n")

    assert oracle.score == sw.score == run.score == hw.score

    print("=== alignment recovered from the hardware backtrace stream ===")
    print(hw.cigar.render(pattern, text))
    print(f"\nCIGAR: {hw.cigar.compact()}")
    print(f"differences: {hw.cigar.num_differences()} "
          f"(X={hw.cigar.counts()['X']}, I={hw.cigar.counts()['I']}, "
          f"D={hw.cigar.counts()['D']})")


if __name__ == "__main__":
    main()
