#!/usr/bin/env python3
"""The full co-design flow of Fig. 4 at the register level.

A batch of synthetic long reads goes through the SoC exactly as the
paper describes: the CPU stages the input image in main memory, programs
the accelerator's memory-mapped registers over AXI-Lite (MAX_READ_LEN,
DMA addresses, backtrace enable, interrupt enable), writes Start, takes
the completion interrupt, and finally runs the CPU backtrace over the
result stream.

Run:  python examples/soc_batch_alignment.py
"""

from repro.engine import align_pairs
from repro.metrics import speedup
from repro.soc import Soc
from repro.wfasic import WfasicConfig
from repro.workloads import PairGenerator


def main() -> None:
    # A batch of 1 kbp third-generation-style reads at 8 % error.
    gen = PairGenerator(length=1000, error_rate=0.08, seed=42)
    pairs = gen.batch(8)
    print(f"batch: {len(pairs)} pairs of ~{gen.length} bp at "
          f"{gen.error_rate:.0%} error\n")

    soc = Soc(WfasicConfig.paper_default(backtrace=True))

    # Completion interrupt instead of polling, to show both §3 modes.
    completions = []
    soc.device.irq.connect(lambda: completions.append("irq"))

    out = soc.run_accelerated(pairs)

    # Reference scores from the SWG oracle, via the batch engine: the
    # whole batch is sharded across two worker processes in one call.
    oracle = align_pairs(pairs, backend="swg", workers=2, chunk_size=2)
    refs = {p.pair_id: s for p, s in zip(pairs, oracle.scores)}
    print("=== oracle cross-check (batch engine, swg backend) ===")
    print(f"  {oracle.report.pairs_per_second:.1f} pairs/s over "
          f"{oracle.report.workers} workers, "
          f"utilisation {oracle.report.worker_utilisation:.0%}\n")

    print("=== per-pair results (accelerator + CPU backtrace) ===")
    for p in pairs:
        cigar = out.cigars[p.pair_id]
        ref = refs[p.pair_id]
        status = "OK " if out.scores[p.pair_id] == ref else "BAD"
        print(f"  pair {p.pair_id}: score={out.scores[p.pair_id]:4d} "
              f"(oracle {ref:4d}) [{status}]  "
              f"differences={cigar.num_differences():3d}  "
              f"CIGAR={cigar.compact()[:48]}...")

    print("\n=== cycle accounting (FPGA-prototype sense) ===")
    batch = out.batch
    print(f"  reading cycles/pair:      {batch.reading_cycles_per_pair}")
    print(f"  alignment cycles/pair:    "
          f"{sum(batch.alignment_cycles) // len(pairs)} (mean)")
    print(f"  accelerator makespan:     {out.accelerator_cycles}")
    print(f"  CPU backtrace cycles:     {out.cpu_backtrace_cycles}")
    print(f"  end-to-end cycles:        {out.total_cycles}")

    cpu = soc.run_cpu(pairs, vector=False, backtrace=True)
    print(f"\n  CPU scalar WFA cycles:    {cpu.cycles}")
    print(f"  speedup (with backtrace): "
          f"{speedup(cpu.cycles, out.total_cycles):.1f}x")

    nbt = Soc(WfasicConfig.paper_default(backtrace=False))
    out_nbt = nbt.run_accelerated(pairs, backtrace=False)
    print(f"  speedup (score only):     "
          f"{speedup(cpu.cycles, out_nbt.total_cycles):.1f}x")

    print(f"\n  driver register writes:   {soc.driver.axi_lite.writes}")
    print(f"  completion interrupts:    {soc.device.irq.raised_count}")


if __name__ == "__main__":
    main()
