#!/usr/bin/env python3
"""Design-space exploration: Aligners x parallel sections x area.

Reproduces the reasoning of §5.4 at larger scope: for a grid of
configurations, measure batch throughput on a representative workload,
derive silicon area from the macro inventory, and print the
throughput-per-area frontier.  This is the analysis behind the paper's
choice of one Aligner with 64 parallel sections.

This single-chip sweep now has a fleet-scale successor:
``repro-wfasic fleet sweep`` walks sections x k_max x *chip count* into
a Pareto-frontier artifact, and ``repro-wfasic fleet plan`` inverts it
under area/power budgets — see ``docs/fleet.md`` and ``repro.fleet``.

Run:  python examples/design_space_exploration.py
"""

from repro.reporting import format_table
from repro.soc import Soc
from repro.wfasic import WfasicConfig, asic_report
from repro.workloads import make_input_set


CONFIGS = [
    (1, 16),
    (1, 32),
    (1, 64),
    (1, 128),
    (2, 32),
    (2, 64),
    (4, 16),
    (4, 32),
]


def main() -> None:
    workloads = {
        "short (100bp-10%)": make_input_set("100-10%", 12),
        "medium (1K-10%)": make_input_set("1K-10%", 4),
    }

    for label, pairs in workloads.items():
        rows = []
        for n_aligners, n_ps in CONFIGS:
            cfg = WfasicConfig(
                num_aligners=n_aligners,
                parallel_sections=n_ps,
                backtrace=False,
            )
            soc = Soc(cfg)
            out = soc.run_accelerated(pairs, backtrace=False)
            report = asic_report(cfg)
            cycles = out.total_cycles
            # Pairs per second at the post-PnR clock, per mm^2.
            pairs_per_s = len(pairs) / (cycles / report.frequency_hz)
            rows.append(
                [
                    f"{n_aligners}x{n_ps}PS",
                    cycles,
                    round(report.total_area_mm2, 2),
                    round(pairs_per_s / 1e3, 1),
                    round(pairs_per_s / report.total_area_mm2 / 1e3, 1),
                ]
            )
        rows.sort(key=lambda r: -r[-1])
        print(
            format_table(
                ["config", "batch cycles", "area mm2", "Kpairs/s", "Kpairs/s/mm2"],
                rows,
                title=f"\n=== {label} ===",
            )
        )

    print(
        "\nObservations (cf. §5.4):\n"
        "  * short reads: extra Aligners beat extra parallel sections\n"
        "    (small wavefronts leave wide Aligners idle);\n"
        "  * long reads: wide Aligners catch up — and one 64-PS Aligner\n"
        "    avoids the CPU-side data-separation cost entirely, which is\n"
        "    why the paper ships 1x64PS."
    )


if __name__ == "__main__":
    main()
