#!/usr/bin/env python3
"""Long-read overlap detection — the third-generation assembly workload.

§1 motivates long-read support with genome assembly: third-generation
reads of thousands of bases "make DNA assembly easier, faster and more
accurate".  The core assembly primitive is *overlap detection*: find
read pairs that cover adjacent genome regions and align their
overlapping ends exactly.

This example samples long reads tiling a synthetic genome with known
overlaps, detects candidate overlaps with shared k-mers, and verifies
each candidate with a WFAsic batch alignment of the suffix/prefix pair.
An overlap is accepted if its per-base error is below a threshold.

Run:  python examples/long_read_overlap.py
"""

from collections import defaultdict

import numpy as np

from repro.soc import Soc
from repro.wfasic import WfasicConfig
from repro.workloads import PairGenerator, SequencePair

GENOME_LEN = 30_000
READ_LEN = 4_000
STRIDE = 2_500  # reads overlap by READ_LEN - STRIDE = 1500 bp
ERROR_RATE = 0.05
K = 17


def main() -> None:
    rng = np.random.default_rng(3)
    bases = np.frombuffer(b"ACGT", dtype=np.uint8)
    genome = bytes(bases[rng.integers(0, 4, size=GENOME_LEN)]).decode()

    # Sample tiling reads with sequencing errors.
    mutator = PairGenerator(length=READ_LEN, error_rate=ERROR_RATE, seed=4)
    starts = list(range(0, GENOME_LEN - READ_LEN + 1, STRIDE))
    reads = []
    for pos in starts:
        mutated, _ = mutator._mutate(genome[pos : pos + READ_LEN])
        reads.append(mutated)
    print(f"{len(reads)} reads of ~{READ_LEN} bp tiling a {GENOME_LEN} bp "
          f"genome (true overlap {READ_LEN - STRIDE} bp)\n")

    # Candidate detection: shared k-mers between read ends.
    def kmers(seq: str) -> set[str]:
        return {seq[i : i + K] for i in range(0, len(seq) - K + 1, 3)}

    tail_kmers = [kmers(r[-2000:]) for r in reads]
    head_kmers = [kmers(r[:2000]) for r in reads]
    candidates = []
    for i in range(len(reads)):
        for j in range(len(reads)):
            if i != j and len(tail_kmers[i] & head_kmers[j]) >= 2:
                candidates.append((i, j))
    print(f"k-mer filter proposes {len(candidates)} candidate overlaps")

    # Exact verification: align tail(i) against head(j) on the WFAsic.
    overlap = READ_LEN - STRIDE
    jobs = []
    for pid, (i, j) in enumerate(candidates):
        jobs.append(
            SequencePair(
                pattern=reads[i][-overlap:],
                text=reads[j][: overlap + 64],
                pair_id=pid,
            )
        )
    soc = Soc(WfasicConfig.paper_default(backtrace=False))
    out = soc.run_accelerated(jobs, backtrace=False)

    # Accept overlaps whose alignment penalty implies < 2.5x the nominal
    # error rate across the overlap region.
    threshold = int(2.5 * ERROR_RATE * overlap * 8)
    accepted = []
    print("\n=== verified overlaps ===")
    for pid, (i, j) in enumerate(candidates):
        score = out.scores[pid]
        ok = out.success[pid] and score < threshold
        if ok:
            accepted.append((i, j))
        print(f"  read {i} -> read {j}: score {score:5d} "
              f"{'ACCEPT' if ok else 'reject'}")

    expected = [(i, i + 1) for i in range(len(reads) - 1)]
    missing = [e for e in expected if e not in accepted]
    spurious = [a for a in accepted if a not in expected]
    print(f"\nexpected chain overlaps found: "
          f"{len(expected) - len(missing)}/{len(expected)}")
    print(f"spurious overlaps accepted: {len(spurious)}")
    print(f"accelerator makespan: {out.accelerator_cycles} cycles")
    assert not missing, f"missed true overlaps: {missing}"
    assert not spurious, f"accepted spurious overlaps: {spurious}"


if __name__ == "__main__":
    main()
