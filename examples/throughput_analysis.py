#!/usr/bin/env python3
"""Throughput analysis: utilisation, bottlenecks, and batch pipelining.

Four analyses — three on the accelerator model, one on the software
serving layer:

1. **Utilisation** — where the cycles go as the Aligner count scales on a
   short-read batch (the Fig. 10 saturation, seen from the inside:
   reader busy, Aligners idle).
2. **Output-port contention** — the fluid-pipeline view of the backtrace
   stream throttling wide configurations (§4.1's bandwidth warning).
3. **Batch pipelining** — overlapping the CPU backtrace of one batch with
   the accelerator's next batch ("runs as an independent process in
   parallel to other CPU processes", §1).
4. **Batch engine** — the software serving path: the same workload
   through the parallel batch engine, serial vs sharded vs cached.

Run:  python examples/throughput_analysis.py
"""

import statistics

from repro.engine import align_pairs
from repro.metrics import analyse_batch
from repro.reporting import format_table
from repro.reporting.schedule import render_schedule
from repro.soc import Soc, run_overlapped
from repro.wfasic import WfasicAccelerator, WfasicConfig
from repro.wfasic.packets import encode_input_image, round_up_read_len
from repro.wfasic.pipeline import FluidPipelineSim, PipelineJob
from repro.workloads import make_input_set


def utilisation_sweep() -> None:
    pairs = make_input_set("100-10%", 24)
    mrl = round_up_read_len(max(p.max_length for p in pairs))
    image = encode_input_image(pairs, mrl)
    rows = []
    for aligners in (1, 2, 4, 6, 8):
        cfg = WfasicConfig(num_aligners=aligners, backtrace=False)
        result = WfasicAccelerator(cfg).run_image(image, mrl)
        a = analyse_batch(result)
        rows.append(
            [
                aligners,
                a.makespan,
                f"{a.aligner_utilisation:.0%}",
                f"{a.reader_utilisation:.0%}",
                "yes" if a.input_bound else "no",
            ]
        )
    print(format_table(
        ["Aligners", "makespan", "aligner util", "reader util", "input-bound"],
        rows,
        title="=== 1. utilisation vs Aligner count (100bp-10%, BT off) ===",
    ))
    print("  -> beyond Eq. 7's knee the reader saturates and Aligners idle\n")

    # Visualise the saturated case: reads (r) back to back, aligners idle.
    cfg = WfasicConfig(num_aligners=4, backtrace=False)
    small = make_input_set("100-10%", 8)
    image = encode_input_image(small, mrl)
    result = WfasicAccelerator(cfg).run_image(image, mrl)
    print(render_schedule(result))
    print()


def contention_view() -> None:
    pairs = make_input_set("1K-10%", 4)
    mrl = round_up_read_len(max(p.max_length for p in pairs))
    image = encode_input_image(pairs, mrl)
    cfg = WfasicConfig.paper_default(backtrace=True)
    result = WfasicAccelerator(cfg).run_image(image, mrl)
    align = int(statistics.mean(result.alignment_cycles))
    txns = result.output.num_transactions // len(pairs)
    rows = []
    for aligners in (1, 2, 4):
        sim = FluidPipelineSim(aligners)
        jobs = [
            PipelineJob(result.reading_cycles_per_pair, align, txns)
            for _ in range(8)
        ]
        res = sim.run(jobs)
        rows.append(
            [aligners, int(res.makespan), "yes" if res.output_limited else "no"]
        )
    print(format_table(
        ["Aligners", "fluid makespan", "output-limited"],
        rows,
        title="=== 2. backtrace output contention (1K-10%, fluid model) ===",
    ))
    print("  -> the 16-byte output port throttles scaling once the BT\n"
          "     stream saturates it (§4.1)\n")


def pipelining_view() -> None:
    soc = Soc(WfasicConfig.paper_default(backtrace=True))
    all_pairs = make_input_set("1K-5%", 8)
    batches = [all_pairs[i * 2 : (i + 1) * 2] for i in range(4)]
    out = run_overlapped(soc, batches)
    print("=== 3. batch pipelining (4 batches of 2x 1kbp pairs, BT on) ===")
    print(f"  sequential: {out.sequential_cycles} cycles")
    print(f"  overlapped: {out.overlapped_cycles} cycles")
    print(f"  pipelining gain: {out.speedup:.2f}x "
          "(CPU backtrace hidden behind the next batch's alignment)")


def engine_view() -> None:
    # A serving-style workload: 48 requests over 16 distinct pairs (the
    # duplication a production frontend sees from repeated queries).
    unique = make_input_set("100-10%", 16)
    requests = [unique[i % len(unique)] for i in range(48)]
    rows = []
    for label, workers, cache in (
        ("serial, no cache", 1, 0),
        ("2 workers, no cache", 2, 0),
        ("2 workers + LRU cache", 2, 4096),
    ):
        res = align_pairs(
            requests,
            backend="vectorized",
            workers=workers,
            chunk_size=8,
            cache_size=cache,
        )
        rows.append(
            [
                label,
                f"{res.report.pairs_per_second:.0f}",
                f"{res.report.gcups:.4f}",
                f"{res.report.cache_hit_rate + res.report.coalesced / res.report.num_pairs:.0%}",
                f"{res.report.worker_utilisation:.0%}",
            ]
        )
    print(format_table(
        ["engine", "pairs/s", "GCUPS", "dup served", "worker util"],
        rows,
        title="=== 4. software batch engine (48 requests, 16 unique pairs) ===",
    ))
    print("  -> duplicate requests are answered from the LRU/coalescer,\n"
          "     so the cached engine's pairs/s is bounded by unique work only")


def main() -> None:
    utilisation_sweep()
    contention_view()
    pipelining_view()
    print()
    engine_view()


if __name__ == "__main__":
    main()
