"""Differential test harness: every engine must agree with the oracle.

Seeded random pairs sweeping read length (0-2000), error rate (1-20 %)
and three penalty sets, asserting that

* the scalar WFA, the vectorised WFA and the SWG DP oracle report the
  same score,
* both WFA CIGARs are valid alignments that re-score to the reported
  score (the :func:`tests.util.assert_valid_cigar` contract),
* the cross-pair batched WFA reproduces the scalar results — score and
  CIGAR — pair for pair on seeded mixed-length batches, regardless of
  the order in which pairs retire from the lockstep batch,
* every batch-engine backend (including ``batched`` and the ``wfasic``
  cycle simulator) reproduces the oracle scores through the engine path.

The 2000 bp sweep drags the scalar reference through large wavefronts
and is marked slow; the fast grid keeps the inner loop under a second.
"""

from __future__ import annotations

import random

import pytest

from repro.align import (
    AffinePenalties,
    BatchedWfaAligner,
    WfaAligner,
    swg_align,
    wfa_align_vectorized,
)
from repro.engine import align_pairs, backend_names
from tests.util import assert_valid_cigar, random_pair, random_seq

PENALTY_SETS = [
    AffinePenalties(4, 6, 2),  # the paper's configuration
    AffinePenalties(2, 3, 1),  # odd granularity (score step 1)
    AffinePenalties(5, 0, 3),  # zero gap-open (linear-like affine)
]

ERROR_RATES = [0.01, 0.05, 0.20]


def _check_pair(a: str, b: str, penalties: AffinePenalties) -> None:
    oracle = swg_align(a, b, penalties)
    scalar = WfaAligner(penalties).align(a, b)
    vector = wfa_align_vectorized(a, b, penalties)

    assert scalar.score == oracle.score, (
        f"scalar {scalar.score} != oracle {oracle.score} "
        f"(|a|={len(a)}, |b|={len(b)}, pen={penalties})"
    )
    assert vector.score == oracle.score, (
        f"vector {vector.score} != oracle {oracle.score} "
        f"(|a|={len(a)}, |b|={len(b)}, pen={penalties})"
    )
    assert_valid_cigar(scalar.cigar, a, b, penalties, scalar.score)
    assert_valid_cigar(vector.cigar, a, b, penalties, vector.score)
    assert_valid_cigar(oracle.cigar, a, b, penalties, oracle.score)


class TestSoftwareEnginesAgree:
    """Scalar WFA == vectorized WFA == SWG oracle, CIGARs re-score."""

    @pytest.mark.parametrize("penalties", PENALTY_SETS, ids=str)
    def test_fast_grid(self, penalties):
        rng = random.Random(1234)
        for length in (0, 1, 2, 13, 64, 150, 300):
            for rate in ERROR_RATES:
                a, b = random_pair(rng, length, rate)
                _check_pair(a, b, penalties)

    @pytest.mark.parametrize("penalties", PENALTY_SETS, ids=str)
    def test_degenerate_shapes(self, penalties):
        rng = random.Random(99)
        seq = random_seq(rng, 40)
        cases = [
            ("", ""),
            ("", seq),
            (seq, ""),
            (seq, seq),
            (seq, random_seq(rng, 40)),  # unrelated, same length
            (seq, random_seq(rng, 7)),  # wildly different lengths
            ("A", "T"),
            ("A" * 30, "T" * 30),  # all-mismatch
        ]
        for a, b in cases:
            _check_pair(a, b, penalties)

    @pytest.mark.slow
    @pytest.mark.parametrize("penalties", PENALTY_SETS, ids=str)
    def test_long_reads(self, penalties):
        rng = random.Random(4321)
        for length, rate in ((600, 0.20), (1200, 0.05), (2000, 0.01)):
            a, b = random_pair(rng, length, rate)
            _check_pair(a, b, penalties)


class TestBatchedAlignerAgrees:
    """Batched lockstep WFA == scalar oracle, pair for pair.

    The batch is deliberately heterogeneous (lengths 0-300 fast /
    0-2000 slow, all error rates mixed into one batch) so pairs converge
    at very different scores and the retire-and-compact path runs many
    times within a single ``align_batch`` call.
    """

    def _check_batch(self, pairs, penalties):
        batched = BatchedWfaAligner(penalties).align_batch(pairs)
        for (a, b), res in zip(pairs, batched):
            oracle = swg_align(a, b, penalties)
            assert res.score == oracle.score, (
                f"batched {res.score} != oracle {oracle.score} "
                f"(|a|={len(a)}, |b|={len(b)}, pen={penalties})"
            )
            assert_valid_cigar(res.cigar, a, b, penalties, res.score)

    @pytest.mark.parametrize("penalties", PENALTY_SETS, ids=str)
    def test_fast_mixed_batch(self, penalties):
        rng = random.Random(2024)
        pairs = [
            random_pair(rng, length, rate)
            for length in (0, 1, 2, 13, 64, 150, 300)
            for rate in ERROR_RATES
        ]
        self._check_batch(pairs, penalties)

    @pytest.mark.slow
    @pytest.mark.parametrize("penalties", PENALTY_SETS, ids=str)
    def test_long_mixed_batch(self, penalties):
        rng = random.Random(4202)
        pairs = [
            random_pair(rng, length, rate)
            for length, rate in (
                (0, 0.0), (7, 0.20), (600, 0.20), (1200, 0.05), (2000, 0.01),
            )
        ]
        self._check_batch(pairs, penalties)

    @pytest.mark.parametrize("penalties", PENALTY_SETS, ids=str)
    def test_retiring_order_is_immaterial(self, penalties):
        # Property: results depend only on the pair, never on the batch
        # composition or the order pairs retire in.  Shuffling a batch
        # reorders every compact step; a singleton batch removes
        # batching entirely; both must agree with the scalar aligner.
        rng = random.Random(31)
        pairs = [
            random_pair(rng, length, rate)
            for length in (0, 5, 40, 120, 250)
            for rate in ERROR_RATES
        ]
        scalar = {
            pair: WfaAligner(penalties).align(*pair) for pair in pairs
        }

        def check(batch):
            for pair, res in zip(
                batch, BatchedWfaAligner(penalties).align_batch(batch)
            ):
                ref = scalar[pair]
                assert res.score == ref.score
                assert res.cigar.compact() == ref.cigar.compact()

        check(pairs)
        for seed in (1, 2, 3):
            shuffled = pairs[:]
            random.Random(seed).shuffle(shuffled)
            check(shuffled)
        for pair in pairs[::5]:
            check([pair])


class TestEngineBackendsAgree:
    """Every registered engine backend reproduces the oracle scores."""

    @pytest.fixture(scope="class")
    def workload(self):
        rng = random.Random(777)
        pairs = [
            random_pair(rng, length, rate)
            for length in (0, 5, 40, 120)
            for rate in ERROR_RATES
        ]
        oracle = [swg_align(a, b).score for a, b in pairs]
        return pairs, oracle

    @pytest.mark.parametrize("backend", sorted(backend_names()))
    def test_backend_matches_oracle(self, backend, workload):
        pairs, oracle = workload
        res = align_pairs(pairs, backend=backend, backtrace=True, chunk_size=4)
        assert res.scores == oracle
        assert all(o.success for o in res.outcomes)
        for (a, b), outcome in zip(pairs, res.outcomes):
            # Backtrace on + success => a CIGAR is always present; the
            # empty alignment yields the (valid) empty string, not None.
            assert outcome.cigar is not None
            from repro.align import Cigar

            assert_valid_cigar(
                Cigar.from_compact(outcome.cigar), a, b,
                AffinePenalties(), outcome.score,
            )

    @pytest.mark.parametrize("backend", sorted(backend_names()))
    def test_backend_matches_oracle_parallel(self, backend, workload):
        pairs, oracle = workload
        res = align_pairs(pairs, backend=backend, workers=2, chunk_size=3)
        assert res.scores == oracle


class TestAgreedErrorSemantics:
    """All backends expose identical semantics for degenerate inputs.

    The engine applies the §4.2 Extractor policy at its boundary, so a
    pair no real accelerator could serve (an 'N' base) gets the same
    well-formed answer — success=False, score 0, unsupported_read — no
    matter which backend the batch was headed for, and lowercase input
    is normalized before any backend can see it.
    """

    N_PAIRS = [
        ("ACGNACGT", "ACGTACGT"),
        ("ACGT", "NNNN"),
        ("N", ""),
    ]

    @pytest.mark.parametrize("backend", sorted(backend_names()))
    def test_n_pairs_unsupported_everywhere(self, backend):
        res = align_pairs(self.N_PAIRS, backend=backend, backtrace=True)
        for outcome in res.outcomes:
            assert outcome.ok
            assert outcome.success is False
            assert outcome.score == 0
            assert outcome.cigar is None
            assert outcome.error_kind == "unsupported_read"
        assert res.report.rejected == len(self.N_PAIRS)
        assert res.report.errors == 0

    @pytest.mark.parametrize("backend", sorted(backend_names()))
    def test_lowercase_matches_uppercase_bit_for_bit(self, backend):
        rng = random.Random(4242)
        pairs = [random_pair(rng, 60, 0.1) for _ in range(4)]
        lower = [(a.lower(), b.lower()) for a, b in pairs]
        upper_res = align_pairs(pairs, backend=backend, backtrace=True)
        lower_res = align_pairs(lower, backend=backend, backtrace=True)
        for u, l in zip(upper_res.outcomes, lower_res.outcomes):
            assert (u.score, u.success, u.cigar) == (l.score, l.success, l.cigar)
