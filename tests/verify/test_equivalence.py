"""Tests for the LEC/GLS-analog differential checker."""

from repro.verify import EquivalenceChecker
from repro.wfasic import WfasicConfig


class TestCampaigns:
    def test_default_configuration_clean(self):
        report = EquivalenceChecker(seed=1).campaign(count=25, max_len=80)
        assert report.pairs_checked == 25
        assert report.ok, report.mismatches

    def test_multi_aligner_configuration_clean(self):
        cfg = WfasicConfig(num_aligners=2, parallel_sections=32)
        report = EquivalenceChecker(cfg, seed=2).campaign(count=15, max_len=60)
        assert report.ok, report.mismatches

    def test_small_kmax_detects_nothing_wrong_when_in_range(self):
        cfg = WfasicConfig(k_max=256)
        report = EquivalenceChecker(cfg, seed=3).campaign(count=10, max_len=50)
        assert report.ok, report.mismatches

    def test_generation_is_deterministic(self):
        a = EquivalenceChecker(seed=7).generate(5)
        b = EquivalenceChecker(seed=7).generate(5)
        assert [(p.pattern, p.text) for p in a] == [(p.pattern, p.text) for p in b]

    def test_checker_catches_injected_bug(self):
        """Sanity of the checker itself: a config whose score ceiling is
        too small must surface 'success' mismatches, not silence."""
        cfg = WfasicConfig(k_max=2)
        report = EquivalenceChecker(cfg, seed=4).campaign(count=10, max_len=60)
        assert not report.ok
        assert any(m.kind == "success" for m in report.mismatches)
