"""Fault-injection tests: broken data must never hang or crash (§5.1)."""

import pytest

from repro.verify import FAULT_KINDS, FaultCampaign
from repro.wfasic import Extractor, WfasicConfig
from repro.wfasic.packets import encode_input_image, round_up_read_len
from repro.workloads import make_input_set


@pytest.fixture(scope="module")
def healthy_image():
    pairs = make_input_set("100-10%", 4)
    mrl = round_up_read_len(max(p.max_length for p in pairs))
    image = encode_input_image(pairs, mrl)
    record = Extractor(mrl).record_size()
    return image, mrl, record


class TestFaultCampaign:
    def test_every_fault_kind_handled_gracefully(self, healthy_image):
        image, mrl, record = healthy_image
        outcomes = FaultCampaign().run_all(image, mrl, record)
        assert len(outcomes) == len(FAULT_KINDS)
        for outcome in outcomes:
            assert not outcome.hung_or_crashed, outcome

    def test_huge_length_rejects_only_that_pair(self, healthy_image):
        image, mrl, record = healthy_image
        campaign = FaultCampaign()
        kind = next(k for k in FAULT_KINDS if k.name == "huge_length")
        outcome = campaign.run_one(image, kind, mrl, record)
        assert outcome.completed
        assert outcome.unsupported_pairs >= 1

    def test_truncated_image_raises_typed_error(self, healthy_image):
        image, mrl, record = healthy_image
        campaign = FaultCampaign()
        kind = next(k for k in FAULT_KINDS if k.name == "truncated_image")
        outcome = campaign.run_one(image, kind, mrl, record)
        # Either a graceful error or completion; never a hang/crash.
        assert not outcome.hung_or_crashed

    def test_zeroed_record_completes(self, healthy_image):
        image, mrl, record = healthy_image
        kind = next(k for k in FAULT_KINDS if k.name == "zeroed_record")
        outcome = FaultCampaign().run_one(image, kind, mrl, record)
        # A zeroed record decodes as ID 0, lengths 0: an empty alignment.
        assert outcome.completed

    def test_unknown_kind_rejected(self, healthy_image):
        image, mrl, record = healthy_image
        from repro.verify import FaultKind

        with pytest.raises(ValueError):
            FaultCampaign().corrupt(image, FaultKind("nope", ""), record)

    def test_backtrace_config_also_survives(self, healthy_image):
        image, mrl, record = healthy_image
        campaign = FaultCampaign(config=WfasicConfig.paper_default(backtrace=True))
        for outcome in campaign.run_all(image, mrl, record):
            assert not outcome.hung_or_crashed, outcome
