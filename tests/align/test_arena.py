"""The shared-memory arena battery: round-trips, leaks, crash hygiene.

`docs/shared-memory.md` states three invariants for the zero-copy
substrate and this file holds `repro.align.arena` to them directly
(the engine-level twin is ``tests/engine/test_shm_dispatch.py``):

* the 2-bit codec and the descriptor wire format round-trip exactly,
  including zero-length and u64-boundary values (property-tested);
* every created segment is unlinked — on ``close()``, on garbage
  collection, and at interpreter exit, including exits by unhandled
  exception; a SIGKILL'd *attacher* never takes a segment with it;
* attachments are per-process cached, fork-safe, and survive
  concurrent attach/detach churn from multiple worker processes.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.align.arena import (
    ARENA_PREFIX,
    ResultRing,
    SequenceArena,
    SequenceDescriptor,
    attach_segment,
    cigar_capacity,
    decode_descriptor,
    detach_all_segments,
    encode_descriptor,
    leaked_segments,
    pack_bits,
    packed_nbytes,
    read_sequence,
    unpack_bits,
    write_ring_result,
)

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

dna = st.text(alphabet="ACGT", min_size=0, max_size=300)

U64_MAX = 2**64 - 1
I64_MIN, I64_MAX = -(2**63), 2**63 - 1


def _shm_entries() -> set[str]:
    root = Path("/dev/shm")
    if not root.is_dir():
        return set()
    return {e.name for e in root.iterdir() if e.name.startswith(("wfarena", "wfaring"))}


@pytest.fixture()
def arena():
    with SequenceArena() as a:
        yield a
    detach_all_segments()


# -- 2-bit codec -------------------------------------------------------


class TestPackCodec:
    def test_known_vector_acgt(self):
        # codes A=0 C=1 G=2 T=3, base i of a quad in bits 2i..2i+1.
        packed = pack_bits("ACGT")
        assert packed.tolist() == [0b11100100]
        assert unpack_bits(packed, 4) == "ACGT"

    def test_partial_quad_zero_padded(self):
        packed = pack_bits("TTTTT")
        assert packed.tolist() == [0xFF, 0b00000011]
        assert unpack_bits(packed, 5) == "TTTTT"

    def test_empty_sequence(self):
        packed = pack_bits("")
        assert packed.size == 0
        assert unpack_bits(packed, 0) == ""
        assert packed_nbytes(0) == 0

    def test_packed_nbytes(self):
        assert [packed_nbytes(n) for n in range(9)] == [0, 1, 1, 1, 1, 2, 2, 2, 2]

    @pytest.mark.parametrize("bad", ["ACGN", "acgt", "AC T", "ACG-"])
    def test_non_acgt_rejected_with_position(self, bad):
        with pytest.raises(ValueError, match="non-ACGT"):
            pack_bits(bad)

    def test_non_ascii_rejected(self):
        with pytest.raises(ValueError, match="non-ASCII"):
            pack_bits("ACGÅ")

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            unpack_bits(b"\x00", -1)

    def test_surplus_buffer_bytes_ignored(self):
        # Arena reads hand unpack_bits a window with trailing slack.
        buf = pack_bits("ACGTACGT").tobytes() + b"\xff\xff"
        assert unpack_bits(buf, 8) == "ACGTACGT"

    @given(seq=dna)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, seq):
        assert unpack_bits(pack_bits(seq), len(seq)) == seq

    @given(seq=dna)
    @settings(max_examples=30, deadline=None)
    def test_packed_size_matches_contract(self, seq):
        assert pack_bits(seq).nbytes == packed_nbytes(len(seq))


class TestCigarCapacity:
    def test_covers_degenerate_tiny_pairs(self):
        # "" vs "A" backtraces to "1I" — the +16 slack must cover it.
        assert cigar_capacity(0, 1) >= len("1I")
        assert cigar_capacity(0, 0) >= 0

    @given(m=st.integers(0, 10_000), n=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_monotone_and_linear(self, m, n):
        assert cigar_capacity(m, n) == 2 * (m + n) + 16


# -- descriptor wire format --------------------------------------------


class TestDescriptorCodec:
    def test_round_trip_simple(self):
        desc = SequenceDescriptor("wfarena-1-0", 128, 40)
        assert decode_descriptor(encode_descriptor(desc)) == desc

    def test_zero_length_zero_offset(self):
        desc = SequenceDescriptor("a", 0, 0)
        assert decode_descriptor(encode_descriptor(desc)) == desc

    def test_u64_boundary_values(self):
        desc = SequenceDescriptor("x", U64_MAX, U64_MAX)
        assert decode_descriptor(encode_descriptor(desc)) == desc

    def test_over_u64_rejected(self):
        with pytest.raises(ValueError, match="u64"):
            encode_descriptor(SequenceDescriptor("x", U64_MAX + 1, 0))

    def test_negative_fields_rejected_at_construction(self):
        with pytest.raises(ValueError, match="offset"):
            SequenceDescriptor("x", -1, 0)
        with pytest.raises(ValueError, match="length"):
            SequenceDescriptor("x", 0, -1)

    def test_truncated_blob_rejected(self):
        blob = encode_descriptor(SequenceDescriptor("segment", 1, 2))
        with pytest.raises(ValueError, match="shorter|id bytes"):
            decode_descriptor(blob[:-1])
        with pytest.raises(ValueError, match="shorter"):
            decode_descriptor(b"\x00")

    def test_trailing_bytes_rejected(self):
        blob = encode_descriptor(SequenceDescriptor("segment", 1, 2))
        with pytest.raises(ValueError, match="id bytes"):
            decode_descriptor(blob + b"!")

    def test_oversized_arena_id_rejected(self):
        with pytest.raises(ValueError, match="65535"):
            encode_descriptor(SequenceDescriptor("x" * 70_000, 0, 0))

    @given(
        ident=st.text(min_size=0, max_size=64),
        offset=st.integers(0, U64_MAX),
        length=st.integers(0, U64_MAX),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, ident, offset, length):
        desc = SequenceDescriptor(ident, offset, length)
        blob = encode_descriptor(desc)
        assert decode_descriptor(blob) == desc


# -- the arena ---------------------------------------------------------


class TestSequenceArena:
    def test_intern_read_round_trip(self, arena):
        desc = arena.intern("ACGTACGTAC")
        assert desc.length == 10
        assert read_sequence(desc) == "ACGTACGTAC"

    def test_memoised_per_string(self, arena):
        first = arena.intern("ACGT")
        second = arena.intern("ACGT")
        assert first == second
        assert arena.interned == 1
        assert arena.hits == 1
        assert len(arena) == 1

    def test_empty_sequence_interns_and_reads(self, arena):
        desc = arena.intern("")
        assert desc.length == 0
        assert read_sequence(desc) == ""

    def test_invalid_sequence_rejected(self, arena):
        with pytest.raises(ValueError, match="non-ACGT"):
            arena.intern("ACGN")

    def test_descriptors_stable_across_segment_growth(self):
        with SequenceArena(segment_bytes=8) as arena:
            seqs = ["ACGT" * k for k in range(1, 12)]
            descs = [arena.intern(s) for s in seqs]
            assert len(arena.segment_names) > 1
            for seq, desc in zip(seqs, descs):
                assert read_sequence(desc) == seq

    def test_oversized_sequence_gets_dedicated_segment(self):
        with SequenceArena(segment_bytes=4) as arena:
            big = "ACGT" * 64
            desc = arena.intern(big)
            assert read_sequence(desc) == big
            assert arena.allocated_bytes >= packed_nbytes(len(big))

    def test_used_and_allocated_bytes(self, arena):
        assert arena.used_bytes == 0
        arena.intern("ACGTACGT")
        assert arena.used_bytes == packed_nbytes(8)
        assert arena.allocated_bytes >= arena.used_bytes

    def test_close_unlinks_and_is_idempotent(self):
        arena = SequenceArena()
        arena.intern("ACGT")
        names = arena.segment_names
        assert names
        arena.close()
        arena.close()
        for name in names:
            assert not (Path("/dev/shm") / name).exists()
        assert leaked_segments() == []

    def test_intern_after_close_raises(self):
        arena = SequenceArena()
        arena.close()
        with pytest.raises(ValueError, match="closed"):
            arena.intern("ACGT")

    def test_bad_segment_bytes_rejected(self):
        with pytest.raises(ValueError, match="segment_bytes"):
            SequenceArena(segment_bytes=0)

    @given(seqs=st.lists(dna, min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property_through_shared_memory(self, seqs):
        with SequenceArena(segment_bytes=64) as arena:
            descs = [arena.intern(s) for s in seqs]
            assert [read_sequence(d) for d in descs] == seqs


# -- cross-process reads -----------------------------------------------


def _child_read(desc_blob: bytes, queue) -> None:
    desc = decode_descriptor(desc_blob)
    try:
        queue.put(("ok", read_sequence(desc)))
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put(("error", repr(exc)))
    finally:
        detach_all_segments()


def _child_attach_and_die(name: str, ready) -> None:
    attach_segment(name)
    ready.set()
    signal.pause()  # killed by SIGKILL; never returns


class TestCrossProcess:
    def test_forked_child_reads_descriptor(self, arena):
        desc = arena.intern("ACGTTGCAACGT")
        queue = multiprocessing.Queue()
        proc = multiprocessing.Process(
            target=_child_read, args=(encode_descriptor(desc), queue)
        )
        proc.start()
        status, value = queue.get(timeout=10)
        proc.join(timeout=10)
        assert (status, value) == ("ok", "ACGTTGCAACGT")
        assert proc.exitcode == 0

    def test_sigkilled_attacher_leaves_segment_alive(self, arena):
        # A worker that dies mid-batch must not take the arena with it:
        # attachments are deliberately invisible to the resource tracker.
        desc = arena.intern("ACGTACGTACGTACGT")
        ready = multiprocessing.Event()
        proc = multiprocessing.Process(
            target=_child_attach_and_die, args=(desc.arena_id, ready)
        )
        proc.start()
        assert ready.wait(timeout=10)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=10)
        assert proc.exitcode == -signal.SIGKILL
        # The owner's segment survives and still reads correctly...
        assert read_sequence(desc) == "ACGTACGTACGTACGT"
        # ...and the dead child stranded nothing of its own.
        assert leaked_segments(proc.pid) == []


# -- lifecycle cleanup -------------------------------------------------


class TestLifecycleCleanup:
    def test_finalizer_unlinks_on_garbage_collection(self):
        arena = SequenceArena()
        arena.intern("ACGT")
        names = arena.segment_names
        del arena
        gc.collect()
        for name in names:
            assert not (Path("/dev/shm") / name).exists()

    def _run_script(self, body: str) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR)
        return subprocess.run(
            [sys.executable, "-c", body],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )

    def test_atexit_unlinks_on_normal_exit_without_close(self):
        proc = self._run_script(
            "import os\n"
            "from repro.align.arena import SequenceArena\n"
            "arena = SequenceArena()\n"
            "arena.intern('ACGT' * 32)\n"
            "print(os.getpid())\n"
            # no close(): the atexit sweep must do the unlinking
        )
        assert proc.returncode == 0, proc.stderr
        pid = int(proc.stdout.strip())
        assert leaked_segments(pid) == []

    def test_atexit_unlinks_on_unhandled_exception_exit(self):
        proc = self._run_script(
            "import os, sys\n"
            "from repro.align.arena import SequenceArena, ResultRing\n"
            "arena = SequenceArena()\n"
            "arena.intern('ACGTACGT')\n"
            "ring = ResultRing([32, 32])\n"
            "print(os.getpid(), flush=True)\n"
            "raise RuntimeError('simulated crash after arena setup')\n"
        )
        assert proc.returncode != 0
        assert "simulated crash" in proc.stderr
        pid = int(proc.stdout.strip())
        assert leaked_segments(pid) == []

    def test_segment_names_carry_owner_pid(self, arena):
        arena.intern("ACGT")
        (name,) = arena.segment_names
        assert name.startswith(f"{ARENA_PREFIX}-{os.getpid()}-")


# -- the result ring ---------------------------------------------------


class TestResultRing:
    def test_windows_are_disjoint_and_record_aligned(self):
        with ResultRing([4, 8, 0, 16]) as ring:
            offsets = [ring.window(i) for i in range(4)]
            cursor = offsets[0][0]
            for off, cap in offsets:
                assert off == cursor
                cursor += cap
            assert len(ring) == 4

    def test_unwritten_slot_reads_none(self):
        with ResultRing([8]) as ring:
            assert ring.read(0) is None

    def test_write_read_round_trip(self):
        with ResultRing([16, 16]) as ring:
            ok = write_ring_result(
                ring.name, 0, score=-42, success=True, cigar="4M1X3M",
                cigar_offset=ring.window(0)[0],
                cigar_capacity=ring.window(0)[1],
            )
            assert ok
            assert ring.read(0) == (-42, True, "4M1X3M")
            assert ring.read(1) is None

    def test_empty_cigar_distinct_from_no_cigar(self):
        with ResultRing([8, 8]) as ring:
            assert write_ring_result(
                ring.name, 0, score=0, success=True, cigar="",
                cigar_offset=ring.window(0)[0],
                cigar_capacity=ring.window(0)[1],
            )
            assert write_ring_result(
                ring.name, 1, score=0, success=False, cigar=None,
                cigar_offset=ring.window(1)[0],
                cigar_capacity=ring.window(1)[1],
            )
            assert ring.read(0) == (0, True, "")
            assert ring.read(1) == (0, False, None)

    def test_oversized_cigar_refused_slot_stays_unwritten(self):
        with ResultRing([4]) as ring:
            ok = write_ring_result(
                ring.name, 0, score=1, success=True, cigar="10M10I10D",
                cigar_offset=ring.window(0)[0], cigar_capacity=4,
            )
            assert not ok
            assert ring.read(0) is None

    def test_write_to_unlinked_ring_refused(self):
        ring = ResultRing([8])
        name = ring.name
        offset, cap = ring.window(0)
        ring.close()
        assert not write_ring_result(
            name, 0, score=1, success=True, cigar="1M",
            cigar_offset=offset, cigar_capacity=cap,
        )

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            ResultRing([4, -1])

    @given(
        score=st.sampled_from([I64_MIN, -1, 0, 1, I64_MAX]),
        success=st.booleans(),
        cigar=st.one_of(st.none(), st.text(alphabet="0123456789MXID", max_size=12)),
    )
    @settings(max_examples=40, deadline=None)
    def test_record_round_trip_property(self, score, success, cigar):
        with ResultRing([16]) as ring:
            assert write_ring_result(
                ring.name, 0, score=score, success=success, cigar=cigar,
                cigar_offset=ring.window(0)[0],
                cigar_capacity=ring.window(0)[1],
            )
            assert ring.read(0) == (score, success, cigar)


# -- attach cache + concurrency ----------------------------------------


def _churn_worker(desc_blobs: list[bytes], rounds: int, queue) -> None:
    try:
        descs = [decode_descriptor(b) for b in desc_blobs]
        for _ in range(rounds):
            for desc in descs:
                seq = read_sequence(desc)
                assert unpack_bits(pack_bits(seq), len(seq)) == seq
            detach_all_segments()
        queue.put("ok")
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put(repr(exc))


class TestAttachCache:
    def test_owner_attach_resolves_to_owned_buffer(self, arena):
        desc = arena.intern("ACGTACGT")
        view = attach_segment(desc.arena_id)
        window = np.frombuffer(
            view, dtype=np.uint8, count=packed_nbytes(8), offset=desc.offset
        )
        assert unpack_bits(window, 8) == "ACGTACGT"

    def test_attach_unknown_segment_raises(self):
        with pytest.raises(FileNotFoundError):
            attach_segment("wfarena-0-does-not-exist")

    def test_detach_is_idempotent(self, arena):
        desc = arena.intern("ACGT")
        attach_segment(desc.arena_id)
        detach_all_segments()
        detach_all_segments()

    def test_concurrent_attach_detach_churn(self, arena):
        seqs = ["ACGT" * (k + 1) for k in range(6)]
        blobs = [encode_descriptor(arena.intern(s)) for s in seqs]
        queue = multiprocessing.Queue()
        procs = [
            multiprocessing.Process(
                target=_churn_worker, args=(blobs, 25, queue)
            )
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        results = [queue.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        assert results == ["ok"] * 4
        assert all(p.exitcode == 0 for p in procs)

    @pytest.mark.slow
    def test_sustained_churn_leaves_no_segments(self):
        before = _shm_entries()
        with SequenceArena(segment_bytes=256) as arena:
            blobs = [
                encode_descriptor(arena.intern("ACGT" * (k % 17 + 1)))
                for k in range(64)
            ]
            queue = multiprocessing.Queue()
            procs = [
                multiprocessing.Process(
                    target=_churn_worker, args=(blobs, 100, queue)
                )
                for _ in range(4)
            ]
            for p in procs:
                p.start()
            results = [queue.get(timeout=120) for _ in procs]
            for p in procs:
                p.join(timeout=60)
            assert results == ["ok"] * 4
        detach_all_segments()
        assert _shm_entries() - before == set()
        assert leaked_segments() == []
