"""Equivalence tests: vectorised WFA vs scalar WFA vs the SWG oracle."""

import random

import pytest

from repro.align import (
    AffinePenalties,
    DEFAULT_PENALTIES,
    ScoreLimitExceeded,
    VectorizedWfaAligner,
    WfaAligner,
    swg_align,
    wfa_align_vectorized,
)

from tests.util import assert_valid_cigar, mutate, random_pair, random_seq


class TestBasicCases:
    def test_identical(self):
        r = wfa_align_vectorized("ACGT" * 8, "ACGT" * 8)
        assert r.score == 0

    def test_empty_cases(self):
        assert wfa_align_vectorized("", "").score == 0
        assert wfa_align_vectorized("", "ACG").score == DEFAULT_PENALTIES.gap_cost(3)
        assert wfa_align_vectorized("ACG", "").score == DEFAULT_PENALTIES.gap_cost(3)

    def test_single_errors(self):
        assert wfa_align_vectorized("ACGT", "AGGT").score == 4
        assert wfa_align_vectorized("ACGT", "ACGTT").score == 8


class TestEquivalenceWithScalar:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_scores_and_work(self, seed):
        rng = random.Random(seed * 101)
        for _ in range(30):
            a, b = random_pair(rng, rng.randint(0, 80), rng.choice([0.05, 0.2, 0.5]))
            rs = WfaAligner().align(a, b)
            rv = VectorizedWfaAligner().align(a, b)
            assert rs.score == rv.score
            # Identical algorithms must do identical abstract work.
            assert rs.work.cells_computed == rv.work.cells_computed
            assert rs.work.extend_comparisons == rv.work.extend_comparisons
            assert rs.work.extend_matches == rv.work.extend_matches
            assert rs.work.wavefront_steps == rv.work.wavefront_steps

    def test_same_cigars(self):
        # Backtraces share the same tie-breaking, so CIGARs are identical.
        rng = random.Random(77)
        for _ in range(30):
            a, b = random_pair(rng, rng.randint(0, 60), 0.25)
            cs = WfaAligner().align(a, b).cigar
            cv = VectorizedWfaAligner().align(a, b).cigar
            assert cs.ops == cv.ops


class TestAgainstOracle:
    def test_related_pairs(self):
        rng = random.Random(88)
        for _ in range(40):
            a, b = random_pair(rng, rng.randint(0, 100), 0.15)
            rv = wfa_align_vectorized(a, b)
            assert rv.score == swg_align(a, b).score
            assert_valid_cigar(rv.cigar, a, b, DEFAULT_PENALTIES, rv.score)

    def test_unrelated_pairs(self):
        rng = random.Random(89)
        for _ in range(30):
            a = random_seq(rng, rng.randint(0, 60))
            b = random_seq(rng, rng.randint(0, 60))
            assert wfa_align_vectorized(a, b).score == swg_align(a, b).score

    @pytest.mark.parametrize(
        "penalties",
        [AffinePenalties(2, 3, 1), AffinePenalties(5, 0, 3), AffinePenalties(7, 11, 3)],
    )
    def test_other_penalties(self, penalties):
        rng = random.Random(90)
        for _ in range(20):
            a, b = random_pair(rng, rng.randint(0, 50), 0.3)
            assert (
                wfa_align_vectorized(a, b, penalties).score
                == swg_align(a, b, penalties).score
            )


class TestModes:
    def test_score_only(self):
        r = VectorizedWfaAligner(keep_backtrace=False).align("ACGT", "AGGT")
        assert r.cigar is None and r.score == 4

    def test_score_limit(self):
        with pytest.raises(ScoreLimitExceeded):
            VectorizedWfaAligner(max_score=40).align("A" * 30, "T" * 30)


class TestMediumScale:
    def test_1kbp_matches_oracle(self):
        rng = random.Random(91)
        a = random_seq(rng, 1000)
        b = mutate(rng, a, 0.05)
        rv = VectorizedWfaAligner().align(a, b)
        assert_valid_cigar(rv.cigar, a, b, DEFAULT_PENALTIES, rv.score)
        assert rv.score == swg_align(a, b).score

    @pytest.mark.slow
    def test_10kbp_score_only(self):
        rng = random.Random(92)
        a = random_seq(rng, 10_000)
        b = mutate(rng, a, 0.10)
        r = VectorizedWfaAligner(keep_backtrace=False).align(a, b)
        # Score is bounded by per-error worst cost and is > 0.
        assert 0 < r.score
        assert r.work.wavefront_steps > 1000
