"""Property-based tests (hypothesis) for the alignment substrate.

The central invariant of the whole repository: WFA is an *exact* algorithm,
so for any sequence pair and any valid penalty set it must reproduce the
SWG dynamic-programming optimum, and every emitted CIGAR must be a valid
alignment whose Eq. 5 score equals the reported score.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.align import (
    AffinePenalties,
    Cigar,
    swg_align,
    wfa_align,
    wfa_align_vectorized,
)

from tests.util import assert_valid_cigar

dna = st.text(alphabet="ACGT", min_size=0, max_size=48)

penalty_sets = st.builds(
    AffinePenalties,
    mismatch=st.integers(min_value=1, max_value=8),
    gap_open=st.integers(min_value=0, max_value=10),
    gap_extend=st.integers(min_value=1, max_value=5),
)


@given(a=dna, b=dna, penalties=penalty_sets)
@settings(max_examples=150, deadline=None)
def test_wfa_equals_swg(a, b, penalties):
    assert wfa_align(a, b, penalties).score == swg_align(a, b, penalties).score


@given(a=dna, b=dna, penalties=penalty_sets)
@settings(max_examples=150, deadline=None)
def test_vectorized_equals_swg(a, b, penalties):
    r = wfa_align_vectorized(a, b, penalties)
    assert r.score == swg_align(a, b, penalties).score
    assert_valid_cigar(r.cigar, a, b, penalties, r.score)


@given(a=dna, b=dna, penalties=penalty_sets)
@settings(max_examples=100, deadline=None)
def test_swg_cigar_is_consistent(a, b, penalties):
    r = swg_align(a, b, penalties)
    assert_valid_cigar(r.cigar, a, b, penalties, r.score)


@given(a=dna, b=dna, penalties=penalty_sets)
@settings(max_examples=100, deadline=None)
def test_score_symmetry(a, b, penalties):
    assert swg_align(a, b, penalties).score == swg_align(b, a, penalties).score


@given(a=dna, penalties=penalty_sets)
@settings(max_examples=60, deadline=None)
def test_self_alignment_is_free(a, penalties):
    r = wfa_align(a, a, penalties)
    assert r.score == 0
    assert r.cigar.ops == "M" * len(a)


@given(a=dna, b=dna, penalties=penalty_sets)
@settings(max_examples=100, deadline=None)
def test_score_upper_bound(a, b, penalties):
    # Deleting a then inserting b is always feasible.
    bound = penalties.gap_cost(len(a)) + penalties.gap_cost(len(b))
    assert wfa_align(a, b, penalties).score <= bound


@given(ops=st.lists(st.sampled_from("MXID"), max_size=60))
@settings(max_examples=100, deadline=None)
def test_cigar_compact_roundtrip(ops):
    c = Cigar("".join(ops))
    assert Cigar.from_compact(c.compact()).ops == c.ops


@given(a=dna, b=dna)
@settings(max_examples=60, deadline=None)
def test_cigar_render_columns(a, b):
    r = swg_align(a, b)
    rendered = r.cigar.render(a, b)
    top, mid, bot = rendered.split("\n")
    assert len(top) == len(mid) == len(bot) == len(r.cigar)
    assert top.replace("-", "") == a
    assert bot.replace("-", "") == b
