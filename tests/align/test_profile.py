"""Unit tests for the per-stage profiler."""

import pickle

from repro.align.profile import StageProfiler, format_profile


class TestStageProfiler:
    def test_stage_context_accumulates(self):
        prof = StageProfiler()
        for _ in range(3):
            with prof.stage("compute"):
                pass
        stats = prof.stages["compute"]
        assert stats.calls == 3
        assert stats.seconds >= 0.0

    def test_add_and_count(self):
        prof = StageProfiler()
        prof.add("extend", 0.5, calls=2)
        prof.count("pack_hits", 7)
        assert prof.stages["extend"].calls == 2
        assert prof.stages["extend"].seconds == 0.5
        assert prof.stages["pack_hits"].calls == 7
        assert prof.stages["pack_hits"].seconds == 0.0
        assert prof.total_seconds == 0.5

    def test_merge_profiler_and_dict(self):
        a = StageProfiler()
        a.add("compute", 1.0)
        b = StageProfiler()
        b.add("compute", 2.0)
        b.add("extend", 0.25, calls=4)
        a.merge(b)
        a.merge(b.as_dict())
        a.merge(None)  # no-op
        assert a.stages["compute"].calls == 3
        assert a.stages["compute"].seconds == 5.0
        assert a.stages["extend"].calls == 8

    def test_as_dict_round_trips_through_pickle(self):
        # Workers ship their counters back with each chunk result.
        prof = StageProfiler()
        prof.add("pack", 0.125, calls=3)
        payload = pickle.loads(pickle.dumps(prof.as_dict()))
        assert payload == {"pack": {"calls": 3, "seconds": 0.125}}

    def test_stats_exact_after_exception(self):
        prof = StageProfiler()
        try:
            with prof.stage("compute"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert prof.stages["compute"].calls == 1


class TestFormatProfile:
    def test_sorted_by_time_with_counters_last(self):
        prof = StageProfiler()
        prof.add("extend", 0.1)
        prof.add("compute", 0.3)
        prof.count("pack_hits", 5)
        text = format_profile(prof.as_dict())
        lines = text.splitlines()
        assert lines[1].startswith("compute")
        assert lines[2].startswith("extend")
        assert "pack_hits" in lines[3]
        assert lines[-1].startswith("total")

    def test_empty_profile(self):
        assert "no stages" in format_profile({})
