"""Unit tests for the scoring models."""

import pytest

from repro.align import AffinePenalties, DEFAULT_PENALTIES, LinearPenalties


class TestAffinePenalties:
    def test_defaults_match_paper(self):
        assert DEFAULT_PENALTIES.mismatch == 4
        assert DEFAULT_PENALTIES.gap_open == 6
        assert DEFAULT_PENALTIES.gap_extend == 2

    def test_gap_open_total(self):
        assert DEFAULT_PENALTIES.gap_open_total == 8
        assert AffinePenalties(1, 0, 3).gap_open_total == 3

    def test_score_granularity_default(self):
        # gcd(4, 8, 2) = 2: the paper's wavefront scores are all even.
        assert DEFAULT_PENALTIES.score_granularity == 2

    def test_score_granularity_coprime(self):
        assert AffinePenalties(3, 4, 1).score_granularity == 1

    def test_gap_cost(self):
        p = DEFAULT_PENALTIES
        assert p.gap_cost(0) == 0
        assert p.gap_cost(1) == 8  # open + extend
        assert p.gap_cost(5) == 6 + 2 * 5

    def test_gap_cost_negative_length_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PENALTIES.gap_cost(-1)

    def test_max_window_span(self):
        assert DEFAULT_PENALTIES.max_window_span() == 8
        assert AffinePenalties(10, 1, 2).max_window_span() == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mismatch": 0},
            {"mismatch": -1},
            {"gap_open": -1},
            {"gap_extend": 0},
            {"gap_extend": -3},
        ],
    )
    def test_invalid_penalties_rejected(self, kwargs):
        base = {"mismatch": 4, "gap_open": 6, "gap_extend": 2}
        base.update(kwargs)
        with pytest.raises(ValueError):
            AffinePenalties(**base)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PENALTIES.mismatch = 5  # type: ignore[misc]


class TestLinearPenalties:
    def test_as_affine_equivalent(self):
        lin = LinearPenalties(mismatch=4, gap=2)
        aff = lin.as_affine()
        assert aff.gap_open == 0
        assert aff.gap_cost(3) == 3 * lin.gap

    @pytest.mark.parametrize("kwargs", [{"mismatch": 0}, {"gap": 0}])
    def test_invalid_rejected(self, kwargs):
        base = {"mismatch": 4, "gap": 2}
        base.update(kwargs)
        with pytest.raises(ValueError):
            LinearPenalties(**base)
