"""Deeper unit tests for WFA internals: windows, eviction, edge paths."""

import random

import numpy as np
import pytest

from repro.align import (
    AffinePenalties,
    NULL_OFFSET,
    ScoreLattice,
    Wavefront,
    WfaAligner,
    swg_align,
)
from repro.align.wfa import backtrace_wavefronts

from tests.util import assert_valid_cigar, random_pair


class TestWavefront:
    def test_null_constructor(self):
        wf = Wavefront.null(-2, 3)
        assert wf.num_cells == 6
        assert (wf.offsets == NULL_OFFSET).all()

    def test_get_out_of_range(self):
        wf = Wavefront(0, 2, np.array([1, 2, 3], dtype=np.int64))
        assert wf.get(-1) == NULL_OFFSET
        assert wf.get(3) == NULL_OFFSET
        assert wf.get(1) == 2

    def test_window_padding(self):
        wf = Wavefront(0, 2, np.array([10, 20, 30], dtype=np.int64))
        win = wf.window(-2, 4)
        assert win.tolist() == [NULL_OFFSET, NULL_OFFSET, 10, 20, 30,
                                NULL_OFFSET, NULL_OFFSET]

    def test_window_disjoint(self):
        wf = Wavefront(0, 2, np.array([10, 20, 30], dtype=np.int64))
        assert (wf.window(5, 8) == NULL_OFFSET).all()


class TestScoreOnlyEviction:
    def test_window_eviction_preserves_scores(self):
        """Score-only mode must evict old wavefronts without changing the
        result, across penalty sets with different window spans."""
        rng = random.Random(101)
        for pen in (AffinePenalties(4, 6, 2), AffinePenalties(7, 11, 3)):
            for _ in range(15):
                a, b = random_pair(rng, rng.randint(10, 70), 0.3)
                full = WfaAligner(pen, keep_backtrace=True).align(a, b)
                lean = WfaAligner(pen, keep_backtrace=False).align(a, b)
                assert full.score == lean.score

    def test_memory_counters_identical_either_mode(self):
        rng = random.Random(102)
        a, b = random_pair(rng, 60, 0.2)
        full = WfaAligner(keep_backtrace=True).align(a, b)
        lean = WfaAligner(keep_backtrace=False).align(a, b)
        assert full.work.cells_computed == lean.work.cells_computed


class TestGranularity:
    def test_coprime_penalties_visit_every_score(self):
        pen = AffinePenalties(3, 4, 1)
        assert pen.score_granularity == 1
        rng = random.Random(103)
        for _ in range(10):
            a, b = random_pair(rng, 40, 0.3)
            assert WfaAligner(pen).align(a, b).score == swg_align(a, b, pen).score

    def test_even_penalties_skip_odd_scores(self):
        result = WfaAligner(AffinePenalties(4, 6, 2)).align("ACGT" * 5, "ACTT" * 5)
        # Iterations count score *attempts*: all even up to the final.
        assert result.work.score_iterations == result.score // 2


class TestBacktraceFunction:
    def test_standalone_backtrace_roundtrip(self):
        """backtrace_wavefronts is usable directly on stored wavefronts."""
        rng = random.Random(104)
        a, b = random_pair(rng, 40, 0.2)
        pen = AffinePenalties(4, 6, 2)
        aligner = WfaAligner(pen, keep_backtrace=True)
        # Re-run internals through align and reuse its stores via cigar.
        result = aligner.align(a, b)
        assert_valid_cigar(result.cigar, a, b, pen, result.score)

    def test_empty_backtrace(self):
        cigar = backtrace_wavefronts(
            "", "", {0: Wavefront(0, 0, np.zeros(1, dtype=np.int64))},
            {}, {}, 0, AffinePenalties(4, 6, 2),
        )
        assert cigar.ops == ""


class TestLatticeConsistencyWithRuns:
    def test_live_bands_within_theoretical(self):
        """Every live cell of a real run lies inside the lattice band."""
        rng = random.Random(105)
        pen = AffinePenalties(4, 6, 2)
        lat = ScoreLattice(pen)
        for _ in range(10):
            a, b = random_pair(rng, 50, 0.3)
            aligner = WfaAligner(pen, keep_backtrace=True)
            result = aligner.align(a, b)
            # Reconstruct live cells by re-running with a recording shim.
            M: dict[int, Wavefront] = {}
            engine = WfaAligner(pen, keep_backtrace=True)
            res = engine.align(a, b)
            assert res.score == result.score
            # The terminating score is on the lattice with a band
            # containing the final diagonal.
            band = lat.m_band(res.score)
            assert band is not None
            assert band.lo <= len(b) - len(a) <= band.hi
