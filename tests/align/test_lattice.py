"""Unit tests for the reachable-score lattice (§4.3.1 determinism)."""

import random

from repro.align import AffinePenalties, DEFAULT_PENALTIES, ScoreLattice, wfa_align

from tests.util import random_pair


class TestDefaultPenalties:
    def test_paper_score_sequence(self):
        # §4.3.1: "only for some scores wavefront vectors are generated,
        # i.e., 0, 4, 8, 10, 12, 14, and so on".
        lat = ScoreLattice(DEFAULT_PENALTIES)
        assert lat.scores_through(20) == [0, 4, 8, 10, 12, 14, 16, 18, 20]

    def test_score_8_band_matches_paper(self):
        # §4.3.1: "for score 8, only cells k = -1 to k = 1 are valid".
        lat = ScoreLattice(DEFAULT_PENALTIES)
        band = lat.m_band(8)
        assert (band.lo, band.hi) == (-1, 1)

    def test_score_zero(self):
        lat = ScoreLattice(DEFAULT_PENALTIES)
        m, i, d = lat.bands(0)
        assert (m.lo, m.hi) == (0, 0)
        assert i is None and d is None

    def test_unreachable_scores(self):
        lat = ScoreLattice(DEFAULT_PENALTIES)
        for s in (1, 2, 3, 5, 6, 7, 9):
            assert not lat.exists(s)

    def test_i_d_bands_symmetric(self):
        lat = ScoreLattice(DEFAULT_PENALTIES)
        for s in lat.scores_through(60):
            i, d = lat.i_band(s), lat.d_band(s)
            if i is None:
                assert d is None
            else:
                assert (i.lo, i.hi) == (-d.hi, -d.lo)

    def test_band_growth_rate(self):
        # hi grows by at most one diagonal per gap-extend step.
        lat = ScoreLattice(DEFAULT_PENALTIES)
        e = DEFAULT_PENALTIES.gap_extend
        prev = 0
        for s in lat.scores_through(200)[1:]:
            hi = lat.m_band(s).hi
            assert hi <= prev + max(1, (s % e) + 1)
            prev = hi

    def test_deep_resolution_iterative(self):
        # Must not hit the Python recursion limit at chip-scale scores.
        lat = ScoreLattice(DEFAULT_PENALTIES)
        band = lat.m_band(8000)
        assert band.hi == 3997  # consistent with Eq. 6's k_max ~ 3998


class TestSoundness:
    def test_band_contains_all_live_cells(self):
        """Theoretical bands must cover every live diagonal of a real run."""
        rng = random.Random(51)
        for _ in range(20):
            a, b = random_pair(rng, rng.randint(5, 60), 0.3)
            res = wfa_align(a, b)
            lat = ScoreLattice(DEFAULT_PENALTIES)
            # The final score must be on the lattice.
            assert lat.exists(res.score)
            # The terminating diagonal must lie within the theoretical band.
            k_final = len(b) - len(a)
            band = lat.m_band(res.score)
            assert band.lo <= k_final <= band.hi

    def test_other_penalty_sets(self):
        for pen in (
            AffinePenalties(2, 3, 1),
            AffinePenalties(1, 4, 1),
            AffinePenalties(5, 0, 3),
            AffinePenalties(7, 11, 3),
        ):
            lat = ScoreLattice(pen)
            scores = lat.scores_through(60)
            assert scores[0] == 0
            # Mismatch chains are always reachable.
            for mult in range(0, 61 // pen.mismatch):
                assert lat.exists(mult * pen.mismatch)
            # Gap openings reachable at o + e.
            if pen.gap_open_total <= 60:
                assert lat.exists(pen.gap_open_total)

    def test_granularity_skips_cheap(self):
        # With granularity g, no score that is not a multiple of g exists.
        pen = AffinePenalties(4, 6, 2)
        lat = ScoreLattice(pen)
        for s in lat.scores_through(100):
            assert s % pen.score_granularity == 0


class TestBandOps:
    def test_shift_union_clamp(self):
        from repro.align import Band

        band = Band(-2, 3)
        assert band.width == 6
        assert band.shifted(2) == Band(0, 5)
        assert band.union(Band(4, 6)) == Band(-2, 6)
        assert band.clamped(0, 2) == Band(0, 2)
        assert band.clamped(5, 9) is None
