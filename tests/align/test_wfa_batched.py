"""Unit tests for the cross-pair batched WFA aligner."""

import random

import numpy as np
import pytest

from repro.align import (
    AffinePenalties,
    BatchedWfaAligner,
    PackCache,
    ScoreLimitExceeded,
    StageProfiler,
    WfaAligner,
    wfa_align_batched,
)
from tests.util import assert_valid_cigar, random_pair

PEN = AffinePenalties(4, 6, 2)


def scalar_results(pairs, penalties=PEN, **kw):
    aligner = WfaAligner(penalties, **kw)
    return [aligner.align(a, b) for a, b in pairs]


class TestBatchedMatchesScalar:
    def test_mixed_batch_scores_cigars_and_counters(self):
        rng = random.Random(3)
        pairs = [
            random_pair(rng, length, rate)
            for length in (0, 1, 3, 17, 64, 150)
            for rate in (0.0, 0.05, 0.25)
        ]
        batched = BatchedWfaAligner(PEN).align_batch(pairs)
        scalar = scalar_results(pairs)
        for (a, b), br, sr in zip(pairs, batched, scalar):
            assert br.score == sr.score
            assert br.cigar.compact() == sr.cigar.compact()
            assert_valid_cigar(br.cigar, a, b, PEN, br.score)
            # The batched path mirrors the scalar recurrence row by row,
            # so even the abstract work accounting is bit-identical.
            assert br.work == sr.work

    def test_single_pair_convenience(self):
        res = BatchedWfaAligner(PEN).align("ACGT", "AGGT")
        ref = WfaAligner(PEN).align("ACGT", "AGGT")
        assert res.score == ref.score
        assert res.cigar.compact() == ref.cigar.compact()

    def test_one_shot_helper(self):
        results = wfa_align_batched([("ACGT", "ACGT"), ("AAAA", "AATA")])
        assert [r.score for r in results] == [0, 4]

    def test_degenerate_shapes(self):
        pairs = [
            ("", ""),
            ("", "ACGT"),
            ("ACGT", ""),
            ("A", "T"),
            ("A" * 40, "T" * 40),
            ("ACGT" * 10, "ACGT" * 10),
        ]
        batched = BatchedWfaAligner(PEN).align_batch(pairs)
        for (a, b), br, sr in zip(pairs, batched, scalar_results(pairs)):
            assert br.score == sr.score
            assert br.cigar.compact() == sr.cigar.compact()

    def test_empty_batch(self):
        assert BatchedWfaAligner(PEN).align_batch([]) == []

    @pytest.mark.parametrize(
        "penalties",
        [AffinePenalties(2, 3, 1), AffinePenalties(5, 0, 3)],
        ids=str,
    )
    def test_other_penalty_sets(self, penalties):
        rng = random.Random(11)
        pairs = [random_pair(rng, length, 0.15) for length in (5, 33, 90)]
        batched = BatchedWfaAligner(penalties).align_batch(pairs)
        scalar = scalar_results(pairs, penalties)
        for br, sr in zip(batched, scalar):
            assert br.score == sr.score
            assert br.cigar.compact() == sr.cigar.compact()


class TestRetirement:
    def test_results_in_input_order_with_mixed_convergence(self):
        # Deliberately interleave trivially-finishing pairs (score 0,
        # retire at s=0) with increasingly hard ones so rows retire out
        # of input order and the active set compacts repeatedly.
        rng = random.Random(21)
        easy = [random_pair(rng, 50, 0.0) for _ in range(3)]
        hard = [random_pair(rng, 120, 0.25) for _ in range(3)]
        pairs = [x for pair in zip(easy, hard) for x in pair]
        batched = BatchedWfaAligner(PEN).align_batch(pairs)
        for (a, b), br, sr in zip(pairs, batched, scalar_results(pairs)):
            assert br.score == sr.score
            assert br.cigar.compact() == sr.cigar.compact()

    def test_batch_composition_does_not_change_results(self):
        # Retiring order is a pure implementation detail: any permutation
        # of the batch — and a batch of one — must produce identical
        # per-pair results.
        rng = random.Random(5)
        pairs = [
            random_pair(rng, length, rate)
            for length, rate in [(10, 0.3), (80, 0.1), (200, 0.02), (40, 0.0)]
        ]
        baseline = {
            pair: (res.score, res.cigar.compact())
            for pair, res in zip(pairs, BatchedWfaAligner(PEN).align_batch(pairs))
        }
        for seed in (1, 2, 3):
            perm = pairs[:]
            random.Random(seed).shuffle(perm)
            for pair, res in zip(perm, BatchedWfaAligner(PEN).align_batch(perm)):
                assert (res.score, res.cigar.compact()) == baseline[pair]
        for pair in pairs:
            res = BatchedWfaAligner(PEN).align_batch([pair])[0]
            assert (res.score, res.cigar.compact()) == baseline[pair]


class TestOptions:
    def test_score_only_mode(self):
        rng = random.Random(8)
        pairs = [random_pair(rng, 60, 0.1) for _ in range(5)]
        results = BatchedWfaAligner(PEN, keep_backtrace=False).align_batch(pairs)
        scalar = scalar_results(pairs)
        assert [r.score for r in results] == [r.score for r in scalar]
        assert all(r.cigar is None for r in results)

    def test_max_score_raises(self):
        with pytest.raises(ScoreLimitExceeded):
            BatchedWfaAligner(PEN, max_score=2).align_batch(
                [("AAAA", "AAAA"), ("A" * 30, "T" * 30)]
            )

    def test_pack_cache_reused_across_batches(self):
        cache = PackCache()
        aligner = BatchedWfaAligner(PEN, pack_cache=cache)
        pairs = [("ACGTACGT", "ACGAACGT"), ("TTTT", "TTAT")]
        aligner.align_batch(pairs)
        assert cache.misses == 4 and cache.hits == 0
        aligner.align_batch(pairs)
        assert cache.misses == 4 and cache.hits == 4

    def test_profiler_records_stages(self):
        prof = StageProfiler()
        aligner = BatchedWfaAligner(PEN, profiler=prof)
        aligner.align_batch([("ACGTACGT", "ACGAACGT")])
        stages = prof.as_dict()
        for stage in ("pack", "compute", "extend", "backtrace", "retire"):
            assert stage in stages, stages
            assert stages[stage]["calls"] >= 1

    def test_cached_rows_are_read_only(self):
        cache = PackCache()
        row = cache.row("ACGT", 0xFF)
        with pytest.raises(ValueError):
            row[0] = 0


class TestLongerReads:
    @pytest.mark.slow
    def test_long_read_batch(self):
        rng = random.Random(99)
        pairs = [
            random_pair(rng, 600, 0.2),
            random_pair(rng, 1200, 0.05),
            random_pair(rng, 2000, 0.01),
            random_pair(rng, 0, 0.0),
        ]
        batched = BatchedWfaAligner(PEN).align_batch(pairs)
        for (a, b), br, sr in zip(pairs, batched, scalar_results(pairs)):
            assert br.score == sr.score
            assert_valid_cigar(br.cigar, a, b, PEN, br.score)
            assert br.cigar.compact() == sr.cigar.compact()
