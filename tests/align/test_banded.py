"""Tests for the adaptive banded SWG heuristic (the §6 comparator)."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.align import swg_align
from repro.align.banded import banded_swg_score

from tests.util import random_pair, random_seq


class TestBasicCases:
    def test_identical(self):
        res = banded_swg_score("ACGT" * 10, "ACGT" * 10, band_width=8)
        assert res.reached_end and res.score == 0

    def test_single_mismatch(self):
        res = banded_swg_score("ACGT", "AGGT", band_width=8)
        assert res.score == 4

    def test_empty_sequences(self):
        assert banded_swg_score("", "", 8).score == 0
        assert banded_swg_score("ACG", "", 8).score == 6 + 3 * 2  # o + 3e
        assert banded_swg_score("", "ACG", 8).reached_end

    def test_band_width_validated(self):
        with pytest.raises(ValueError):
            banded_swg_score("A", "A", 0)


class TestHeuristicProperties:
    def test_upper_bound_of_optimum(self):
        """A banded score, when it exists, can never beat the optimum."""
        rng = random.Random(71)
        for _ in range(40):
            a, b = random_pair(rng, rng.randint(1, 100), 0.2)
            res = banded_swg_score(a, b, band_width=24)
            if res.reached_end:
                assert res.score >= swg_align(a, b).score

    def test_exact_when_band_covers_matrix(self):
        rng = random.Random(72)
        for _ in range(25):
            a, b = random_pair(rng, rng.randint(1, 60), 0.25)
            res = banded_swg_score(a, b, band_width=200)
            assert res.reached_end
            assert res.score == swg_align(a, b).score

    def test_mostly_exact_on_small_drift(self):
        """Small-indel inputs stay inside a modest band."""
        rng = random.Random(73)
        exact = 0
        for _ in range(30):
            a, b = random_pair(rng, 80, 0.1)
            res = banded_swg_score(a, b, band_width=32)
            if res.reached_end and res.score == swg_align(a, b).score:
                exact += 1
        assert exact >= 27

    def test_large_indel_defeats_narrow_band(self):
        """The §6 accuracy risk: a 40-base insertion drifts out of a
        16-wide band, so the heuristic misses the optimum entirely."""
        a = "A" * 50 + "C" * 50
        b = "A" * 50 + "G" * 40 + "C" * 50
        exact_score = swg_align(a, b).score
        res = banded_swg_score(a, b, band_width=16)
        assert (not res.reached_end) or res.score > exact_score
        # WFA (exact) has no such failure mode.
        from repro.align import wfa_align

        assert wfa_align(a, b).score == exact_score

    def test_work_scales_with_band_not_matrix(self):
        rng = random.Random(74)
        a, b = random_pair(rng, 400, 0.05)
        narrow = banded_swg_score(a, b, band_width=16)
        wide = banded_swg_score(a, b, band_width=128)
        assert narrow.cells_computed < wide.cells_computed
        # Banded work ~ n * band, far below the n*m full matrix.
        assert wide.cells_computed < len(a) * len(b) / 2

    def test_unrelated_pairs_still_bounded(self):
        rng = random.Random(75)
        for _ in range(10):
            a = random_seq(rng, 50)
            b = random_seq(rng, 50)
            res = banded_swg_score(a, b, band_width=64)
            if res.reached_end:
                assert res.score >= swg_align(a, b).score


dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


@given(a=dna, b=dna)
@settings(max_examples=150, deadline=None)
def test_full_cover_band_equals_exact_swg(a, b):
    """Property: a band covering every column cannot lose the optimum.

    With ``band_width > len(b)`` every row's window is the whole row,
    so the optimal path provably stays in band — the heuristic must
    reproduce the exact SWG score bit for bit, for *any* input.
    """
    res = banded_swg_score(a, b, band_width=len(b) + 1)
    assert res.reached_end
    assert res.score == swg_align(a, b).score


@given(a=dna, b=dna, bw=st.integers(min_value=1, max_value=48))
@settings(max_examples=150, deadline=None)
def test_banded_score_is_admissible_upper_bound(a, b, bw):
    """Property: any banded score is achievable, so never below optimum."""
    res = banded_swg_score(a, b, band_width=bw)
    if res.reached_end:
        assert res.score >= swg_align(a, b).score


class TestReachedEndRegression:
    """``reached_end=False`` semantics, pinned (the band-fallback signal).

    The engine's band-capable backends key their exact-retry on this
    field; its shape must not drift.
    """

    def test_end_cell_outside_band_is_flagged(self):
        # n = 10 rows against m = 200 columns with a narrow band: the
        # window tracks the best cell near the diagonal and the final
        # column m is out of reach on the last row.
        a = "ACGTACGTAC"
        b = "ACGTACGTAC" * 20
        res = banded_swg_score(a, b, band_width=4)
        assert not res.reached_end

    def test_failed_run_reports_sentinel_score(self):
        a = "A" * 10
        b = "A" * 200
        res = banded_swg_score(a, b, band_width=4)
        assert not res.reached_end
        # The sentinel is the +INF cost, never a plausible penalty.
        assert res.score >= 2**31
        # Work was still bounded by the band, not the full matrix.
        assert res.cells_computed <= (len(a) + 1) * 5

    def test_reached_end_true_has_real_score(self):
        res = banded_swg_score("ACGT" * 10, "ACGT" * 10, band_width=8)
        assert res.reached_end and 0 <= res.score < 2**31
