"""Differential tests for adaptive wavefront banding (scalar + batched).

The banding contract, verified three ways:

* **Scalar ≡ batched, always**: for every band width — and whatever the
  outcome, exact, pessimistic, or a dead band — the banded
  :class:`BatchedWfaAligner` must reproduce the banded
  :class:`WfaAligner` bit for bit, down to the work counters.  Banding
  is one semantics with two implementations, not two heuristics.
* **Exact when the band holds**: a band covering every diagonal can
  never prune, so banded results must be bit-identical to the unbanded
  exact aligners; and since banding only removes wavefront cells, a
  banded score can never beat the exact one (pessimistic, never
  optimistic).
* **Memory-frugal**: the whole point — ``peak_wavefront_bytes`` under a
  narrow band must undercut the exact run's on long indel-heavy pairs.
"""

import random
from dataclasses import asdict

import pytest

from repro.align import (
    AffinePenalties,
    BatchedWfaAligner,
    WfaAligner,
    wfa_align,
)
from repro.align.wfa import BYTES_PER_CELL
from tests.util import assert_valid_cigar, random_pair

PEN = AffinePenalties(4, 6, 2)

#: Edge cases plus a spread of lengths/divergences, shared by the
#: differential classes below.
def _pair_pool(seed: int) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    pairs = [
        ("", ""),
        ("A", ""),
        ("", "ACGT"),
        ("ACGT", "ACGT"),
        ("AAAA", "TTTT"),
        ("ACGT" * 20, "ACGT" * 20 + "G" * 40),  # heavy one-sided drift
    ]
    for length in (3, 17, 80, 200):
        for rate in (0.0, 0.05, 0.3):
            pairs.append(random_pair(rng, length, rate))
    return pairs


class TestScalarBandedSemantics:
    def test_band_width_validated(self):
        with pytest.raises(ValueError):
            WfaAligner(PEN, band_width=0)

    def test_full_band_is_bit_identical_to_exact(self):
        pairs = _pair_pool(11)
        full = max(len(a) + len(b) for a, b in pairs) + 1
        exact = WfaAligner(PEN, keep_backtrace=True)
        banded = WfaAligner(PEN, keep_backtrace=True, band_width=full)
        for a, b in pairs:
            er, br = exact.align(a, b), banded.align(a, b)
            assert br.reached_end
            assert br.score == er.score
            assert br.cigar.compact() == er.cigar.compact()
            assert br.work.band_pruned_cells == 0

    def test_banded_score_never_beats_exact(self):
        for a, b in _pair_pool(12):
            exact = wfa_align(a, b, PEN).score
            for bw in (1, 2, 5, 16):
                res = WfaAligner(PEN, band_width=bw).align(a, b)
                if res.reached_end:
                    assert res.score >= exact
                else:
                    assert res.score == -1 and res.cigar is None

    def test_banded_cigar_rescored_matches_banded_score(self):
        """A banded CIGAR is a *valid* alignment achieving the score."""
        rng = random.Random(13)
        aligner = WfaAligner(PEN, keep_backtrace=True, band_width=6)
        for _ in range(15):
            a, b = random_pair(rng, 90, 0.2)
            res = aligner.align(a, b)
            if res.reached_end:
                assert_valid_cigar(res.cigar, a, b, PEN, res.score)

    def test_narrow_band_cuts_peak_memory(self):
        rng = random.Random(14)
        a, b = random_pair(rng, 2000, 0.1)
        exact = WfaAligner(PEN).align(a, b)
        banded = WfaAligner(PEN, band_width=16).align(a, b)
        assert banded.reached_end
        assert banded.work.band_pruned_cells > 0
        assert (
            banded.work.peak_wavefront_bytes
            < exact.work.peak_wavefront_bytes / 5
        )

    def test_peak_bytes_counts_cells(self):
        """The trivial case pins the memory model: 8 bytes per cell."""
        res = WfaAligner(PEN).align("", "")
        assert res.work.peak_wavefront_bytes == BYTES_PER_CELL


class TestReachedEnd:
    """``WfaResult.reached_end`` — the band-fallback signal.

    The greedy re-centre always keeps the furthest-reaching M cell, and
    that cell always has an onward path to the corner, so a banded WFA
    run converges for every input we can construct — the
    ``reached_end=False`` branches (band death, banded hard-cap breach)
    are defensive invariants.  These tests pin the field's contract:
    every converged result reports ``True``, the failed shape is
    ``score=-1, cigar=None``, and the two implementations agree even
    under adversarial mismatch-heavy penalties where the banded path
    strays furthest from the optimum.
    """

    def test_every_converged_result_reports_reached(self):
        for a, b in _pair_pool(15):
            for bw in (None, 1, 8):
                res = WfaAligner(PEN, band_width=bw).align(a, b)
                assert res.reached_end
                assert res.score >= 0

    def test_adversarial_penalties_still_bit_identical(self):
        """x > 2e makes the greedy band maximally pessimistic."""
        harsh = AffinePenalties(10, 1, 1)
        rng = random.Random(16)
        pairs = [("A" * 50, "T" * 50)] + [
            random_pair(rng, 60, 0.5) for _ in range(20)
        ]
        for bw in (1, 3):
            scalar = [
                WfaAligner(harsh, band_width=bw).align(a, b) for a, b in pairs
            ]
            batched = BatchedWfaAligner(harsh, band_width=bw).align_batch(pairs)
            assert [r.score for r in batched] == [r.score for r in scalar]
            assert [r.reached_end for r in batched] == [
                r.reached_end for r in scalar
            ]

    def test_failed_result_shape(self):
        """The shape backends key their exact-retry on."""
        from repro.align.wfa import WfaResult, WfaWorkCounters

        res = WfaResult(
            score=-1, cigar=None, work=WfaWorkCounters(), reached_end=False
        )
        assert not res.reached_end and res.score == -1 and res.cigar is None


class TestBatchedMatchesScalarBanded:
    @pytest.mark.parametrize("backtrace", [False, True])
    @pytest.mark.parametrize("bw", [1, 2, 3, 5, 16, 100_000])
    def test_bit_identical_across_band_widths(self, bw, backtrace):
        pairs = _pair_pool(17)
        scalar = WfaAligner(PEN, keep_backtrace=backtrace, band_width=bw)
        sres = [scalar.align(a, b) for a, b in pairs]
        bres = BatchedWfaAligner(
            PEN, keep_backtrace=backtrace, band_width=bw
        ).align_batch(pairs)
        for (a, b), sr, br in zip(pairs, sres, bres):
            assert br.score == sr.score
            assert br.reached_end == sr.reached_end
            if backtrace and sr.cigar is not None:
                assert br.cigar.compact() == sr.cigar.compact()
            # Work counters — band prunes, peak bytes, steps — included.
            assert asdict(br.work) == asdict(sr.work)

    def test_band_width_validated(self):
        with pytest.raises(ValueError):
            BatchedWfaAligner(PEN, band_width=0)
