"""Unit tests for batch sequence packing and the pack cache."""

import numpy as np
import pytest

from repro.align.kernels import pad_sequence
from repro.align.packing import PackCache, pack_batch, pack_rows


class TestPackBatch:
    def test_rows_match_1d_padding(self):
        seqs = ["ACGT", "", "ACGTACGTACGTACGTACGT"]
        mat = pack_batch(seqs, sentinel=0xFF)
        assert mat.shape == (3, 20 + 16)
        for r, seq in enumerate(seqs):
            row = pad_sequence(seq, sentinel=0xFF)
            assert (mat[r, : len(row)] == row).all()
            assert (mat[r, len(row) :] == 0xFF).all()

    def test_empty_batch_of_empties(self):
        mat = pack_batch(["", ""], sentinel=0xFE)
        assert mat.shape == (2, 16)
        assert (mat == 0xFE).all()

    def test_distinct_sentinels_never_equal(self):
        a = pack_batch(["AC"], sentinel=0xFF)
        b = pack_batch(["AC"], sentinel=0xFE)
        assert (a[0, 2:] != b[0, 2:]).all()


class TestPackCache:
    def test_hit_miss_accounting(self):
        cache = PackCache()
        pack_rows(["AC", "GT", "AC"], sentinel=0xFF, cache=cache)
        assert cache.misses == 2
        assert cache.hits == 1
        pack_rows(["AC"], sentinel=0xFF, cache=cache)
        assert cache.hits == 2

    def test_sentinel_is_part_of_the_key(self):
        cache = PackCache()
        cache.row("ACGT", 0xFF)
        cache.row("ACGT", 0xFE)
        assert cache.misses == 2
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = PackCache(capacity=2)
        cache.row("A", 0xFF)
        cache.row("C", 0xFF)
        cache.row("A", 0xFF)  # refresh A
        cache.row("G", 0xFF)  # evicts C
        assert len(cache) == 2
        cache.row("C", 0xFF)
        assert cache.misses == 4  # C was re-packed

    def test_zero_capacity_disables_storage(self):
        cache = PackCache(capacity=0)
        cache.row("ACGT", 0xFF)
        cache.row("ACGT", 0xFF)
        assert len(cache) == 0
        assert cache.misses == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PackCache(capacity=-1)

    def test_clear_keeps_counters(self):
        cache = PackCache()
        cache.row("ACGT", 0xFF)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_cached_row_identity(self):
        cache = PackCache()
        r1 = cache.row("ACGT", 0xFF)
        r2 = cache.row("ACGT", 0xFF)
        assert r1 is r2
        assert not r1.flags.writeable

    def test_batch_through_cache_equals_uncached(self):
        cache = PackCache()
        seqs = ["ACGT", "AC", "ACGT"]
        assert (
            pack_batch(seqs, sentinel=0xFF, cache=cache)
            == pack_batch(seqs, sentinel=0xFF)
        ).all()
