"""Unit tests for the vectorised compute/extend kernels."""

import numpy as np
import pytest

from repro.align import NULL_OFFSET
from repro.align.kernels import (
    ORIGIN_D_EXT_BIT,
    ORIGIN_I_EXT_BIT,
    ORIGIN_M_DEL,
    ORIGIN_M_INS,
    ORIGIN_M_SUB,
    compute_kernel,
    extend_kernel,
    pad_sequence,
)

NULL = NULL_OFFSET


def arr(*values):
    return np.array(values, dtype=np.int64)


class TestPadSequence:
    def test_length_and_sentinel(self):
        p = pad_sequence("ACGT", sentinel=0xFF)
        assert len(p) == 4 + 16
        assert (p[4:] == 0xFF).all()
        assert bytes(p[:4]) == b"ACGT"

    def test_empty(self):
        p = pad_sequence("", sentinel=0xFE)
        assert len(p) == 16
        assert (p == 0xFE).all()


class TestExtendKernel:
    def _run(self, a, b, offsets, lo):
        av = pad_sequence(a, sentinel=0xFF)
        bv = pad_sequence(b, sentinel=0xFE)
        return extend_kernel(av, bv, len(a), len(b), arr(*offsets), lo)

    def test_full_match_single_diagonal(self):
        out = self._run("ACGT", "ACGT", [0], 0)
        assert out.offsets[0] == 4
        assert out.matches == 4
        assert out.blocks[0] == 1

    def test_stops_at_mismatch(self):
        out = self._run("ACGTAA", "ACGTTT", [0], 0)
        assert out.offsets[0] == 4
        # 4 matches + 1 discovery compare.
        assert out.comparisons == 5

    def test_null_cells_skipped(self):
        out = self._run("ACGT", "ACGT", [NULL, 0, NULL], -1)
        assert out.offsets[0] == NULL
        assert out.offsets[2] == NULL
        assert out.offsets[1] == 4
        assert out.blocks[0] == 0 and out.blocks[2] == 0

    def test_multi_block_counts(self):
        a = "A" * 40
        out = self._run(a, a, [0], 0)
        assert out.offsets[0] == 40
        # 40 bases = ceil(40/16) = 3 comparator blocks.
        assert out.blocks[0] == 3
        # No discovery compare: the run was cut by the sequence end.
        assert out.comparisons == 40

    def test_block_boundary_exact(self):
        a = "A" * 16
        out = self._run(a, a, [0], 0)
        assert out.offsets[0] == 16
        # One full block, then the boundary retires the cell: the second
        # block is never issued because i/j already reached the ends.
        assert out.blocks[0] in (1, 2)

    def test_offset_mid_sequence(self):
        # Start at offset 2 on diagonal 0: positions 2.. of both.
        out = self._run("AACGT", "AACGT", [2], 0)
        assert out.offsets[0] == 5

    def test_diagonal_shift(self):
        # k = 1: i = offset - 1.  a="CGT" vs b="ACGT" from offset 1.
        out = self._run("CGT", "ACGT", [1], 1)
        assert out.offsets[0] == 4

    def test_boundary_cell_no_extension(self):
        # offset already at text end -> no blocks, no matches.
        out = self._run("AC", "AC", [2], 0)
        assert out.offsets[0] == 2
        assert out.blocks[0] == 0
        assert out.matches == 0

    def test_many_cells_mixed(self):
        a = "ACGTACGTACGT"
        out = self._run(a, a, [0, 1, NULL, 0], -1)
        # k=-1 cell: i = 0 - (-1) = 1 -> compares a[1:] vs b[0:].
        assert out.offsets[3] >= 0

    def test_sentinels_never_match_each_other(self):
        # Past both ends the sentinels differ, so extension cannot run
        # into the padding even when both cursors leave their sequences.
        out = self._run("", "", [0], 0)
        assert out.offsets[0] == 0
        assert out.matches == 0


class TestComputeKernel:
    def test_matches_eq3_by_hand(self):
        # One diagonal k=0 with M[s-x,k]=2, I sources null, D sources null.
        ks = arr(0)
        out = compute_kernel(
            arr(2), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 10, 10
        )
        assert out.m[0] == 3  # substitution advances the offset
        assert out.i[0] == NULL
        assert out.d[0] == NULL

    def test_insertion_open_and_extend(self):
        ks = arr(1)
        # open: M[s-oe, 0] = 5 -> I = 6; extend: I[s-e, 0] = 7 -> I = 8.
        out = compute_kernel(
            arr(NULL), arr(5), arr(7), arr(NULL), arr(NULL), ks, 20, 20
        )
        assert out.i[0] == 8
        assert out.m[0] == 8  # M inherits the I value

    def test_deletion_no_offset_advance(self):
        ks = arr(-1)
        # deletion keeps the offset: D[s,k] = max(M[s-oe,k+1], D[s-e,k+1]).
        out = compute_kernel(
            arr(NULL), arr(NULL), arr(NULL), arr(4), arr(6), ks, 20, 20
        )
        assert out.d[0] == 6
        assert out.m[0] == 6

    def test_dead_cell_beyond_text_masked(self):
        ks = arr(0)
        # Substitution would push offset to m+1 -> dead.
        out = compute_kernel(
            arr(5), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 10, 5
        )
        assert out.m[0] == NULL

    def test_dead_candidate_does_not_shadow_live_one(self):
        ks = arr(0)
        # Insertion candidate overshoots (offset 6 > m=5) but the
        # substitution lands exactly at the boundary; M must keep it.
        out = compute_kernel(
            arr(4), arr(5), arr(NULL), arr(NULL), arr(NULL), ks, 10, 5
        )
        assert out.i[0] == NULL
        assert out.m[0] == 5

    def test_dead_cell_beyond_pattern_masked(self):
        # i = offset - k > n -> dead.  offset 9, k = -2 -> i = 11 > n = 10.
        ks = arr(-2)
        out = compute_kernel(
            arr(8), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 10, 20
        )
        assert out.m[0] == NULL

    def test_any_live_flag(self):
        ks = arr(0)
        dead = compute_kernel(
            arr(NULL), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 5, 5
        )
        assert not dead.any_live
        live = compute_kernel(
            arr(1), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 5, 5
        )
        assert live.any_live

    def test_no_origins_by_default(self):
        ks = arr(0)
        out = compute_kernel(
            arr(1), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 5, 5
        )
        assert out.origins is None


class TestOriginEncoding:
    def test_sub_origin(self):
        ks = arr(0)
        out = compute_kernel(
            arr(2), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 9, 9,
            emit_origins=True,
        )
        assert out.origins[0] & 0b111 == ORIGIN_M_SUB

    def test_ins_origin_with_extend_bit(self):
        ks = arr(1)
        out = compute_kernel(
            arr(NULL), arr(5), arr(7), arr(NULL), arr(NULL), ks, 20, 20,
            emit_origins=True,
        )
        assert out.origins[0] & 0b111 == ORIGIN_M_INS
        assert out.origins[0] & ORIGIN_I_EXT_BIT  # 7 (extend) beat 5 (open)

    def test_ins_origin_open(self):
        ks = arr(1)
        out = compute_kernel(
            arr(NULL), arr(9), arr(3), arr(NULL), arr(NULL), ks, 20, 20,
            emit_origins=True,
        )
        assert out.origins[0] & 0b111 == ORIGIN_M_INS
        assert not (out.origins[0] & ORIGIN_I_EXT_BIT)

    def test_del_origin_bits(self):
        ks = arr(-1)
        out = compute_kernel(
            arr(NULL), arr(NULL), arr(NULL), arr(2), arr(8), ks, 20, 20,
            emit_origins=True,
        )
        assert out.origins[0] & 0b111 == ORIGIN_M_DEL
        assert out.origins[0] & ORIGIN_D_EXT_BIT

    def test_sub_preferred_on_tie(self):
        # All three sources produce the same offset: backtrace preference
        # order is substitution first.
        ks = arr(0)
        out = compute_kernel(
            arr(5), arr(5), arr(NULL), arr(6), arr(NULL), ks, 20, 20,
            emit_origins=True,
        )
        assert out.m[0] == 6
        assert out.origins[0] & 0b111 == ORIGIN_M_SUB

    def test_origins_fit_five_bits(self):
        # §4.3.3: origins are concatenated into 5 bits per cell.
        rng = np.random.default_rng(7)
        vals = rng.integers(-1, 12, size=(5, 32)).astype(np.int64)
        vals[vals < 0] = NULL
        ks = np.arange(-16, 16, dtype=np.int64)
        out = compute_kernel(
            vals[0], vals[1], vals[2], vals[3], vals[4], ks, 100, 100,
            emit_origins=True,
        )
        assert (out.origins < 32).all()
