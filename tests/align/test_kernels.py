"""Unit tests for the vectorised compute/extend kernels."""

import numpy as np
import pytest

from repro.align import NULL_OFFSET
from repro.align.kernels import (
    ORIGIN_D_EXT_BIT,
    ORIGIN_I_EXT_BIT,
    ORIGIN_M_DEL,
    ORIGIN_M_INS,
    ORIGIN_M_SUB,
    compute_kernel,
    extend_kernel,
    pad_sequence,
)

NULL = NULL_OFFSET


def arr(*values):
    return np.array(values, dtype=np.int64)


class TestPadSequence:
    def test_length_and_sentinel(self):
        p = pad_sequence("ACGT", sentinel=0xFF)
        assert len(p) == 4 + 16
        assert (p[4:] == 0xFF).all()
        assert bytes(p[:4]) == b"ACGT"

    def test_empty(self):
        p = pad_sequence("", sentinel=0xFE)
        assert len(p) == 16
        assert (p == 0xFE).all()


class TestExtendKernel:
    def _run(self, a, b, offsets, lo):
        av = pad_sequence(a, sentinel=0xFF)
        bv = pad_sequence(b, sentinel=0xFE)
        return extend_kernel(av, bv, len(a), len(b), arr(*offsets), lo)

    def test_full_match_single_diagonal(self):
        out = self._run("ACGT", "ACGT", [0], 0)
        assert out.offsets[0] == 4
        assert out.matches == 4
        assert out.blocks[0] == 1

    def test_stops_at_mismatch(self):
        out = self._run("ACGTAA", "ACGTTT", [0], 0)
        assert out.offsets[0] == 4
        # 4 matches + 1 discovery compare.
        assert out.comparisons == 5

    def test_null_cells_skipped(self):
        out = self._run("ACGT", "ACGT", [NULL, 0, NULL], -1)
        assert out.offsets[0] == NULL
        assert out.offsets[2] == NULL
        assert out.offsets[1] == 4
        assert out.blocks[0] == 0 and out.blocks[2] == 0

    def test_multi_block_counts(self):
        a = "A" * 40
        out = self._run(a, a, [0], 0)
        assert out.offsets[0] == 40
        # 40 bases = ceil(40/16) = 3 comparator blocks.
        assert out.blocks[0] == 3
        # No discovery compare: the run was cut by the sequence end.
        assert out.comparisons == 40

    def test_block_boundary_exact(self):
        a = "A" * 16
        out = self._run(a, a, [0], 0)
        assert out.offsets[0] == 16
        # One full block, then the boundary retires the cell: the second
        # block is never issued because i/j already reached the ends.
        assert out.blocks[0] in (1, 2)

    def test_offset_mid_sequence(self):
        # Start at offset 2 on diagonal 0: positions 2.. of both.
        out = self._run("AACGT", "AACGT", [2], 0)
        assert out.offsets[0] == 5

    def test_diagonal_shift(self):
        # k = 1: i = offset - 1.  a="CGT" vs b="ACGT" from offset 1.
        out = self._run("CGT", "ACGT", [1], 1)
        assert out.offsets[0] == 4

    def test_boundary_cell_no_extension(self):
        # offset already at text end -> no blocks, no matches.
        out = self._run("AC", "AC", [2], 0)
        assert out.offsets[0] == 2
        assert out.blocks[0] == 0
        assert out.matches == 0

    def test_many_cells_mixed(self):
        a = "ACGTACGTACGT"
        out = self._run(a, a, [0, 1, NULL, 0], -1)
        # k=-1 cell: i = 0 - (-1) = 1 -> compares a[1:] vs b[0:].
        assert out.offsets[3] >= 0

    def test_sentinels_never_match_each_other(self):
        # Past both ends the sentinels differ, so extension cannot run
        # into the padding even when both cursors leave their sequences.
        out = self._run("", "", [0], 0)
        assert out.offsets[0] == 0
        assert out.matches == 0


class TestComputeKernel:
    def test_matches_eq3_by_hand(self):
        # One diagonal k=0 with M[s-x,k]=2, I sources null, D sources null.
        ks = arr(0)
        out = compute_kernel(
            arr(2), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 10, 10
        )
        assert out.m[0] == 3  # substitution advances the offset
        assert out.i[0] == NULL
        assert out.d[0] == NULL

    def test_insertion_open_and_extend(self):
        ks = arr(1)
        # open: M[s-oe, 0] = 5 -> I = 6; extend: I[s-e, 0] = 7 -> I = 8.
        out = compute_kernel(
            arr(NULL), arr(5), arr(7), arr(NULL), arr(NULL), ks, 20, 20
        )
        assert out.i[0] == 8
        assert out.m[0] == 8  # M inherits the I value

    def test_deletion_no_offset_advance(self):
        ks = arr(-1)
        # deletion keeps the offset: D[s,k] = max(M[s-oe,k+1], D[s-e,k+1]).
        out = compute_kernel(
            arr(NULL), arr(NULL), arr(NULL), arr(4), arr(6), ks, 20, 20
        )
        assert out.d[0] == 6
        assert out.m[0] == 6

    def test_dead_cell_beyond_text_masked(self):
        ks = arr(0)
        # Substitution would push offset to m+1 -> dead.
        out = compute_kernel(
            arr(5), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 10, 5
        )
        assert out.m[0] == NULL

    def test_dead_candidate_does_not_shadow_live_one(self):
        ks = arr(0)
        # Insertion candidate overshoots (offset 6 > m=5) but the
        # substitution lands exactly at the boundary; M must keep it.
        out = compute_kernel(
            arr(4), arr(5), arr(NULL), arr(NULL), arr(NULL), ks, 10, 5
        )
        assert out.i[0] == NULL
        assert out.m[0] == 5

    def test_dead_cell_beyond_pattern_masked(self):
        # i = offset - k > n -> dead.  offset 9, k = -2 -> i = 11 > n = 10.
        ks = arr(-2)
        out = compute_kernel(
            arr(8), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 10, 20
        )
        assert out.m[0] == NULL

    def test_any_live_flag(self):
        ks = arr(0)
        dead = compute_kernel(
            arr(NULL), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 5, 5
        )
        assert not dead.any_live
        live = compute_kernel(
            arr(1), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 5, 5
        )
        assert live.any_live

    def test_no_origins_by_default(self):
        ks = arr(0)
        out = compute_kernel(
            arr(1), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 5, 5
        )
        assert out.origins is None


class TestOriginEncoding:
    def test_sub_origin(self):
        ks = arr(0)
        out = compute_kernel(
            arr(2), arr(NULL), arr(NULL), arr(NULL), arr(NULL), ks, 9, 9,
            emit_origins=True,
        )
        assert out.origins[0] & 0b111 == ORIGIN_M_SUB

    def test_ins_origin_with_extend_bit(self):
        ks = arr(1)
        out = compute_kernel(
            arr(NULL), arr(5), arr(7), arr(NULL), arr(NULL), ks, 20, 20,
            emit_origins=True,
        )
        assert out.origins[0] & 0b111 == ORIGIN_M_INS
        assert out.origins[0] & ORIGIN_I_EXT_BIT  # 7 (extend) beat 5 (open)

    def test_ins_origin_open(self):
        ks = arr(1)
        out = compute_kernel(
            arr(NULL), arr(9), arr(3), arr(NULL), arr(NULL), ks, 20, 20,
            emit_origins=True,
        )
        assert out.origins[0] & 0b111 == ORIGIN_M_INS
        assert not (out.origins[0] & ORIGIN_I_EXT_BIT)

    def test_del_origin_bits(self):
        ks = arr(-1)
        out = compute_kernel(
            arr(NULL), arr(NULL), arr(NULL), arr(2), arr(8), ks, 20, 20,
            emit_origins=True,
        )
        assert out.origins[0] & 0b111 == ORIGIN_M_DEL
        assert out.origins[0] & ORIGIN_D_EXT_BIT

    def test_sub_preferred_on_tie(self):
        # All three sources produce the same offset: backtrace preference
        # order is substitution first.
        ks = arr(0)
        out = compute_kernel(
            arr(5), arr(5), arr(NULL), arr(6), arr(NULL), ks, 20, 20,
            emit_origins=True,
        )
        assert out.m[0] == 6
        assert out.origins[0] & 0b111 == ORIGIN_M_SUB

    def test_origins_fit_five_bits(self):
        # §4.3.3: origins are concatenated into 5 bits per cell.
        rng = np.random.default_rng(7)
        vals = rng.integers(-1, 12, size=(5, 32)).astype(np.int64)
        vals[vals < 0] = NULL
        ks = np.arange(-16, 16, dtype=np.int64)
        out = compute_kernel(
            vals[0], vals[1], vals[2], vals[3], vals[4], ks, 100, 100,
            emit_origins=True,
        )
        assert (out.origins < 32).all()


class TestBatchedKernelsMatch1D:
    """The 2D kernels must reproduce the 1D kernels row by row."""

    def test_compute_rows_equal_1d(self):
        from repro.align.kernels import compute_kernel_batched

        rng = np.random.default_rng(13)
        pairs, width = 6, 24
        vals = rng.integers(-1, 30, size=(5, pairs, width)).astype(np.int64)
        vals[vals < 0] = NULL
        lo = rng.integers(-10, 2, size=pairs)
        ns = rng.integers(5, 40, size=pairs)
        ms = rng.integers(5, 40, size=pairs)
        ks = lo[:, None] + np.arange(width, dtype=np.int64)[None, :]
        valid = np.ones((pairs, width), dtype=bool)

        out = compute_kernel_batched(
            vals[0].copy(), vals[1].copy(), vals[2].copy(),
            vals[3].copy(), vals[4].copy(),
            ks, ns[:, None], ms[:, None], valid,
        )
        for r in range(pairs):
            ref = compute_kernel(
                vals[0, r].copy(), vals[1, r].copy(), vals[2, r].copy(),
                vals[3, r].copy(), vals[4, r].copy(),
                ks[r], int(ns[r]), int(ms[r]),
            )
            assert (out.m[r] == ref.m).all()
            assert (out.i[r] == ref.i).all()
            assert (out.d[r] == ref.d).all()
            assert out.live_m[r] == ref.any_live

    def test_compute_valid_mask_kills_padding_columns(self):
        from repro.align.kernels import compute_kernel_batched

        vals = np.full((5, 1, 4), 3, dtype=np.int64)
        ks = np.zeros((1, 4), dtype=np.int64) + np.arange(4)
        valid = np.array([[True, True, False, False]])
        out = compute_kernel_batched(
            vals[0], vals[1], vals[2], vals[3], vals[4],
            ks, np.array([[20]]), np.array([[20]]), valid,
        )
        assert (out.m[0, 2:] == NULL).all()
        assert (out.m[0, :2] >= 0).all()

    def test_extend_rows_equal_1d(self):
        import random as _random

        from repro.align.kernels import extend_kernel_batched
        from repro.align.packing import pack_batch
        from tests.util import random_pair

        rng = _random.Random(4)
        seqs = [random_pair(rng, length, 0.2) for length in (0, 3, 20, 40, 40)]
        av2d = pack_batch([a for a, _ in seqs], sentinel=0xFF)
        bv2d = pack_batch([b for _, b in seqs], sentinel=0xFE)
        ns = np.array([len(a) for a, _ in seqs], dtype=np.int64)
        ms = np.array([len(b) for _, b in seqs], dtype=np.int64)
        width = 7
        lo = np.array([-1, 0, -3, -2, 1], dtype=np.int64)
        offsets = np.full((len(seqs), width), NULL, dtype=np.int64)
        for r, (a, b) in enumerate(seqs):
            for t in range(width):
                k = int(lo[r]) + t
                j = min(len(b), max(0, k + 1))
                if 0 <= j - k <= len(a):
                    offsets[r, t] = j

        out = extend_kernel_batched(av2d, bv2d, ns, ms, offsets, lo)
        for r, (a, b) in enumerate(seqs):
            ref = extend_kernel(
                pad_sequence(a, sentinel=0xFF),
                pad_sequence(b, sentinel=0xFE),
                len(a), len(b), offsets[r], int(lo[r]),
            )
            assert (out.offsets[r] == ref.offsets).all()
            assert out.matches[r] == ref.matches
            assert out.comparisons[r] == ref.comparisons

    def test_gather_window_matches_wavefront_window(self):
        from repro.align.kernels import BAND_ABSENT, gather_window_batched
        from repro.align.wfa import Wavefront

        data = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.int64)
        lo_src = np.array([-1, 2], dtype=np.int64)
        hi_src = np.array([1, 4], dtype=np.int64)
        lo_new = np.array([-2, 1], dtype=np.int64)
        out = gather_window_batched(data, lo_src, hi_src, lo_new, 4, shift=1)
        for r in range(2):
            wf = Wavefront(int(lo_src[r]), int(hi_src[r]), data[r])
            ref = wf.window(int(lo_new[r]) + 1, int(lo_new[r]) + 4 + 1 - 1)
            assert (out[r] == ref).all()

    def test_gather_window_absent_row_is_null(self):
        from repro.align.kernels import BAND_ABSENT, gather_window_batched

        data = np.array([[7, 8]], dtype=np.int64)
        out = gather_window_batched(
            data,
            np.array([BAND_ABSENT], dtype=np.int64),
            np.array([-BAND_ABSENT], dtype=np.int64),
            np.array([0], dtype=np.int64),
            3,
            shift=0,
        )
        assert (out == NULL).all()
