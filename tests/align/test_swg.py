"""Unit tests for the gap-affine DP oracle (Eq. 2)."""

import random

import pytest

from repro.align import AffinePenalties, DEFAULT_PENALTIES, swg_align, swg_score
from repro.align.swg import swg_matrices

from tests.util import assert_valid_cigar, mutate, random_pair, random_seq


class TestBasicCases:
    def test_identical(self):
        r = swg_align("ACGTACGT", "ACGTACGT")
        assert r.score == 0
        assert r.cigar.ops == "M" * 8

    def test_single_mismatch(self):
        r = swg_align("ACGT", "AGGT")
        assert r.score == DEFAULT_PENALTIES.mismatch
        assert r.cigar.ops == "MXMM"

    def test_single_insertion(self):
        r = swg_align("ACGT", "ACGGT")
        assert r.score == DEFAULT_PENALTIES.gap_open_total
        assert r.cigar.counts()["I"] == 1

    def test_single_deletion(self):
        r = swg_align("ACGGT", "ACGT")
        assert r.score == DEFAULT_PENALTIES.gap_open_total
        assert r.cigar.counts()["D"] == 1

    def test_long_gap_prefers_one_opening(self):
        # A 3-long gap must cost o + 3e, not 3(o + e).
        r = swg_align("AAATTTAAA", "AAAAAA")
        assert r.score == 6 + 3 * 2
        assert r.cigar.num_gap_opens() == 1

    def test_empty_pattern(self):
        r = swg_align("", "ACG")
        assert r.score == DEFAULT_PENALTIES.gap_cost(3)
        assert r.cigar.ops == "III"

    def test_empty_text(self):
        r = swg_align("ACG", "")
        assert r.score == DEFAULT_PENALTIES.gap_cost(3)
        assert r.cigar.ops == "DDD"

    def test_both_empty(self):
        r = swg_align("", "")
        assert r.score == 0
        assert len(r.cigar) == 0

    def test_two_substitutions(self):
        # GATACA vs GAGATA aligns with two substitutions under (4, 6, 2):
        # gaps would cost at least 2*(6+2) = 16 > 2*4.
        a, b = "GATACA", "GAGATA"
        r = swg_align(a, b)
        assert r.score == 8
        assert r.cigar.counts()["X"] == 2
        assert r.cigar.counts()["I"] == r.cigar.counts()["D"] == 0


class TestProperties:
    def test_cigar_consistent_with_score(self):
        rng = random.Random(11)
        for _ in range(60):
            a, b = random_pair(rng, rng.randint(0, 50), 0.2)
            r = swg_align(a, b)
            assert_valid_cigar(r.cigar, a, b, DEFAULT_PENALTIES, r.score)

    def test_symmetry_swaps_insertions_deletions(self):
        rng = random.Random(12)
        for _ in range(30):
            a, b = random_pair(rng, rng.randint(1, 40), 0.3)
            ra = swg_align(a, b)
            rb = swg_align(b, a)
            assert ra.score == rb.score
            ca, cb = ra.cigar.counts(), rb.cigar.counts()
            assert ca["X"] == cb["X"]
            assert ca["I"] == cb["D"]
            assert ca["D"] == cb["I"]

    def test_score_zero_iff_equal(self):
        rng = random.Random(13)
        for _ in range(30):
            a = random_seq(rng, rng.randint(1, 40))
            b = mutate(rng, a, 0.1)
            assert (swg_score(a, b) == 0) == (a == b)

    def test_triangle_like_upper_bound(self):
        # Score can never exceed the cost of deleting a and inserting b.
        rng = random.Random(14)
        p = DEFAULT_PENALTIES
        for _ in range(30):
            a = random_seq(rng, rng.randint(1, 30))
            b = random_seq(rng, rng.randint(1, 30))
            assert swg_score(a, b) <= p.gap_cost(len(a)) + p.gap_cost(len(b))

    def test_custom_penalties_change_optimum(self):
        # With huge gap penalties the aligner must prefer mismatches.
        a, b = "AAAA", "AATA"
        expensive_gaps = AffinePenalties(mismatch=1, gap_open=100, gap_extend=10)
        r = swg_align(a, b, expensive_gaps)
        assert r.cigar.counts()["I"] == 0
        assert r.cigar.counts()["D"] == 0


class TestMatrices:
    def test_boundary_conditions(self):
        M, I, D = swg_matrices("AC", "AG", DEFAULT_PENALTIES)
        assert M[0, 0] == 0
        # First row is one long insertion: o + j*e.
        assert M[0, 1] == 8 and M[0, 2] == 10
        assert D[1, 0] == 8 and D[2, 0] == 10

    def test_final_cell_is_score(self):
        a, b = "ACGTT", "AGGT"
        M, _, _ = swg_matrices(a, b, DEFAULT_PENALTIES)
        assert int(M[len(a), len(b)]) == swg_score(a, b)

    @pytest.mark.parametrize("pair", [("A", ""), ("", "A"), ("", "")])
    def test_degenerate_shapes(self, pair):
        a, b = pair
        M, I, D = swg_matrices(a, b, DEFAULT_PENALTIES)
        assert M.shape == (len(a) + 1, len(b) + 1)
