"""Unit tests for the gap-linear DP aligner (Eq. 1)."""

import random

from repro.align import (
    AffinePenalties,
    LinearPenalties,
    sw_linear_align,
    sw_linear_score,
    swg_align,
)

from tests.util import assert_valid_cigar, random_pair, random_seq


class TestBasicCases:
    def test_identical(self):
        r = sw_linear_align("ACGT", "ACGT")
        assert r.score == 0
        assert r.cigar.ops == "MMMM"

    def test_mismatch(self):
        assert sw_linear_score("ACGT", "AGGT") == 4

    def test_gap_linear_in_length(self):
        # Each gap character costs the same: no opening discount.
        p = LinearPenalties(mismatch=4, gap=2)
        assert sw_linear_score("AAAA", "AA", p) == 4
        assert sw_linear_score("AAAAAA", "AA", p) == 8

    def test_empty(self):
        assert sw_linear_score("", "") == 0
        assert sw_linear_score("ACG", "") == 6
        assert sw_linear_score("", "ACG") == 6


class TestCrossChecks:
    def test_matches_affine_with_zero_open(self):
        # Gap-linear == gap-affine with o = 0 (same optimum).
        rng = random.Random(41)
        lin = LinearPenalties(mismatch=4, gap=2)
        aff = AffinePenalties(mismatch=4, gap_open=0, gap_extend=2)
        for _ in range(40):
            a, b = random_pair(rng, rng.randint(0, 40), 0.25)
            assert sw_linear_score(a, b, lin) == swg_align(a, b, aff).score

    def test_linear_never_better_than_its_affine_relaxation(self):
        # Affine with the same per-char gap cost but an opening surcharge
        # can only be >= the linear optimum.
        rng = random.Random(42)
        lin = LinearPenalties(mismatch=4, gap=2)
        aff = AffinePenalties(mismatch=4, gap_open=6, gap_extend=2)
        for _ in range(30):
            a = random_seq(rng, rng.randint(0, 30))
            b = random_seq(rng, rng.randint(0, 30))
            assert sw_linear_score(a, b, lin) <= swg_align(a, b, aff).score

    def test_cigar_consistent(self):
        rng = random.Random(43)
        p = LinearPenalties(4, 2)
        for _ in range(30):
            a, b = random_pair(rng, rng.randint(0, 40), 0.2)
            r = sw_linear_align(a, b, p)
            assert_valid_cigar(r.cigar, a, b, p, r.score)
