"""Unit tests for CIGAR handling."""

import pytest

from repro.align import AffinePenalties, Cigar, CigarError, LinearPenalties


class TestConstruction:
    def test_valid_ops(self):
        c = Cigar("MMXID")
        assert len(c) == 5

    def test_invalid_op_rejected(self):
        with pytest.raises(CigarError):
            Cigar("MMS")

    def test_from_compact_roundtrip(self):
        c = Cigar.from_compact("2M1X3M2I1D")
        assert c.ops == "MMXMMMIID"
        assert c.compact() == "2M1X3M2I1D"

    def test_from_compact_implicit_count(self):
        assert Cigar.from_compact("MXM").ops == "MXM"

    def test_from_compact_bad_char(self):
        with pytest.raises(CigarError):
            Cigar.from_compact("3Q")

    def test_from_compact_trailing_count(self):
        with pytest.raises(CigarError):
            Cigar.from_compact("3M2")

    def test_empty(self):
        c = Cigar("")
        assert len(c) == 0
        assert c.compact() == ""
        assert c.num_differences() == 0

    def test_empty_roundtrip_and_falsiness(self):
        # The empty CIGAR is a *valid* value distinct from "no CIGAR":
        # it round-trips through the compact encoding and scores zero,
        # but it is falsy — callers must test `is not None`, never
        # truthiness, when deciding whether a backtrace was produced.
        c = Cigar.from_compact("")
        assert c.compact() == ""
        assert not c
        assert c is not None
        assert c.counts() == {"M": 0, "X": 0, "I": 0, "D": 0}


class TestAccounting:
    def test_counts(self):
        c = Cigar("MMXIDDM")
        assert c.counts() == {"M": 3, "X": 1, "I": 1, "D": 2}

    def test_lengths(self):
        c = Cigar("MMXIDDM")
        # pattern consumes M, X, D; text consumes M, X, I.
        assert c.pattern_length == 6
        assert c.text_length == 5

    def test_num_gap_opens_counts_runs(self):
        assert Cigar("MIIMDD").num_gap_opens() == 2
        assert Cigar("IIII").num_gap_opens() == 1
        assert Cigar("IDID").num_gap_opens() == 4
        assert Cigar("MMMM").num_gap_opens() == 0


class TestScore:
    def test_affine_score_matches_eq5(self):
        # Eq. 5: num_x * 4 + num_open * (6 + 2) + extra extends * 2.
        p = AffinePenalties(4, 6, 2)
        c = Cigar("MXMIIM")  # 1 mismatch, 1 gap of length 2
        assert c.score(p) == 4 + 6 + 2 * 2

    def test_linear_score(self):
        p = LinearPenalties(4, 2)
        c = Cigar("MXMIIM")
        assert c.score(p) == 4 + 2 * 2

    def test_all_match_scores_zero(self):
        assert Cigar("M" * 50).score(AffinePenalties(4, 6, 2)) == 0

    def test_paper_figure1_example(self):
        # Fig. 1(a): GATACA vs GAGATA -> score with (4, 6, 2).
        # One optimal alignment: insert "GA", match "GATA", delete "CA":
        # IIMMMMDD = 2 gaps of length 2 = 2*(6+4) = 20... the figure's
        # alignment has score 16 via 2 mismatches + ... we simply check
        # that a hand-built CIGAR scores by Eq. 5.
        c = Cigar.from_compact("2I4M2D")
        assert c.score(AffinePenalties(4, 6, 2)) == 2 * (6 + 2 * 2)


class TestValidate:
    def test_good_alignment(self):
        Cigar("MMXM").validate("ACGT", "ACTT")

    def test_match_mismatch_swapped(self):
        with pytest.raises(CigarError):
            Cigar("MMMM").validate("ACGT", "ACTT")
        with pytest.raises(CigarError):
            Cigar("XMMM").validate("ACGT", "ACGT")

    def test_length_mismatch(self):
        with pytest.raises(CigarError):
            Cigar("MMM").validate("ACGT", "ACG")
        with pytest.raises(CigarError):
            Cigar("MMMM").validate("ACG", "ACGT")

    def test_gap_ops(self):
        Cigar("MMIM").validate("ACT", "ACGT")
        Cigar("MMDM").validate("ACGT", "ACT")

    def test_overrun(self):
        with pytest.raises(CigarError):
            Cigar("MMMMM").validate("ACGT", "ACGT")

    def test_empty_ok(self):
        Cigar("").validate("", "")


class TestRender:
    def test_render_shape(self):
        out = Cigar("MMXIDM").render("ACGTA", "ACTGA")
        lines = out.split("\n")
        assert len(lines) == 3
        assert len(lines[0]) == len(lines[1]) == len(lines[2]) == 6

    def test_render_markers(self):
        out = Cigar("MX").render("AC", "AT")
        top, mid, bot = out.split("\n")
        assert mid == "|*"
        assert top == "AC"
        assert bot == "AT"

    def test_render_gaps(self):
        out = Cigar("MID").render("AC", "AG")
        top, _, bot = out.split("\n")
        assert "-" in top and "-" in bot
