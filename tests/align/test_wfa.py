"""Unit tests for the scalar WFA aligner (Eq. 3/4)."""

import random

import pytest

from repro.align import (
    AffinePenalties,
    DEFAULT_PENALTIES,
    ScoreLimitExceeded,
    WfaAligner,
    swg_align,
    wfa_align,
    wfa_score,
)

from tests.util import assert_valid_cigar, mutate, random_pair, random_seq


class TestBasicCases:
    def test_identical(self):
        r = wfa_align("ACGTACGT", "ACGTACGT")
        assert r.score == 0
        assert r.cigar.ops == "M" * 8

    def test_single_mismatch(self):
        r = wfa_align("ACGT", "AGGT")
        assert r.score == 4
        assert r.cigar.ops == "MXMM"

    def test_single_insertion(self):
        r = wfa_align("ACGT", "ACGTT")
        assert r.score == 8
        assert r.cigar.counts()["I"] == 1

    def test_single_deletion(self):
        r = wfa_align("ACGTT", "ACGT")
        assert r.score == 8
        assert r.cigar.counts()["D"] == 1

    def test_empty_both(self):
        r = wfa_align("", "")
        assert r.score == 0
        assert len(r.cigar) == 0

    def test_empty_pattern(self):
        r = wfa_align("", "ACG")
        assert r.score == DEFAULT_PENALTIES.gap_cost(3)
        assert r.cigar.ops == "III"

    def test_empty_text(self):
        r = wfa_align("ACG", "")
        assert r.score == DEFAULT_PENALTIES.gap_cost(3)
        assert r.cigar.ops == "DDD"

    def test_gap_affine_preference(self):
        # One long gap, not many short ones.
        r = wfa_align("AAATTTAAA", "AAAAAA")
        assert r.score == 6 + 3 * 2
        assert r.cigar.num_gap_opens() == 1


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_scores_match_swg_related_pairs(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            a, b = random_pair(rng, rng.randint(0, 60), rng.choice([0.0, 0.1, 0.3]))
            assert wfa_score(a, b) == swg_align(a, b).score

    def test_scores_match_swg_unrelated_pairs(self):
        rng = random.Random(99)
        for _ in range(40):
            a = random_seq(rng, rng.randint(0, 40))
            b = random_seq(rng, rng.randint(0, 40))
            assert wfa_score(a, b) == swg_align(a, b).score

    @pytest.mark.parametrize(
        "penalties",
        [
            AffinePenalties(4, 6, 2),
            AffinePenalties(2, 3, 1),
            AffinePenalties(1, 4, 1),
            AffinePenalties(5, 0, 3),  # zero opening surcharge
            AffinePenalties(7, 11, 3),  # coprime
        ],
    )
    def test_scores_match_swg_other_penalties(self, penalties):
        rng = random.Random(hash(penalties) & 0xFFFF)
        for _ in range(25):
            a, b = random_pair(rng, rng.randint(0, 40), 0.25)
            assert (
                wfa_score(a, b, penalties) == swg_align(a, b, penalties).score
            ), (a, b)

    def test_cigar_is_optimal(self):
        rng = random.Random(5)
        for _ in range(50):
            a, b = random_pair(rng, rng.randint(0, 50), 0.2)
            r = wfa_align(a, b)
            assert_valid_cigar(r.cigar, a, b, DEFAULT_PENALTIES, r.score)


class TestScoreOnlyMode:
    def test_no_cigar(self):
        r = WfaAligner(keep_backtrace=False).align("ACGT", "AGGT")
        assert r.cigar is None
        assert r.score == 4

    def test_same_score_as_backtrace_mode(self):
        rng = random.Random(21)
        for _ in range(25):
            a, b = random_pair(rng, rng.randint(0, 60), 0.2)
            s1 = WfaAligner(keep_backtrace=False).align(a, b).score
            s2 = WfaAligner(keep_backtrace=True).align(a, b).score
            assert s1 == s2


class TestScoreLimit:
    def test_limit_exceeded_raises(self):
        a = "A" * 30
        b = "T" * 30  # 30 mismatches = score 120
        with pytest.raises(ScoreLimitExceeded):
            WfaAligner(max_score=60).align(a, b)

    def test_limit_not_hit(self):
        r = WfaAligner(max_score=200).align("A" * 30, "T" * 30)
        assert r.score == 120

    def test_limit_boundary_exact(self):
        # Score exactly equal to the limit must still succeed.
        r = WfaAligner(max_score=120).align("A" * 30, "T" * 30)
        assert r.score == 120

    def test_exception_carries_work(self):
        with pytest.raises(ScoreLimitExceeded) as exc:
            WfaAligner(max_score=8).align("A" * 30, "T" * 30)
        assert exc.value.work.score_iterations > 0


class TestWorkCounters:
    def test_identical_pair_minimal_work(self):
        r = wfa_align("ACGT" * 10, "ACGT" * 10)
        assert r.work.wavefront_steps == 0
        assert r.work.extend_matches == 40
        assert r.work.cells_computed == 0

    def test_counters_grow_with_errors(self):
        rng = random.Random(31)
        a = random_seq(rng, 200)
        low = wfa_align(a, mutate(rng, a, 0.02)).work
        high = wfa_align(a, mutate(rng, a, 0.2)).work
        assert high.cells_computed > low.cells_computed
        assert high.wavefront_steps > low.wavefront_steps

    def test_merge(self):
        rng = random.Random(32)
        a, b = random_pair(rng, 50, 0.1)
        r1 = wfa_align(a, b)
        r2 = wfa_align(a, b)
        total = r1.work
        total.merge(r2.work)
        assert total.cells_computed == 2 * r2.work.cells_computed
        assert total.peak_wavefront_width == r2.work.peak_wavefront_width
